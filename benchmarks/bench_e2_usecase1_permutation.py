"""E2 — Use Case 1 permutation counterfactual.

    "Surprisingly, RAGE reveals that moving the document to the second
    position altered the answer to Novak Djokovic."

The search enumerates all k! orders, ranks them by decreasing Kendall's
tau, and evaluates until the flip; the found flip is therefore the
most-similar reordering that changes the answer.
"""

from repro.core import ContextEvaluator, ranked_permutations


def test_e2_permutation_counterfactual(benchmark, big_three_setup):
    case, rage = big_three_setup
    result = benchmark(lambda: rage.permutation_counterfactual(case.query))
    assert result.found
    cf = result.counterfactual
    assert cf.perturbation.order.index("bigthree-1-match-wins") == 1
    assert cf.new_answer == "Novak Djokovic"
    assert cf.tau == 1 - 2 / 6  # one adjacent transposition
    print(
        f"\nE2 flip at tau={cf.tau:.3f} after {result.num_evaluations} evaluations: "
        f"{' > '.join(cf.perturbation.order)}"
    )


def test_e2_ranking_cost(benchmark, big_three_setup):
    """Generating + tau-ranking all k! permutations (the paper's step)."""
    case, rage = big_three_setup
    context = rage.retrieve(case.query)
    ranked = benchmark(lambda: ranked_permutations(context))
    assert len(ranked) == 23
    taus = [tau for _, tau in ranked]
    assert taus == sorted(taus, reverse=True)


def test_e2_tau_ordering_prunes_evaluations(big_three_setup):
    """The tau-ordered search stops far before exhausting 4! orders."""
    case, rage = big_three_setup
    context = rage.retrieve(case.query)
    evaluator = ContextEvaluator(rage.llm, context)
    from repro.core import search_permutation_counterfactual

    result = search_permutation_counterfactual(evaluator)
    assert result.found
    assert result.num_evaluations <= 3  # within the adjacent transpositions
    print(f"\nE2 evaluations to flip: {result.num_evaluations} of 23 candidates")
