"""E14 — Batched, memo-shared ``Rage.explain()`` vs. the serial flow.

The full report evaluates the same context under every explanation
primitive.  Shapes: (1) the shared-evaluator plan issues strictly fewer
LLM calls than running each sub-explanation with its own evaluator —
no prompt is ever generated twice; (2) pre-batching the enumerable
perturbation sets turns hundreds of one-prompt calls into a handful of
batches; (3) wall-clock for the full report drops accordingly.
"""

from fakes import CountingLLM

from repro import Rage, RageConfig, SimulatedLLM
from repro.datasets import load_use_case
from repro.datasets.synthetic import make_superlative_world


def _counting_engine(case, k, **kwargs):
    defaults = dict(k=k, max_evaluations=4000, cache=False)
    defaults.update(kwargs)
    llm = CountingLLM(SimulatedLLM(knowledge=case.knowledge))
    rage = Rage.from_corpus(case.corpus, llm, config=RageConfig(**defaults))
    return rage, llm


def _serial_report(rage, query, context):
    """The pre-plan flow: every sub-explanation on a fresh evaluator."""
    rage.ask(query, context=context)
    rage.combination_insights(query, context=context)
    rage.permutation_insights(query, context=context)
    rage.combination_counterfactual(query, context=context, direction="top_down")
    rage.combination_counterfactual(query, context=context, direction="bottom_up")
    rage.permutation_counterfactual(query, context=context)
    rage.order_stability(query, context=context)


def _k6_case():
    world = make_superlative_world(num_sources=6, num_candidates=3, seed=7)
    return world


def test_e14_k6_batched_explain_fewer_llm_calls():
    """Acceptance shape: shared plan < serial on a k=6 use case."""
    world = _k6_case()
    rage_serial, llm_serial = _counting_engine(world, k=6)
    context = rage_serial.retrieve(world.query)
    _serial_report(rage_serial, world.query, context)

    rage_batched, llm_batched = _counting_engine(world, k=6)
    report = rage_batched.explain(world.query)

    print(
        f"\nE14 k=6 LLM calls: serial={llm_serial.calls} "
        f"batched={llm_batched.calls} "
        f"({llm_batched.batches} batches), saved="
        f"{llm_serial.calls - llm_batched.calls}"
    )
    assert report.answer
    assert llm_batched.calls < llm_serial.calls
    assert llm_batched.batches >= 1
    assert report.llm_calls == llm_batched.calls


def test_e14_big_three_no_duplicate_prompts():
    case = load_use_case("big_three")

    class RecordingLLM(CountingLLM):
        def __init__(self, inner):
            super().__init__(inner)
            self.seen = {}

        def generate(self, prompt):
            self.seen[prompt] = self.seen.get(prompt, 0) + 1
            return super().generate(prompt)

        def generate_batch(self, prompts):
            for p in prompts:
                self.seen[p] = self.seen.get(p, 0) + 1
            return super().generate_batch(prompts)

    llm = RecordingLLM(SimulatedLLM(knowledge=case.knowledge))
    rage = Rage.from_corpus(
        case.corpus, llm, config=RageConfig(k=case.k, cache=False)
    )
    rage.explain(case.query)
    duplicates = {p: n for p, n in llm.seen.items() if n > 1}
    assert duplicates == {}


def test_e14_batched_explain_wallclock(benchmark):
    world = _k6_case()

    def run():
        rage, _ = _counting_engine(world, k=6)
        return rage.explain(world.query)

    report = benchmark(run)
    assert report.combination_insights.total == 2**6 - 1


def test_e14_serial_flow_wallclock(benchmark):
    world = _k6_case()

    def run():
        rage, _ = _counting_engine(world, k=6)
        context = rage.retrieve(world.query)
        _serial_report(rage, world.query, context)
        return rage

    benchmark(run)


def test_e14_report_matches_serial_answers():
    """Sharing the memo must not change any explanation outcome."""
    world = _k6_case()
    rage_a, _ = _counting_engine(world, k=6)
    report = rage_a.explain(world.query)

    rage_b, _ = _counting_engine(world, k=6)
    context = rage_b.retrieve(world.query)
    combination = rage_b.combination_insights(world.query, context=context)
    top_down = rage_b.combination_counterfactual(
        world.query, context=context, direction="top_down"
    )
    bottom_up = rage_b.combination_counterfactual(
        world.query, context=context, direction="bottom_up"
    )

    assert report.combination_insights.total == combination.total
    assert {
        key: len(group) for key, group in report.combination_insights.groups.items()
    } == {key: len(group) for key, group in combination.groups.items()}
    assert report.top_down.found == top_down.found
    if top_down.found:
        assert (
            report.top_down.counterfactual.changed_sources
            == top_down.counterfactual.changed_sources
        )
    assert report.bottom_up.found == bottom_up.found
    if bottom_up.found:
        assert (
            report.bottom_up.counterfactual.changed_sources
            == bottom_up.counterfactual.changed_sources
        )
