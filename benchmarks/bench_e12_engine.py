"""E12 — End-to-end engine throughput and the prompt cache.

The demo is interactive: a combination-insight request evaluates up to
2^k - 1 prompts.  Shapes: perturbation evaluation sustains hundreds of
evaluations per second on the simulated stack, and the prompt cache
makes repeated analyses of the same context free (hit rate -> 1 on the
second pass).
"""

from repro import Rage, RageConfig, SimulatedLLM
from repro.datasets import load_use_case


def _fresh_engine(case, **kwargs):
    defaults = dict(k=case.k, max_evaluations=4000)
    defaults.update(kwargs)
    return Rage.from_corpus(
        case.corpus,
        SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(**defaults),
    )


def test_e12_combination_insights_cold(benchmark):
    case = load_use_case("big_three")

    def run():
        rage = _fresh_engine(case)
        return rage.combination_insights(case.query)

    insights = benchmark(run)
    assert insights.total == 15


def test_e12_combination_insights_warm(benchmark):
    case = load_use_case("big_three")
    rage = _fresh_engine(case)
    rage.combination_insights(case.query)  # warm the cache

    def run():
        return rage.combination_insights(case.query)

    insights = benchmark(run)
    assert insights.total == 15


def test_e12_cache_hit_rate():
    case = load_use_case("big_three")
    rage = _fresh_engine(case)
    rage.combination_insights(case.query)
    misses_after_first = rage.llm.stats.misses
    rage.combination_insights(case.query)
    assert rage.llm.stats.misses == misses_after_first  # zero new misses
    print(
        f"\nE12 cache after two insight passes: hits={rage.llm.stats.hits} "
        f"misses={rage.llm.stats.misses} "
        f"hit_rate={rage.llm.stats.hit_rate:.2f}"
    )
    assert rage.llm.stats.hit_rate > 0.4


def test_e12_full_report(benchmark):
    case = load_use_case("big_three")

    def run():
        rage = _fresh_engine(case)
        return rage.explain(case.query)

    report = benchmark(run)
    assert report.answer == "Roger Federer"


def test_e12_large_context_sampled_insights(benchmark):
    case = load_use_case("player_of_the_year")
    rage = _fresh_engine(case)

    def run():
        return rage.combination_insights(case.query, sample_size=64)

    insights = benchmark(run)
    assert insights.total == 64


def test_e12_evaluations_per_second():
    """Report the sustained perturbation evaluation rate."""
    import time

    case = load_use_case("player_of_the_year")
    rage = _fresh_engine(case, cache=False)
    start = time.perf_counter()
    insights = rage.combination_insights(case.query, sample_size=128)
    elapsed = time.perf_counter() - start
    rate = insights.num_evaluations / elapsed
    print(f"\nE12 perturbation evaluations/second (no cache): {rate:.0f}")
    assert rate > 20  # interactive even without caching
