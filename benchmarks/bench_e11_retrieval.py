"""E11 — Retrieval substrate sanity: the from-scratch BM25 stands in for
Pyserini/Lucene.

Shapes: planted-relevant documents fill the top ranks exactly
(P@R = 1.0, MRR = 1.0 on the synthetic corpus); indexing and query
throughput scale linearly enough to support the demo's interactive use.
"""

import pytest

from repro.datasets import random_corpus
from repro.retrieval import BM25Scorer, InvertedIndex, Searcher, TfIdfScorer

QUERY = "needle haystack signal"


@pytest.fixture(scope="module")
def corpus_and_relevant():
    return random_corpus(2000, seed=0, num_relevant=20, doc_length=60)


@pytest.fixture(scope="module")
def index(corpus_and_relevant):
    corpus, _ = corpus_and_relevant
    return InvertedIndex.build(corpus)


def test_e11_index_build(benchmark, corpus_and_relevant):
    corpus, _ = corpus_and_relevant
    built = benchmark(lambda: InvertedIndex.build(corpus))
    assert len(built) == 2000


def test_e11_query_throughput(benchmark, index):
    searcher = Searcher(index)
    result = benchmark(lambda: searcher.search(QUERY, k=20))
    assert len(result) == 20


def test_e11_precision_at_r(index, corpus_and_relevant):
    _, relevant = corpus_and_relevant
    searcher = Searcher(index)
    result = searcher.search(QUERY, k=len(relevant))
    retrieved = set(result.doc_ids())
    precision = len(retrieved & set(relevant)) / len(relevant)
    print(f"\nE11 P@{len(relevant)} = {precision:.3f}")
    assert precision == 1.0


def test_e11_mrr(index, corpus_and_relevant):
    _, relevant = corpus_and_relevant
    searcher = Searcher(index)
    result = searcher.search(QUERY, k=50)
    relevant_set = set(relevant)
    rank = next(
        i for i, doc_id in enumerate(result.doc_ids(), start=1)
        if doc_id in relevant_set
    )
    assert 1.0 / rank == 1.0


def test_e11_bm25_beats_nothing_baseline(index, corpus_and_relevant):
    """TF-IDF also solves the planted task (both scorers are sane)."""
    _, relevant = corpus_and_relevant
    searcher = Searcher(index, scorer=TfIdfScorer())
    result = searcher.search(QUERY, k=len(relevant))
    precision = len(set(result.doc_ids()) & set(relevant)) / len(relevant)
    assert precision == 1.0


def test_e11_scoring_only_touches_postings(benchmark, index):
    """Scoring cost is driven by matching postings, not corpus size."""
    scorer = BM25Scorer()
    terms = index.tokenizer.tokenize(QUERY)
    scores = benchmark(lambda: scorer.score_query(index, terms))
    assert len(scores) == 20  # only the planted docs contain the terms


def test_e11_dense_and_hybrid(corpus_and_relevant, index):
    """Pyserini's 'sparse and dense representations': all three rankers
    solve the planted task; the table records their quality side by side."""
    from repro.retrieval import (
        DenseIndex,
        DenseScorer,
        HybridScorer,
        average_precision,
        ndcg_at_k,
        precision_at_k,
    )

    corpus, relevant = corpus_and_relevant
    dense_index = DenseIndex.build(list(corpus))
    rankers = {
        "bm25": Searcher(index),
        "dense": Searcher(index, scorer=DenseScorer(dense_index)),
        "hybrid": Searcher(
            index, scorer=HybridScorer(BM25Scorer(), DenseScorer(dense_index))
        ),
    }
    quality = {}
    print("\nE11 ranking quality by representation:")
    print(f"  {'ranker':<8} {'P@20':>6} {'AP':>6} {'nDCG@20':>8}")
    for name, searcher in rankers.items():
        ranking = searcher.search(QUERY, k=50).doc_ids()
        p = precision_at_k(ranking, relevant, 20)
        ap = average_precision(ranking, relevant)
        ndcg = ndcg_at_k(ranking, relevant, 20)
        quality[name] = p
        print(f"  {name:<8} {p:>6.3f} {ap:>6.3f} {ndcg:>8.3f}")
    # Exact term matching solves the planted task perfectly; hashed
    # dense embeddings are approximate (bucket collisions), and the
    # hybrid recovers sparse-level quality — the standard fusion shape.
    assert quality["bm25"] == 1.0
    assert quality["dense"] >= 0.7
    assert quality["hybrid"] == 1.0
    assert quality["hybrid"] >= quality["dense"]


def test_e11_dense_query_throughput(benchmark, corpus_and_relevant):
    from repro.retrieval import DenseIndex

    corpus, _ = corpus_and_relevant
    dense_index = DenseIndex.build(list(corpus))
    results = benchmark(lambda: dense_index.search(QUERY, k=20))
    assert len(results) == 20
