"""E3 — Use Case 2: inconsistent sources (US Open champions).

Regenerates Section III-C: the full-context answer is the up-to-date
"Coco Gauff"; permutation analysis shows the stale 2022 answer
"Iga Swiatek" taking over when the current document is moved toward the
middle of the context.
"""

from collections import Counter

from repro.core import ContextEvaluator


def test_e3_full_context_answer(benchmark, us_open_setup):
    case, rage = us_open_setup
    result = benchmark(lambda: rage.ask(case.query))
    assert result.answer == "Coco Gauff"
    assert result.context.doc_ids()[-1] == "usopen-2023"


def test_e3_permutation_counterfactual(benchmark, us_open_setup):
    case, rage = us_open_setup
    result = benchmark(lambda: rage.permutation_counterfactual(case.query))
    assert result.found
    cf = result.counterfactual
    assert cf.new_answer == "Iga Swiatek"
    position = cf.perturbation.order.index("usopen-2023")
    assert 0 < position < 4  # moved inward
    print(
        f"\nE3 most-similar flip (tau={cf.tau:.3f}): 2023 doc moved to "
        f"position {position + 1} -> {cf.new_answer!r}"
    )


def test_e3_permutation_insights(benchmark, us_open_setup):
    case, rage = us_open_setup
    insights = benchmark(
        lambda: rage.permutation_insights(case.query, sample_size=60)
    )
    answers = {s.answer for s in insights.pie()}
    assert "Coco Gauff" in answers
    assert "Iga Swiatek" in answers
    print("\nE3 permutation answer distribution (s=60):")
    for item in insights.pie():
        print(f"  {item.answer:<18} {item.count:>3}  {item.fraction * 100:5.1f}%")


def test_e3_position_sweep_of_current_document(us_open_setup):
    """Per-position outcome for the 2023 document: correct at the ends,
    stale answers take over in the middle (the 'lost in the middle'
    failure the paper demonstrates)."""
    case, rage = us_open_setup
    context = rage.retrieve(case.query)
    evaluator = ContextEvaluator(rage.llm, context)
    others = [d for d in context.doc_ids() if d != "usopen-2023"]
    rows = []
    for position in range(5):
        answers = Counter()
        import itertools

        for rest in itertools.permutations(others):
            order = rest[:position] + ("usopen-2023",) + rest[position:]
            answers[evaluator.evaluate(order).answer] += 1
        gauff_rate = answers["Coco Gauff"] / sum(answers.values())
        rows.append((position, gauff_rate, answers.most_common(1)[0][0]))
    print("\nE3 correct-answer rate by 2023-document position:")
    for position, rate, top in rows:
        print(f"  position {position + 1}: correct {rate * 100:5.1f}%  (mode: {top})")
    # U-shape: perfect at both ends, degraded strictly inside.
    assert rows[0][1] == 1.0 and rows[4][1] == 1.0
    assert rows[2][1] == 0.0
    assert rows[1][1] < 1.0 and rows[3][1] < 1.0
