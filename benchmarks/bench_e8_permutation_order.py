"""E8 — Kendall-tau ordering of the permutation counterfactual search.

The paper evaluates candidate orders "in decreasing order of similarity,
based on decreasing Kendall's Tau", so the first flip found is the
most-similar answer-changing permutation.  The baseline evaluates the
same candidates in random order.

Shapes: (a) the tau of the flip found by the ordered search is an upper
bound on what random order finds; (b) on order-sensitive worlds the gap
is strictly positive on average.
"""

import random
import statistics

from repro import Rage, RageConfig, SimulatedLLM
from repro.core import ContextEvaluator
from repro.core.permutation_cf import ranked_permutations
from repro.datasets import make_superlative_world
from repro.textproc import normalize_answer

K = 5
WORLDS = 25


def _prepare(seed):
    world = make_superlative_world(K, seed=seed)
    rage = Rage.from_corpus(
        world.corpus,
        SimulatedLLM(knowledge=world.knowledge),
        config=RageConfig(k=K, max_evaluations=4000),
    )
    context = rage.retrieve(world.query)
    evaluator = ContextEvaluator(rage.llm, context)
    return context, evaluator


def _first_flip(evaluator, candidates, baseline_norm):
    for count, (order, tau) in enumerate(candidates, start=1):
        evaluation = evaluator.evaluate(order)
        if evaluation.normalized_answer != baseline_norm:
            return tau, count
    return None, len(candidates)


def test_e8_tau_ordered_vs_random():
    ordered_taus, random_taus = [], []
    flips = 0
    for seed in range(WORLDS):
        context, evaluator = _prepare(seed)
        baseline = normalize_answer(evaluator.original().answer)
        candidates = ranked_permutations(context)
        tau_ordered, _ = _first_flip(evaluator, candidates, baseline)
        shuffled = candidates[:]
        random.Random(seed).shuffle(shuffled)
        tau_random, _ = _first_flip(evaluator, shuffled, baseline)
        if tau_ordered is None:
            assert tau_random is None  # same candidate space
            continue
        flips += 1
        ordered_taus.append(tau_ordered)
        random_taus.append(tau_random)
        # ordered search finds the most-similar flip by construction
        assert tau_ordered >= tau_random - 1e-12
    assert flips >= 5, "not enough order-sensitive worlds to compare"
    print(
        f"\nE8 mean tau of found flip over {flips} order-sensitive worlds: "
        f"tau-ordered {statistics.mean(ordered_taus):.3f} vs "
        f"random {statistics.mean(random_taus):.3f}"
    )
    assert statistics.mean(ordered_taus) > statistics.mean(random_taus)


def test_e8_ordered_search_cost(benchmark):
    context, evaluator = _prepare(seed=1)
    baseline = normalize_answer(evaluator.original().answer)

    def run():
        fresh = ContextEvaluator(evaluator.llm, context)
        return _first_flip(fresh, ranked_permutations(context), baseline)

    tau, count = benchmark(run)
    print(f"\nE8 representative world: flip tau={tau} after {count} evaluations")
