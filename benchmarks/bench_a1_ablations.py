"""A1 — Ablations over the reproduction's design choices.

Not a paper artifact: these runs justify the constants DESIGN.md picks
for the simulated substrate by showing the reproduced narratives are
robust to them (and showing exactly where they stop being robust).

* BM25 parameters (k1, b): the Use Case 1 retrieval order — and hence
  the whole narrative — survives the standard parameter grid.
* Claim-strength ratio: the explicit-superlative boost must exceed the
  parametric-prior pull for Federer to win the full context; we sweep it
  and locate the crossover.
* Positional prior family: the Use Case 2 permutation flip exists for
  end-loaded priors and disappears under uniform attention.
"""

import pytest

from repro import Rage, RageConfig, SimulatedLLM, SimulatedLLMConfig
from repro.attention import PositionPrior
from repro.datasets import load_use_case
from repro.retrieval import BM25Scorer


@pytest.mark.parametrize("k1", [0.5, 0.9, 1.2, 2.0])
@pytest.mark.parametrize("b", [0.0, 0.4, 0.75])
def test_a1_bm25_grid_preserves_use_case_1(k1, b):
    case = load_use_case("big_three")
    rage = Rage.from_corpus(
        case.corpus,
        SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(k=case.k),
        retrieval_scorer=BM25Scorer(k1=k1, b=b),
    )
    context = rage.retrieve(case.query)
    # the match-wins document stays on top across the grid
    assert context.doc_ids()[0] == "bigthree-1-match-wins"
    assert rage.ask(case.query, context=context).answer == "Roger Federer"


def test_a1_superlative_strength_sweep():
    """The full-context Federer answer is robust to the explicit-
    superlative boost (the match-wins doc carries two claims from
    position 1), while the Use Case 1 *permutation flip* only exists
    while position outweighs claim strength — it disappears once the
    boost is large enough (between 5x and 8x) for the demoted document
    to win from any position."""
    case = load_use_case("big_three")
    answers, flips = {}, {}
    for strength in (1.0, 1.5, 2.0, 4.0, 8.0):
        llm = SimulatedLLM(
            knowledge=case.knowledge,
            config=SimulatedLLMConfig(superlative_strength=strength),
        )
        rage = Rage.from_corpus(case.corpus, llm, config=RageConfig(k=case.k))
        answers[strength] = rage.ask(case.query).answer
        flips[strength] = rage.permutation_counterfactual(case.query).found
    print("\nA1 UC1 answer / order-flip vs superlative strength:")
    for strength in answers:
        print(f"  strength {strength:>4}: {answers[strength]:<15} flip={flips[strength]}")
    assert all(answer == "Roger Federer" for answer in answers.values())
    assert flips[1.0] and flips[1.5] and flips[4.0]  # paper regime
    assert not flips[8.0]  # strength dominates position: no flip left


@pytest.mark.parametrize(
    "prior,expect_flip",
    [
        (PositionPrior.V_SHAPED, True),
        (PositionPrior.RECENCY, True),
        (PositionPrior.UNIFORM, False),
    ],
)
def test_a1_prior_family_controls_use_case_2_flip(prior, expect_flip):
    case = load_use_case("us_open")
    llm = SimulatedLLM(
        knowledge=case.knowledge,
        config=SimulatedLLMConfig(prior=prior, prior_depth=0.8),
    )
    rage = Rage.from_corpus(case.corpus, llm, config=RageConfig(k=case.k))
    result = rage.permutation_counterfactual(case.query)
    assert result.found is expect_flip
    if expect_flip:
        assert result.counterfactual.new_answer != "Coco Gauff"


def test_a1_recency_decay_sweep():
    """The stale-source confusion needs recency discounting weak enough
    for position to matter: with decay near 0 the newest claim wins from
    anywhere; the default 0.8 reproduces the paper's failure mode."""
    case = load_use_case("us_open")
    flips = {}
    for decay in (0.1, 0.3, 0.8, 0.95):
        llm = SimulatedLLM(
            knowledge=case.knowledge,
            config=SimulatedLLMConfig(recency_decay=decay),
        )
        rage = Rage.from_corpus(case.corpus, llm, config=RageConfig(k=case.k))
        result = rage.permutation_counterfactual(case.query)
        flips[decay] = result.found
    print("\nA1 UC2 order-flip exists vs recency decay:", flips)
    assert flips[0.1] is False  # strong discounting: recency always wins
    assert flips[0.3] is True   # crossover sits between 0.15 and 0.3
    assert flips[0.8] is True   # the default: position can override recency
    assert flips[0.95] is True


def test_a1_bm25_vs_tfidf_agree_on_demo(benchmark):
    """Scorer choice does not change the demo retrieval semantics."""
    from repro.retrieval import TfIdfScorer

    case = load_use_case("big_three")
    rage = Rage.from_corpus(
        case.corpus,
        SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(k=case.k),
        retrieval_scorer=TfIdfScorer(),
    )
    context = benchmark(lambda: rage.retrieve(case.query))
    assert context.doc_ids()[0] == "bigthree-1-match-wins"
