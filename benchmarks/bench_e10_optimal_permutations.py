"""E10 — Optimal permutations counteract the position bias.

    "Given a distribution of the expected attention paid to each
    position, this 'lost in the middle' bias can be counteracted by
    positioning important sources in high-attention positions."

Setup: most-recent questions over year-stamped sources.  The decisive
(newest) source is important; its importance score feeds the assignment
problem.  Shape: the top-1 optimal placement always yields the correct
answer; random placements sometimes bury the source and answer stale;
adversarial placements (optimal under the *inverted* expected
distribution) are wrong most often.
"""

import random
import statistics

from repro.attention import PositionPrior
from repro.core import optimal_permutations
from repro.core.context import Context
from repro.core.evaluate import ContextEvaluator
from repro.llm import PromptBuilder, SimulatedLLM, SimulatedLLMConfig
from repro.retrieval import Document

YEARS = list(range(2017, 2024))
NAMES = [
    "Ann Field", "Bo Gardner", "Cy Meadow", "Di Orchard", "Em Grove",
    "Fay Harvest", "Kit Sower",
]
QUESTION = "Who is the most recent winner of the harvest festival trophy?"


def _world(seed):
    rng = random.Random(seed)
    names = NAMES[:]
    rng.shuffle(names)
    docs = [
        Document(
            doc_id=f"harvest-{year}",
            text=f"The {year} harvest festival trophy was won by {name}.",
        )
        for year, name in zip(YEARS, names)
    ]
    rng.shuffle(docs)
    correct = names[YEARS.index(max(YEARS))]
    context = Context.from_documents(QUESTION, docs)
    # Importance: recency — the user (or an oracle scorer) knows newer
    # sources matter more for a most-recent question.
    relevance = {
        f"harvest-{year}": 0.9 ** (max(YEARS) - year) for year in YEARS
    }
    return context, relevance, correct


def _llm():
    return SimulatedLLM(config=SimulatedLLMConfig(prior_depth=0.8))


def _accuracy(orders, context, correct, evaluator):
    wins = 0
    for order in orders:
        if evaluator.evaluate(order).answer == correct:
            wins += 1
    return wins / len(orders)


def test_e10_optimal_vs_random_vs_adversarial():
    rates = {"optimal": [], "random": [], "adversarial": []}
    llm = _llm()
    for seed in range(20):
        context, relevance, correct = _world(seed)
        evaluator = ContextEvaluator(llm, context)
        optimal = optimal_permutations(
            context, relevance, s=1, prior=PositionPrior.V_SHAPED, depth=0.8
        )[0]
        adversarial = optimal_permutations(
            context, relevance, s=1, prior=PositionPrior.INVERTED_V, depth=0.8
        )[0]
        rng = random.Random(seed)
        random_orders = [
            tuple(rng.sample(context.doc_ids(), context.k)) for _ in range(10)
        ]
        rates["optimal"].append(
            _accuracy([optimal.order], context, correct, evaluator)
        )
        rates["adversarial"].append(
            _accuracy([adversarial.order], context, correct, evaluator)
        )
        rates["random"].append(
            _accuracy(random_orders, context, correct, evaluator)
        )
    means = {name: statistics.mean(values) for name, values in rates.items()}
    print("\nE10 correct-answer rate by placement policy (20 worlds):")
    for name in ("optimal", "random", "adversarial"):
        print(f"  {name:<12} {means[name] * 100:5.1f}%")
    assert means["optimal"] == 1.0
    assert means["optimal"] > means["random"] > means["adversarial"]


def test_e10_optimal_places_key_source_at_an_end():
    context, relevance, _ = _world(seed=3)
    best = optimal_permutations(context, relevance, s=1, depth=0.8)[0]
    newest = f"harvest-{max(YEARS)}"
    assert best.order.index(newest) in (0, context.k - 1)


def test_e10_top_s_orders_all_correct():
    """All of the top-5 optimal placements keep the answer correct."""
    llm = _llm()
    context, relevance, correct = _world(seed=7)
    evaluator = ContextEvaluator(llm, context)
    for placement in optimal_permutations(context, relevance, s=5, depth=0.8):
        assert evaluator.evaluate(placement.order).answer == correct


def test_e10_solver_cost(benchmark):
    context, relevance, _ = _world(seed=1)
    placements = benchmark(
        lambda: optimal_permutations(context, relevance, s=5, depth=0.8)
    )
    assert len(placements) == 5
