"""E15 — Answer-implication lattice pruning vs. the batched baseline.

The paper's contribution #2 promises "inference pruning strategies to
reduce the space of possible counterfactual explanations".  PR 1's
:class:`~repro.core.plan.EvaluationPlan` (benchmark E14) pre-batches
every enumerable perturbation but still pays one real LLM call per
distinct combination.  This benchmark measures what the
:class:`~repro.core.lattice.AnswerLattice` saves on top of that
baseline, and — the part that makes the savings trustworthy — asserts
answer-for-answer **exactness**: the pruned report's answers,
combination groups, rules, and counterfactual sources must be bitwise
identical to the unpruned run's.

Worlds: seeded :func:`~repro.datasets.synthetic.make_timeline_world`
counting scenarios (Use Case 3 analogues) across k ∈ {6..10} — counting
is monotone over the subset lattice, the regime where sandwich
implication is provably sound — plus the big_three use case and
position-weighted superlative worlds as the control group, where the
lattice's order-stability gate must keep the pruned run identical
(usually by refusing to imply anything).

Run directly (``pytest benchmarks/bench_e15_lattice_pruning.py -s``) to
see the per-k savings table; set ``BENCH_E15_OUT`` to also write the
results as JSON (uploaded as a CI artifact for BENCH trajectory
tracking).
"""

import json
import os

import pytest

from fakes import CountingLLM

from repro import Rage, RageConfig, SimulatedLLM
from repro.datasets import load_use_case
from repro.datasets.synthetic import make_superlative_world, make_timeline_world

K_RANGE = (6, 7, 8, 9, 10)
WORLD_SEED = 1
#: Shared explain() shape: every combination enumerated, permutation
#: insight and stability sets sampled, counterfactual budget bounded so
#: the (flipless) permutation search costs both modes the same.
EXPLAIN_KWARGS = dict(permutation_sample=40, stability_sample=40)
MAX_EVALUATIONS = 48


def _explain(world, k, plan_pruning, **overrides):
    llm = CountingLLM(SimulatedLLM(knowledge=world.knowledge))
    config = dict(
        k=k,
        cache=False,
        max_evaluations=MAX_EVALUATIONS,
        plan_pruning=plan_pruning,
    )
    config.update(overrides)
    rage = Rage.from_corpus(world.corpus, llm, config=RageConfig(**config))
    report = rage.explain(world.query, **EXPLAIN_KWARGS)
    return report, llm


def _groups_signature(insights):
    return {
        key: sorted(combo.kept for combo in combos)
        for key, combos in insights.groups.items()
    }


def _counterfactual_signature(result):
    cf = result.counterfactual
    if cf is None:
        found = None
    elif hasattr(cf, "changed_sources"):  # combination counterfactual
        found = (cf.changed_sources, cf.new_answer, cf.size)
    else:  # permutation counterfactual
        found = (cf.perturbation.order, cf.new_answer, cf.tau)
    return (result.found, found, result.baseline_answer)


def _assert_exact(pruned, plain):
    """Answer-for-answer exactness between pruned and unpruned reports."""
    assert pruned.answer == plain.answer
    assert _groups_signature(pruned.combination_insights) == _groups_signature(
        plain.combination_insights
    )
    assert (
        pruned.combination_insights.display_answers
        == plain.combination_insights.display_answers
    )
    assert pruned.combination_insights.rules == plain.combination_insights.rules
    assert _counterfactual_signature(pruned.top_down) == _counterfactual_signature(
        plain.top_down
    )
    assert _counterfactual_signature(pruned.bottom_up) == _counterfactual_signature(
        plain.bottom_up
    )
    assert _counterfactual_signature(
        pruned.permutation_counterfactual
    ) == _counterfactual_signature(plain.permutation_counterfactual)


def _run_k(k):
    world = make_timeline_world(k, seed=WORLD_SEED)
    pruned_report, pruned_llm = _explain(world, k, plan_pruning=True)
    plain_report, plain_llm = _explain(world, k, plan_pruning=False)
    _assert_exact(pruned_report, plain_report)
    assert pruned_llm.calls <= plain_llm.calls
    assert pruned_report.llm_calls == pruned_llm.calls
    saved = 1.0 - pruned_llm.calls / plain_llm.calls
    return {
        "k": k,
        "baseline_calls": plain_llm.calls,
        "pruned_calls": pruned_llm.calls,
        "saved_fraction": round(saved, 4),
        "implied": pruned_report.implied,
        "pruned": pruned_report.pruned,
        "dispatched": pruned_report.plan_stats.dispatched,
        "requested": pruned_report.plan_stats.requested,
    }


def test_e15_lattice_pruning_savings_and_exactness():
    """Headline: ≥ 25% fewer real LLM calls at every k ≥ 7, with
    bitwise-identical answers, groups, rules and counterfactuals."""
    rows = [_run_k(k) for k in K_RANGE]
    print(f"\nE15 LLM calls, pruned vs batched baseline (timeline worlds):")
    print(f"  {'k':>2} {'baseline':>9} {'pruned':>7} {'saved':>7} {'implied':>8}")
    for row in rows:
        print(
            f"  {row['k']:>2} {row['baseline_calls']:>9} {row['pruned_calls']:>7} "
            f"{row['saved_fraction'] * 100:>6.1f}% {row['implied']:>8}"
        )
    for row in rows:
        assert row["pruned_calls"] < row["baseline_calls"], row
        if row["k"] >= 7:
            assert row["saved_fraction"] >= 0.25, row
    out_path = os.environ.get("BENCH_E15_OUT")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump({"bench": "e15_lattice_pruning", "rows": rows}, handle, indent=2)


def test_e15_superlative_gate_keeps_reports_exact():
    """Control group: position-weighted worlds must stay identical —
    the order-stability gate (plus probes/rollback) bars unsound
    implication, and pruning never costs extra calls."""
    for seed in (0, 1, 2, 3):
        world = make_superlative_world(6, seed=seed)
        pruned_report, pruned_llm = _explain(
            world, 6, plan_pruning=True, max_evaluations=400
        )
        plain_report, plain_llm = _explain(
            world, 6, plan_pruning=False, max_evaluations=400
        )
        _assert_exact(pruned_report, plain_report)
        assert pruned_llm.calls <= plain_llm.calls


def test_e15_big_three_report_unchanged():
    """The flagship use case (k=4) sits below the pruning floor: the
    pruned flow must be call-for-call identical to the baseline."""
    case = load_use_case("big_three")
    pruned_report, pruned_llm = _explain(
        case, case.k, plan_pruning=True, max_evaluations=2000
    )
    plain_report, plain_llm = _explain(
        case, case.k, plan_pruning=False, max_evaluations=2000
    )
    _assert_exact(pruned_report, plain_report)
    assert pruned_llm.calls == plain_llm.calls
    assert pruned_report.pruned == 0


@pytest.mark.parametrize("plan_pruning", (True, False), ids=("pruned", "baseline"))
def test_e15_wallclock(benchmark, plan_pruning):
    """Wall-clock of the full k=8 report, pruned vs baseline."""
    world = make_timeline_world(8, seed=WORLD_SEED)

    def run():
        report, _ = _explain(world, 8, plan_pruning=plan_pruning)
        return report

    report = benchmark(run)
    assert report.combination_insights.total == 2 ** 8 - 1
