"""E20 — Single-flight coalescing and cross-request micro-batch windows.

PR 8 makes concurrent duplicate work cheap: the prompt cache grows a
single-flight registry (the second concurrent requester of a prompt
awaits the first's in-flight call instead of dispatching its own), and
the execution layer gains an opt-in micro-batch window that holds
misses from *different* requests for a few milliseconds and flushes
them as one native batch.  Shapes asserted:

1. **Thundering herd pays one call** — 16 threads racing one cold
   prompt produce exactly one inner model call with single-flight on;
   with it off, every racer dispatches its own.
2. **M tenants cost one tenant's calls** — four tenants replaying the
   same report concurrently against one server spend the same number
   of real LLM calls as a single tenant serially (dedup factor M >= 3),
   with byte-identical response bodies, and ``/metrics`` shows the
   coalescing counters moving.
3. **Windows merge cross-request misses** — two requests exercising
   one windowed engine at the same time land in shared flushes
   (``merged_windows >= 1``, flush sizes > 1) without changing any
   answer.

Everything stays on loopback under the network guard.  Set
``BENCH_E20_OUT`` to write the wall-clock table as JSON (uploaded as a
CI artifact).
"""

from __future__ import annotations

import threading

from _harness import print_rows, timed, write_results
from fakes import CountingLLM, LatencyLLM, http_json

from repro import Rage, RageConfig, SimulatedLLM
from repro.app.server import RageServer
from repro.datasets import load_use_case
from repro.llm import PromptBuilder
from repro.llm.cache import CachingLLM
from repro.viz.ascii import render_combination_insights

#: Simulated per-call model latency — long enough that a herd started
#: behind a barrier is still in flight when the last racer looks up.
LATENCY = 0.05

HERD = 16
TENANTS = ["t0", "t1", "t2", "t3"]

#: Rows accumulated across the tests below; the last test writes them
#: out as the CI artifact.
RESULTS: list = []


def _herd(cached, prompt, n):
    """Race n threads at one prompt through ``cached``; return answers."""
    barrier = threading.Barrier(n)
    answers = [None] * n

    def worker(i):
        barrier.wait()
        answers[i] = cached.generate(prompt).answer

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)
    return answers


def test_e20_thundering_herd_pays_one_call():
    """Acceptance: N racers on one cold key -> exactly one inner call."""
    case = load_use_case("big_three")
    prompt = PromptBuilder().build(
        case.query, [doc.text for doc in list(case.corpus)[:3]]
    )

    def racers(single_flight):
        # Latency outermost: LatencyLLM only exposes per-prompt entry
        # points, so the ladder never asks CountingLLM for a native
        # batch its inner model cannot serve.
        counting = CountingLLM(SimulatedLLM(knowledge=case.knowledge))
        cached = CachingLLM(
            LatencyLLM(counting, latency=LATENCY), single_flight=single_flight
        )
        answers, seconds = timed(_herd, cached, prompt, HERD)
        assert len(set(answers)) == 1  # everyone saw the same result
        return counting.calls, seconds

    calls_on, seconds_on = racers(True)
    calls_off, seconds_off = racers(False)
    RESULTS.append(
        {"label": "herd:single-flight", "seconds": seconds_on, "calls": calls_on}
    )
    RESULTS.append(
        {"label": "herd:off", "seconds": seconds_off, "calls": calls_off}
    )
    print_rows(f"E20 thundering herd ({HERD} threads, one prompt)", RESULTS[-2:])
    assert calls_on == 1  # the whole herd shared one flight
    assert calls_off > calls_on * 3  # without it, racers pile onto the model


def _server_for(case):
    counting = CountingLLM(SimulatedLLM(knowledge=case.knowledge))
    rage = Rage.from_corpus(
        case.corpus,
        LatencyLLM(counting, latency=0.01),
        config=RageConfig(k=case.k),
    )
    return RageServer(rage, TENANTS, default_query=case.query), counting


def _replay_report(base_url, tenant, bodies):
    status, _, _ = http_json.post_json(base_url + "/ask", {"tenant": tenant})
    assert status == 200
    status, _, body = http_json.post_json(base_url + "/explain", {"tenant": tenant})
    assert status == 200
    bodies[tenant] = body


def test_e20_concurrent_tenants_cost_one_tenants_calls():
    """Acceptance: M tenants concurrently ~= 1 tenant's real calls,
    byte-identical bodies, dedup factor >= 3."""
    case = load_use_case("big_three")

    serial_bodies = {}
    server, counting = _server_for(case)
    with server:
        # One tenant, serially: the baseline call budget.
        _, serial_seconds = timed(
            _replay_report, server.base_url, TENANTS[0], serial_bodies
        )
    serial_calls = counting.calls

    concurrent_bodies = {}
    server, counting = _server_for(case)
    with server:
        threads = [
            threading.Thread(
                target=_replay_report,
                args=(server.base_url, tenant, concurrent_bodies),
            )
            for tenant in TENANTS
        ]

        def drive():
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)

        _, concurrent_seconds = timed(drive)
        coalescing = server.metrics_payload()["coalescing"]

    concurrent_calls = counting.calls
    dedup = (len(TENANTS) * serial_calls) / max(concurrent_calls, 1)
    rows = [
        {
            "label": "tenants:1-serial",
            "seconds": serial_seconds,
            "calls": serial_calls,
        },
        {
            "label": f"tenants:{len(TENANTS)}-concurrent",
            "seconds": concurrent_seconds,
            "calls": concurrent_calls,
            "dedup": round(dedup, 2),
        },
    ]
    RESULTS.extend(rows)
    print_rows(
        f"E20 {len(TENANTS)} tenants replaying one report "
        f"(waiters_served={coalescing['single_flight']['waiters_served']})",
        rows,
    )
    # Every distinct prompt was dispatched exactly once across the fleet.
    assert concurrent_calls == serial_calls
    assert dedup >= 3.0
    # All four tenants read the very same bytes the lone tenant did.
    assert set(concurrent_bodies.values()) == set(serial_bodies.values())
    assert coalescing["single_flight"]["enabled"]
    assert coalescing["single_flight"]["flights"] > 0
    assert coalescing["single_flight"]["waiters_served"] > 0


def test_e20_window_merges_cross_request_misses():
    """Acceptance: concurrent requests on a windowed engine share
    flushes (> 1 submission per window) without changing answers."""
    case = load_use_case("big_three")
    queries = [
        case.query,
        "Who is the best tennis player by head to head record?",
    ]

    def insights_for(rage):
        rendered = [None] * len(queries)
        barrier = threading.Barrier(len(queries))

        def worker(i):
            barrier.wait()
            rendered[i] = render_combination_insights(
                rage.combination_insights(queries[i])
            )

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(queries))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        return rendered

    def engine(**overrides):
        return Rage.from_corpus(
            case.corpus,
            LatencyLLM(SimulatedLLM(knowledge=case.knowledge), latency=0.005),
            config=RageConfig(k=case.k, **overrides),
        )

    baseline = insights_for(engine())
    windowed_engine = engine(batch_window_ms=60.0)
    windowed = insights_for(windowed_engine)
    stats = windowed_engine.backend.window_stats
    row = {
        "label": "window:60ms",
        "windows": stats.windows,
        "merged": stats.merged_windows,
        "mean_flush": round(stats.mean_flush_size, 1),
        "max_flush": stats.max_flush,
    }
    RESULTS.append(row)
    print_rows("E20 micro-batch window, 2 concurrent requests", [row])
    assert windowed == baseline  # the window never changes answers
    assert stats.merged_windows >= 1  # cross-request misses shared a flush
    assert stats.max_flush > 1
    write_results("BENCH_E20_OUT", "e20_coalescing", RESULTS)
