"""E7 — Pruning strategies for the combination counterfactual search.

The paper's contribution #2: "inference pruning strategies to reduce the
space of possible counterfactual explanations, by prioritizing the
evaluation of important context perturbations" — equal-size combinations
are tried in order of estimated relevance (attention-based or
retrieval-based S).

Shape: over a pool of synthetic worlds, both relevance-guided orderings
reach the first counterfactual in fewer LLM calls than the unguided
(lexicographic) and random-priority baselines, while all strategies find
counterfactuals of identical (minimal) size.
"""

import random
import statistics

import pytest

from repro import Rage, RageConfig, RelevanceMethod, SimulatedLLM
from repro.core import ContextEvaluator, search_combination_counterfactual
from repro.datasets import make_superlative_world

K = 7
WORLDS = 30
STRATEGIES = ("retrieval", "attention", "lexicographic", "random")


def _engine(world, method=RelevanceMethod.RETRIEVAL):
    return Rage.from_corpus(
        world.corpus,
        SimulatedLLM(knowledge=world.knowledge),
        config=RageConfig(k=K, max_evaluations=4000, relevance_method=method),
    )


def _scores(rage, context, strategy, seed):
    if strategy == "lexicographic":
        return {doc_id: 0.0 for doc_id in context.doc_ids()}
    if strategy == "random":
        rng = random.Random(seed)
        return {doc_id: rng.random() for doc_id in context.doc_ids()}
    return rage.relevance_scores(context)


def _run_strategy(strategy):
    evaluations, sizes = [], []
    for seed in range(WORLDS):
        world = make_superlative_world(K, seed=seed)
        method = (
            RelevanceMethod.ATTENTION
            if strategy == "attention"
            else RelevanceMethod.RETRIEVAL
        )
        rage = _engine(world, method)
        context = rage.retrieve(world.query)
        evaluator = ContextEvaluator(rage.llm, context)
        result = search_combination_counterfactual(
            evaluator,
            _scores(rage, context, strategy, seed),
            max_evaluations=4000,
        )
        assert result.found, f"world {seed} had no counterfactual"
        evaluations.append(result.num_evaluations)
        sizes.append(result.counterfactual.size)
    return evaluations, sizes


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_e7_strategy_cost(benchmark, strategy):
    """Wall-clock per strategy (one representative world)."""
    world = make_superlative_world(K, seed=3)
    method = (
        RelevanceMethod.ATTENTION if strategy == "attention" else RelevanceMethod.RETRIEVAL
    )
    rage = _engine(world, method)
    context = rage.retrieve(world.query)
    scores = _scores(rage, context, strategy, seed=3)

    def run():
        evaluator = ContextEvaluator(rage.llm, context)
        return search_combination_counterfactual(evaluator, scores, max_evaluations=4000)

    result = benchmark(run)
    assert result.found


def test_e7_llm_calls_comparison():
    """The headline pruning shape: guided < unguided mean LLM calls."""
    means = {}
    all_sizes = {}
    print(f"\nE7 LLM calls to first counterfactual ({WORLDS} worlds, k={K}):")
    print(f"  {'strategy':<14} {'mean':>6} {'median':>7} {'max':>5}")
    for strategy in STRATEGIES:
        evaluations, sizes = _run_strategy(strategy)
        means[strategy] = statistics.mean(evaluations)
        all_sizes[strategy] = sizes
        print(
            f"  {strategy:<14} {means[strategy]:>6.2f} "
            f"{statistics.median(evaluations):>7.1f} {max(evaluations):>5}"
        )
    # Both relevance methods beat both baselines on average.
    for guided in ("retrieval", "attention"):
        for baseline in ("lexicographic", "random"):
            assert means[guided] < means[baseline], (guided, baseline, means)
    # Pruning changes the order, never the (minimal) outcome.
    reference = all_sizes["lexicographic"]
    for strategy in STRATEGIES:
        assert all_sizes[strategy] == reference
