"""E18 — The multi-tenant HTTP serving layer under concurrent load.

The serving PR turns the library into the paper's web service:
:class:`~repro.app.server.RageServer` answers ``/ask`` and ``/explain``
for a pool of tenants over one shared engine (one prompt cache, one
persistent store, one execution backend).  This benchmark is the first
time the whole stack — threaded HTTP handlers, atomic sessions, the
shared cache and the disk store — carries live concurrent traffic from
one process.  Shapes asserted:

1. **Concurrent tenants beat serial** — N tenants issuing their
   request streams simultaneously finish at least 2x faster than the
   same requests issued one after another (the model simulates remote
   latency; the server's request threads overlap it), with identical
   answers.
2. **Concurrency never changes bytes** — every tenant's ``/explain``
   under concurrent load is byte-identical to the in-process engine's
   report for the same question.
3. **Warm store absorbs repeat reports** — a second server lifetime
   sharing the first's ``cache_dir`` replays ask+explain with **zero**
   real LLM calls and byte-identical bodies, and both lifetimes'
   store counters survive into the merged lifetime meta (the
   lost-update bugfix).

Everything stays on loopback under the network guard.  Set
``BENCH_E18_OUT`` to write the wall-clock table as JSON (uploaded as a
CI artifact).
"""

from __future__ import annotations

import threading

from _harness import assert_speedup, print_rows, timed, write_results
from fakes import CountingLLM, LatencyLLM, http_json

from repro import Rage, RageConfig, SimulatedLLM
from repro.app import RageSession
from repro.app.server import RageServer, encode_json, report_payload
from repro.datasets import load_use_case

#: Simulated per-call model latency (the remote-API stand-in).  High
#: enough that waiting clearly dominates the GIL-bound per-request CPU
#: (which does not parallelize), so the asserted speedup ratio is
#: robust to slow or noisy CI hosts.
LATENCY = 0.05

TENANTS = ["t0", "t1", "t2", "t3"]
ASKS_PER_TENANT = 6


def _queries_for(case, tenant: str):
    """A tenant-private query stream (distinct prompts, no cache overlap)."""
    return [
        f"{case.query} (client {tenant} request {i})"
        for i in range(ASKS_PER_TENANT)
    ]


def _latency_server(case):
    llm = LatencyLLM(SimulatedLLM(knowledge=case.knowledge), latency=LATENCY)
    rage = Rage.from_corpus(case.corpus, llm, config=RageConfig(k=case.k))
    return RageServer(rage, TENANTS, default_query=case.query)


def _drive_tenant(base_url, tenant, queries, answers):
    for query in queries:
        status, _, body = http_json.post_json(
            base_url + "/ask", {"tenant": tenant, "query": query}
        )
        assert status == 200
        answers.append((tenant, query, http_json.body_json(body)["answer"]))


def test_e18_concurrent_tenants_beat_serial():
    """Acceptance: N tenants in parallel >= 2x faster than serially,
    same answers, every request admitted."""
    case = load_use_case("big_three")
    streams = {tenant: _queries_for(case, tenant) for tenant in TENANTS}

    serial_answers = []
    with _latency_server(case) as server:

        def drive_serially():
            for tenant in TENANTS:
                _drive_tenant(
                    server.base_url, tenant, streams[tenant], serial_answers
                )

        _, serial_seconds = timed(drive_serially)
        assert server.request_count() == len(TENANTS) * ASKS_PER_TENANT

    concurrent_answers = []
    with _latency_server(case) as server:
        threads = [
            threading.Thread(
                target=_drive_tenant,
                args=(server.base_url, tenant, streams[tenant], concurrent_answers),
            )
            for tenant in TENANTS
        ]

        def drive_concurrently():
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)

        _, concurrent_seconds = timed(drive_concurrently)
        assert server.request_count() == len(TENANTS) * ASKS_PER_TENANT
        assert all(status == 200 for status in server.statuses())

    rows = [
        {
            "mode": "serial",
            "seconds": round(serial_seconds, 4),
            "requests": len(serial_answers),
        },
        {
            "mode": f"concurrent:{len(TENANTS)}",
            "seconds": round(concurrent_seconds, 4),
            "requests": len(concurrent_answers),
        },
    ]
    print_rows(
        f"E18 {len(TENANTS)} tenants x {ASKS_PER_TENANT} asks at "
        f"{LATENCY * 1000:.0f}ms/model-call",
        rows,
    )
    # Identical work, identical answers — order aside.
    assert sorted(serial_answers) == sorted(concurrent_answers)
    # The acceptance ratio: four tenants overlapping their latency.
    assert_speedup(serial_seconds, concurrent_seconds, 2)
    write_results("BENCH_E18_OUT", "e18_serving", rows)


def test_e18_concurrent_explains_byte_identical_to_in_process():
    """Concurrency must never change the computation: each tenant's
    served report equals the in-process engine's, byte for byte."""
    case = load_use_case("big_three")
    queries = {
        "t0": case.query,
        "t1": "Who is the best tennis player by head to head record?",
        "t2": "Who won the most weeks at number one?",
    }
    expected = {}
    for tenant, query in queries.items():
        reference = RageSession.for_use_case(case, config=RageConfig(k=case.k))
        reference.pose(query)
        expected[tenant] = encode_json(report_payload(reference.report()))

    served = {}

    def drive(base_url, tenant, query):
        http_json.post_json(base_url + "/ask", {"tenant": tenant, "query": query})
        status, _, body = http_json.post_json(
            base_url + "/explain", {"tenant": tenant}
        )
        assert status == 200
        served[tenant] = body

    with RageServer.for_use_case("big_three", tenants=list(queries)) as server:
        threads = [
            threading.Thread(target=drive, args=(server.base_url, tenant, query))
            for tenant, query in queries.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        overlapped = server.rage.backend.stats.max_active

    assert served == expected
    print(f"\nE18 concurrent explains: max overlapping batches = {overlapped}")


def test_e18_warm_store_repeat_reports_zero_llm_calls(tmp_path):
    """Acceptance: a restarted server sharing the store answers the
    same traffic with zero real LLM calls and identical bytes."""
    case = load_use_case("big_three")
    store_dir = str(tmp_path / "store")

    def lifetime():
        counting = CountingLLM(SimulatedLLM(knowledge=case.knowledge))
        rage = Rage.from_corpus(
            case.corpus,
            counting,
            config=RageConfig(k=case.k, cache_dir=store_dir),
        )
        server = RageServer(rage, ["a", "b"], default_query=case.query)
        bodies = {}
        with server:
            for tenant in ("a", "b"):
                http_json.post_json(
                    server.base_url + "/ask", {"tenant": tenant}
                )
                bodies[tenant] = http_json.post_json(
                    server.base_url + "/explain", {"tenant": tenant}
                )[2]
        return counting.calls, bodies

    cold_calls, cold_bodies = lifetime()
    warm_calls, warm_bodies = lifetime()
    print(
        f"\nE18 store across lifetimes: cold={cold_calls} real calls, "
        f"warm={warm_calls}"
    )
    assert cold_calls > 0
    assert warm_calls == 0
    assert warm_bodies == cold_bodies
    # Both lifetimes' counters landed in the merged meta (no clobber).
    from repro.llm.store import PromptStore

    merged = PromptStore(store_dir).read_meta()
    assert merged["writes"] == cold_calls
    assert merged["hits"] > 0
