"""E19 — RouterLLM resilience: failover, breaker lifecycle, hedging.

The robustness PR puts a :class:`~repro.llm.router.RouterLLM` between
the engine and its providers: an ordered pool with per-provider circuit
breakers, priority failover, and optional hedged requests.  This
benchmark drives the router against scripted provider failures — 5xx
bursts, mid-body connection resets, stalled responses — and measures
what resilience buys.  Shapes asserted:

1. **Failover never changes bytes** — a primary scripted with a burst
   of 5xx / connection-reset / slow-drip faults still yields a report
   byte-identical to an all-healthy run: every faulted call lands on
   the backup, and the client cannot tell.
2. **Breaker counts match the fault script** — with a deterministic
   fault schedule and an injected clock, the primary's breaker trips
   and half-open reclosures equal exactly what the script dictates
   (two bursts past the threshold → two trips, two probe recoveries).
3. **Hedging cuts tail latency ≥2x** — against a primary with a
   deterministic slow tail, a hedged router's p99 is at least 2x lower
   than the unhedged router's, with identical answers.

Everything stays on loopback under the network guard.  Set
``BENCH_E19_OUT`` to write the results table as JSON (uploaded as a
CI artifact).
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from fakes import FakeLLMServer, Fault, simulated_answer_fn

from repro import Rage, RageConfig, RemoteLLM, RouterLLM
from repro.app.server import encode_json, report_payload
from repro.datasets import load_use_case
from repro.llm.base import GenerationResult, TokenUsage
from repro.llm.router import BreakerState
from repro.llm.transport import RetryPolicy

#: Router members retry at the router level (failover), not the
#: transport level — one attempt per provider keeps the schedule exact.
NO_RETRY = RetryPolicy(max_attempts=1)

#: The deterministic slow tail for the hedging comparison: every
#: TAIL_EVERY-th primary call stalls TAIL seconds.  TAIL dwarfs the
#: hedge delay so the asserted p99 ratio is robust on noisy CI hosts.
TAIL = 0.4
TAIL_EVERY = 10
HEDGE_DELAY = 0.02
HEDGE_REQUESTS = 60


class FakeClock:
    """Injectable monotonic clock; the breaker scenario advances it."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TailLatencyLLM:
    """Async member with a deterministic slow tail (no faults)."""

    def __init__(self, name: str, tail: float = 0.0) -> None:
        self._name = name
        self.tail = tail
        self.calls = 0

    @property
    def name(self) -> str:
        return self._name

    def generate(self, prompt: str) -> GenerationResult:
        return asyncio.run(self.agenerate(prompt))

    async def agenerate(self, prompt: str) -> GenerationResult:
        self.calls += 1
        if self.tail and self.calls % TAIL_EVERY == 0:
            await asyncio.sleep(self.tail)
        return GenerationResult(
            answer=f"echo:{self._name}", prompt=prompt, usage=TokenUsage(1, 1)
        )


def _dead_base_url() -> str:
    """A loopback URL nothing listens on (connections refused)."""
    with FakeLLMServer() as probe:
        url = probe.base_url
    return url


def _remote(model_id: str, base_url: str, **kwargs) -> RemoteLLM:
    return RemoteLLM(
        "openai", model_id, base_url=base_url, retry=NO_RETRY, **kwargs
    )


def _report_bytes(case, llm) -> bytes:
    rage = Rage.from_corpus(case.corpus, llm, config=RageConfig(k=case.k))
    return encode_json(report_payload(rage.explain(case.query)))


def test_e19_faulted_primary_report_is_byte_identical():
    """Shape 1: a fault burst on the primary is invisible in the bytes."""
    case = load_use_case("big_three")
    answers = simulated_answer_fn(case.knowledge)
    with FakeLLMServer(answer_fn=answers) as server_a:
        with FakeLLMServer(answer_fn=answers) as server_b:
            healthy = _report_bytes(
                case,
                RouterLLM([
                    _remote("fake-a", server_a.base_url),
                    _remote("fake-b", server_b.base_url),
                ]),
            )
            healthy_calls = server_a.request_count
            assert healthy_calls > 0
            assert server_b.request_count == 0

    with FakeLLMServer(answer_fn=answers) as server_a:
        with FakeLLMServer(answer_fn=answers) as server_b:
            server_a.add_faults(
                Fault(status=500),
                Fault(status=503),
                Fault(kind="connection-reset"),
                Fault(kind="slow-drip", delay=0.5),
            )
            router = RouterLLM([
                _remote("fake-a", server_a.base_url, timeout=0.1),
                _remote("fake-b", server_b.base_url),
            ])
            degraded = _report_bytes(case, router)
            faulted = server_b.request_count
    assert degraded == healthy
    assert faulted == 4  # exactly the scripted faults failed over
    assert router.stats.failovers == 4
    print(
        f"\nE19 failover: {healthy_calls} calls, 4 scripted faults, "
        f"bytes identical"
    )


def test_e19_breaker_counts_match_the_fault_script():
    """Shape 2: two fault bursts -> two trips, two probe reclosures."""
    clock = FakeClock()
    with FakeLLMServer() as server_a:
        with FakeLLMServer() as server_b:
            router = RouterLLM(
                [
                    _remote("fake-a", server_a.base_url),
                    _remote("fake-b", server_b.base_url),
                ],
                breaker_threshold=2,
                breaker_cooldown=5.0,
                clock=clock,
            )
            primary = router.health["remote:openai/fake-a"]

            for burst in range(2):
                server_a.add_faults(
                    Fault(status=500), Fault(kind="connection-reset")
                )
                router.generate("q")  # fault 1 of 2, backup serves
                router.generate("q")  # fault 2 of 2 -> trip, backup serves
                assert primary.breaker.state is BreakerState.OPEN
                assert primary.breaker.trips == burst + 1
                router.generate("q")  # open: primary skipped, no request
                clock.advance(5.0)
                router.generate("q")  # half-open probe succeeds -> reclose
                assert primary.breaker.state is BreakerState.CLOSED
                assert primary.breaker.reclosures == burst + 1

            # The script's arithmetic, end to end: 2 faults + 1 probe
            # + 1 recovered call per burst reach the primary; the open
            # breaker's skipped call and the faulted calls go to B.
            assert server_a.request_count == 2 * 3
            assert server_b.request_count == 2 * 3
            assert router.stats.failovers == 2 * 3
    print(
        f"\nE19 breaker: trips={primary.breaker.trips} "
        f"reclosures={primary.breaker.reclosures} (script said 2/2)"
    )


def _drive_async(router, n: int) -> list[float]:
    """Per-request latencies for n sequential agenerate calls."""

    async def run() -> list[float]:
        latencies = []
        for i in range(n):
            start = time.perf_counter()
            result = await router.agenerate(f"q{i}")
            latencies.append(time.perf_counter() - start)
            assert result.answer.startswith("echo:")
        return latencies

    return asyncio.run(run())


def _p99(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]


def test_e19_hedging_cuts_p99_at_least_2x():
    """Shape 3: a fast backup hedge absorbs the primary's slow tail."""

    def pool() -> list[TailLatencyLLM]:
        return [
            TailLatencyLLM("tail-primary", tail=TAIL),
            TailLatencyLLM("fast-backup"),
        ]

    unhedged = RouterLLM(pool())
    hedged = RouterLLM(pool(), hedge=True, hedge_delay=HEDGE_DELAY)

    plain = _drive_async(unhedged, HEDGE_REQUESTS)
    hedge = _drive_async(hedged, HEDGE_REQUESTS)
    plain_p99, hedge_p99 = _p99(plain), _p99(hedge)

    rows = [
        {"mode": "unhedged", "p99_ms": plain_p99 * 1000},
        {"mode": "hedged", "p99_ms": hedge_p99 * 1000},
    ]
    print(
        f"\nE19 hedging over {HEDGE_REQUESTS} requests "
        f"(tail {TAIL * 1000:.0f}ms every {TAIL_EVERY}th call):"
    )
    for row in rows:
        print(f"  {row['mode']:>9}  p99 {row['p99_ms']:>7.1f}ms")

    # The slow tail dominates the unhedged p99; the hedge fires after
    # HEDGE_DELAY and the fast backup wins those races.
    assert plain_p99 >= TAIL
    assert hedged.stats.hedges_fired > 0
    assert hedged.stats.hedges_won > 0
    # The acceptance ratio: hedging cuts p99 at least in half.
    assert hedge_p99 * 2 <= plain_p99

    out_path = os.environ.get("BENCH_E19_OUT")
    if out_path:
        rows.append({
            "mode": "hedge-stats",
            "hedges_fired": hedged.stats.hedges_fired,
            "hedges_won": hedged.stats.hedges_won,
        })
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(
                {"bench": "e19_router_resilience", "rows": rows},
                handle,
                indent=2,
            )
