"""Shared plumbing for the benchmark suite.

Every E-series benchmark does the same three things around its actual
measurement: wall-clock a callable, print a small aligned table, and —
when CI sets the matching ``BENCH_E*_OUT`` variable — dump the rows as
a JSON artifact.  That boilerplate lives here so each benchmark file
is only its experiment.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, Sequence, Tuple

#: Row keys tried, in order, for the table's left-hand label column.
_LABEL_KEYS = ("label", "mode", "backend")


def timed(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Run ``fn(*args, **kwargs)`` once; return (result, seconds)."""
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started


def print_rows(title: str, rows: Sequence[Dict[str, Any]]) -> None:
    """Render rows as the standard aligned wall-clock table.

    The first of ``label`` / ``mode`` / ``backend`` becomes the row
    label; a ``seconds`` value renders as milliseconds; everything else
    prints as ``key=value``.
    """
    print(f"\n{title}:")
    for row in rows:
        label = next((str(row[k]) for k in _LABEL_KEYS if k in row), "?")
        parts = []
        for key, value in row.items():
            if key in _LABEL_KEYS:
                continue
            if key == "seconds":
                parts.append(f"{value * 1000:>8.1f}ms")
            else:
                parts.append(f"{key}={value}")
        print(f"  {label:>16}  " + "  ".join(parts))


def write_results(
    env_var: str, bench: str, rows: Sequence[Dict[str, Any]], **extra: Any
) -> None:
    """Write the standard results JSON when ``env_var`` names a path.

    CI sets ``BENCH_E*_OUT`` and uploads the file as an artifact;
    local runs (no variable) skip the write entirely.
    """
    out_path = os.environ.get(env_var)
    if not out_path:
        return
    payload: Dict[str, Any] = {"bench": bench, "rows": list(rows)}
    payload.update(extra)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def assert_speedup(
    slow_seconds: float, fast_seconds: float, factor: float
) -> None:
    """Assert the fast path is at least ``factor``x faster — readably."""
    achieved = slow_seconds / max(fast_seconds, 1e-9)
    assert fast_seconds * factor <= slow_seconds, (
        f"expected a >= {factor:g}x speedup, measured {achieved:.2f}x "
        f"({slow_seconds:.3f}s vs {fast_seconds:.3f}s)"
    )
