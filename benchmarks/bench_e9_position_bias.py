"""E9 — "Lost in the middle": the position bias behind RAGE's
permutation explanations and optimal-permutation feature.

The paper builds on Liu et al. (2023): LLMs attend more to the beginning
and end of the context than to the middle.  Our simulated LLM implements
that bias through its V-shaped positional prior; this experiment sweeps
a decisive source across every context position and reproduces the
U-shaped accuracy curve — plus its disappearance under a uniform prior.
"""

import pytest

from repro.attention import PositionPrior
from repro.llm import PromptBuilder, SimulatedLLM, SimulatedLLMConfig

K = 7
BUILDER = PromptBuilder()

QUESTION = "Who is the best juggler in the circus?"
#: One strong source (explicit superlative) and K-1 weak distractors.
KEY_DOC = "Kit Marlowe is widely considered the best juggler in the circus."
DISTRACTORS = [
    f"{name} leads the juggler rankings with {200 - 7 * i} circus points."
    for i, name in enumerate(
        ["Ann Ball", "Bo Pins", "Cy Rings", "Di Clubs", "Em Torch", "Fay Knives"]
    )
]


def _answers_by_position(llm):
    outcomes = []
    for position in range(K):
        docs = DISTRACTORS[:position] + [KEY_DOC] + DISTRACTORS[position:]
        answer = llm.generate(BUILDER.build(QUESTION, docs)).answer
        outcomes.append(answer == "Kit Marlowe")
    return outcomes


def test_e9_u_shaped_accuracy():
    llm = SimulatedLLM(config=SimulatedLLMConfig(prior_depth=0.8))
    outcomes = _answers_by_position(llm)
    print("\nE9 key-source wins by position (V-shaped prior):")
    print("  " + " ".join("W" if won else "." for won in outcomes))
    assert outcomes[0] is True
    assert outcomes[-1] is True
    assert outcomes[K // 2] is False  # lost in the middle
    # symmetry of the V prior
    assert outcomes == outcomes[::-1]


def test_e9_uniform_prior_flattens_the_curve():
    llm = SimulatedLLM(
        config=SimulatedLLMConfig(prior=PositionPrior.UNIFORM)
    )
    outcomes = _answers_by_position(llm)
    assert all(outcomes)  # 1.5x strength wins everywhere without bias


@pytest.mark.parametrize("depth", [0.3, 0.6, 0.9])
def test_e9_depth_controls_the_dip(depth):
    """Deeper V priors lose the key source over more middle positions."""
    llm = SimulatedLLM(config=SimulatedLLMConfig(prior_depth=depth))
    outcomes = _answers_by_position(llm)
    losses = outcomes.count(False)
    print(f"\nE9 depth={depth}: middle losses = {losses}/{K}")
    if depth >= 0.6:
        assert losses > 0
    assert outcomes[0] and outcomes[-1]


def test_e9_sweep_cost(benchmark):
    llm = SimulatedLLM(config=SimulatedLLMConfig(prior_depth=0.8))
    outcomes = benchmark(lambda: _answers_by_position(llm))
    assert len(outcomes) == K


def test_e9_monotone_from_edge_to_middle():
    """Win margin decays monotonically toward the middle."""
    from repro.attention import position_weights

    weights = position_weights(PositionPrior.V_SHAPED, K, depth=0.8)
    margins = [weights[p] * 1.5 - max(weights[q] for q in range(K) if q != p)
               for p in range(K)]
    first_half = margins[: K // 2 + 1]
    assert all(a >= b for a, b in zip(first_half, first_half[1:]))
