"""E21 — Persistent retrieval index: build vs warm-open, incremental sync,
hybrid fusion quality.

PR 9 moves the retrieval substrate onto a SQLite-backed persistent
index (``retrieval/sqlindex.py``): postings, doc lengths and dense
vectors in one WAL database, loaded lazily on open.  Shapes asserted:

1. **Warm restart is a file open, not a rebuild** — reopening a
   persisted index serves byte-identical rankings to the build that
   wrote it, tokenizes *zero* documents, and at the top corpus tier is
   >= 10x faster than rebuilding from text (in practice it is orders
   of magnitude faster; the build/query latency table records the
   scaling across tiers).
2. **Incremental sync is change-driven** — re-syncing an unchanged
   corpus writes nothing (every document hashes as ``unchanged``), and
   a single-document edit re-tokenizes exactly one document.
3. **Fusion beats its parts honestly** — on the planted-relevant
   synthetic corpus, min-max and reciprocal-rank hybrid fusion match
   or beat BM25-only precision, and on the demo worlds both fusion
   strategies agree with BM25 on the top-ranked source for the
   canonical query (the persistent index is a storage change, not a
   relevance regression).

Corpus tiers default to 1k/10k/100k chunks; CI smoke trims them via
``BENCH_E21_TIERS`` (comma-separated sizes) to keep the job quick.
Set ``BENCH_E21_OUT`` to write the results table as JSON (uploaded as
a CI artifact).
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from _harness import assert_speedup, print_rows, timed, write_results

from repro.datasets import load_use_case, random_corpus
from repro.retrieval import (
    SqliteSearcher,
    make_retrieval_scorer,
    open_index,
    precision_at_k,
)

QUERY = "needle haystack signal"

#: Corpus sizes ("chunks") exercised by the scaling table.  CI smoke
#: overrides this down; the full ladder runs by default.
TIERS = [
    int(tier)
    for tier in os.environ.get("BENCH_E21_TIERS", "1000,10000,100000").split(",")
    if tier.strip()
]

#: Queries timed per tier (averaged for the per-query latency column).
QUERY_ROUNDS = 20

RESULTS: list = []


def _corpus(num_docs):
    corpus, relevant = random_corpus(
        num_docs, seed=0, num_relevant=20, doc_length=40
    )
    return list(corpus), relevant


@pytest.fixture(scope="module")
def tier_indexes(tmp_path_factory):
    """One persisted index per tier: {size: (dir, build_seconds, ranking)}."""
    root = tmp_path_factory.mktemp("e21")
    built = {}
    for size in TIERS:
        docs, _ = _corpus(size)
        index_dir = root / f"tier-{size}"

        def build():
            with open_index(index_dir) as index:
                index.add_many(docs)
                searcher = SqliteSearcher(index)
                return [
                    (source.doc_id, source.score)
                    for source in searcher.search(QUERY, k=20).sources
                ]

        ranking, seconds = timed(build)
        built[size] = (index_dir, seconds, ranking)
    return built


def test_e21_build_and_query_latency(tier_indexes):
    """The scaling table: build seconds and per-query latency by tier."""
    for size in TIERS:
        index_dir, build_seconds, _ = tier_indexes[size]
        with open_index(index_dir) as index:
            searcher = SqliteSearcher(index)
            searcher.search(QUERY, k=20)  # warm the page cache
            _, query_seconds = timed(
                lambda: [
                    searcher.search(QUERY, k=20) for _ in range(QUERY_ROUNDS)
                ]
            )
        RESULTS.append(
            {
                "label": f"build:{size}",
                "seconds": build_seconds,
                "query_ms": round(query_seconds / QUERY_ROUNDS * 1000, 3),
                "docs": size,
            }
        )
    print_rows("E21 index build + query latency", RESULTS[-len(TIERS):])


def test_e21_warm_open_beats_rebuild(tier_indexes):
    """Acceptance: warm open >= 10x faster than rebuild at the top tier,
    byte-identical ranking, zero re-tokenization."""
    top = max(TIERS)
    index_dir, build_seconds, cold_ranking = tier_indexes[top]

    def warm_open():
        with open_index(index_dir) as index:
            searcher = SqliteSearcher(index)
            ranking = [
                (source.doc_id, source.score)
                for source in searcher.search(QUERY, k=20).sources
            ]
            return ranking, index.counters["doc_tokenizations"]

    (warm_ranking, tokenizations), warm_seconds = timed(warm_open)
    RESULTS.append(
        {
            "label": f"warm-open:{top}",
            "seconds": warm_seconds,
            "speedup": round(build_seconds / max(warm_seconds, 1e-9), 1),
        }
    )
    print_rows("E21 warm open vs rebuild", RESULTS[-1:])
    assert warm_ranking == cold_ranking  # byte-identical ranking
    assert tokenizations == 0  # no document was re-analyzed
    assert_speedup(build_seconds, warm_seconds, 10)


def test_e21_incremental_sync_is_change_driven(tier_indexes):
    """Re-sync of an unchanged corpus is a no-op; one edit costs one doc."""
    size = min(TIERS)
    index_dir, build_seconds, _ = tier_indexes[size]
    docs, _ = _corpus(size)

    with open_index(index_dir) as index:
        _, noop_seconds = timed(index.sync, docs)
        assert index.counters["doc_tokenizations"] == 0
        assert index.counters["unchanged"] == size

        edited = dataclasses.replace(docs[0], text=docs[0].text + " edited")
        outcome = index.sync([edited] + docs[1:])
        assert outcome == {
            "added": 0, "updated": 1, "unchanged": size - 1, "removed": 0,
        }
        assert index.counters["doc_tokenizations"] == 1

    RESULTS.append(
        {
            "label": f"noop-sync:{size}",
            "seconds": noop_seconds,
            "vs_build": round(build_seconds / max(noop_seconds, 1e-9), 1),
        }
    )
    print_rows("E21 incremental sync", RESULTS[-1:])


def test_e21_hybrid_vs_bm25_quality(tmp_path):
    """Planted-relevant corpus: fusion matches or beats BM25 precision."""
    docs, relevant = _corpus(2000)
    with open_index(tmp_path / "quality", dense=True) as index:
        index.add_many(docs)
        rankers = {
            "bm25": make_retrieval_scorer(index, mode="bm25"),
            "dense": make_retrieval_scorer(index, mode="dense"),
            "hybrid-minmax": make_retrieval_scorer(
                index, mode="hybrid", fusion="minmax"
            ),
            "hybrid-rrf": make_retrieval_scorer(
                index, mode="hybrid", fusion="rrf"
            ),
        }
        precision = {}
        for name, scorer in rankers.items():
            searcher = SqliteSearcher(index, scorer=scorer)
            ranking = searcher.search(QUERY, k=len(relevant)).doc_ids()
            precision[name] = precision_at_k(
                ranking, relevant, k=len(relevant)
            )
            RESULTS.append({"label": f"quality:{name}", "p_at_r": precision[name]})
    print_rows("E21 hybrid vs BM25 quality (P@R)", RESULTS[-len(rankers):])
    assert precision["bm25"] == 1.0
    assert precision["hybrid-minmax"] >= precision["bm25"]
    assert precision["hybrid-rrf"] >= precision["bm25"]


def test_e21_demo_worlds_fusion_stays_in_the_bm25_pool(tmp_path):
    """On each demo world both fusion strategies fill the context from
    BM25's own top-k pool for the canonical query — fusion may reorder
    the relevant sources (the dense signal is allowed to disagree about
    *order*) but must not surface junk — then the artifact is written."""
    for name in ("big_three", "us_open", "player_of_the_year"):
        case = load_use_case(name)
        with open_index(tmp_path / name, dense=True) as index:
            index.sync(case.corpus)
            rankings = {}
            for mode, fusion in (
                ("bm25", None),
                ("hybrid", "minmax"),
                ("hybrid", "rrf"),
            ):
                scorer = make_retrieval_scorer(
                    index, mode=mode, fusion=fusion or "minmax"
                )
                searcher = SqliteSearcher(index, scorer=scorer)
                rankings[fusion or mode] = searcher.search(
                    case.query, k=case.k
                ).doc_ids()
        pool = set(rankings["bm25"])
        for strategy, ranking in rankings.items():
            assert set(ranking) <= pool, f"{name}/{strategy} left the pool"
        # Rank fusion follows the sparse signal when it is this dominant.
        assert rankings["rrf"][0] == rankings["bm25"][0]
        RESULTS.append(
            {"label": f"world:{name}", "top": rankings["bm25"][0]}
        )
    print_rows("E21 demo worlds (BM25 top source, fusion in-pool)", RESULTS[-3:])

    write_results(
        "BENCH_E21_OUT", "e21_retrieval", RESULTS, tiers=TIERS,
    )
