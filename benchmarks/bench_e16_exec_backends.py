"""E16 — Execution backends and the persistent generation store.

PR 3 replaced ad-hoc dispatch with an execution layer: every evaluation
batch is submitted through an :class:`~repro.exec.ExecutionBackend`,
and the prompt cache gains a content-addressed disk tier
(:class:`~repro.llm.store.PromptStore`).  Shapes asserted here:

1. On a latency-simulating model (each call waits like a remote API),
   the asyncio backend beats the serial loop by overlapping waits, and
   the threaded backend sits in between (bounded by its pool width).
2. ``explain()`` output is byte-identical across serial / threaded /
   asyncio backends — backends change *how* calls run, never answers.
3. A warm disk cache answers a repeated report with **zero** real LLM
   calls, and the warm report renders byte-identically to the cold one.

Run with ``--benchmark-disable`` for the shape checks only; set
``BENCH_E16_OUT`` to also write the wall-clock table as JSON.
"""

from __future__ import annotations

from _harness import print_rows, timed, write_results
from fakes import CountingLLM, LatencyLLM

from repro import Rage, RageConfig, SimulatedLLM
from repro.core.evaluate import ContextEvaluator
from repro.datasets import load_use_case
from repro.exec import AsyncioBackend, SerialBackend, ThreadedBackend, make_backend
from repro.viz.ascii import (
    render_combination_counterfactual,
    render_combination_insights,
    render_optimal_permutations,
    render_permutation_counterfactual,
    render_permutation_insights,
)

#: Per-call simulated network latency.  Large enough that scheduling
#: noise cannot blur the shapes (serial pays it ~30x sequentially).
LATENCY = 0.01
BACKEND_SPECS = ("serial", "threaded:8", "asyncio")


def _render_report(report) -> str:
    """Full textual rendering — the byte-identity unit of comparison."""
    parts = [f"answer={report.answer}"]
    parts.append(render_combination_insights(report.combination_insights))
    if report.permutation_insights is not None:
        parts.append(render_permutation_insights(report.permutation_insights))
    parts.append(render_combination_counterfactual(report.top_down))
    parts.append(render_combination_counterfactual(report.bottom_up))
    if report.permutation_counterfactual is not None:
        parts.append(
            render_permutation_counterfactual(report.permutation_counterfactual)
        )
    if report.stability is not None:
        parts.append(
            f"stability={report.stability.stable_fraction:.6f}"
            f"/{report.stability.num_permutations}"
            f"/{report.stability.flip_tau}"
        )
    parts.append(render_optimal_permutations(report.optimal))
    parts.append(f"llm_calls={report.llm_calls}")
    return "\n".join(parts)


def _latency_evaluation(backend, case, orderings):
    """Wall-clock one batched evaluation round through ``backend``."""
    llm = LatencyLLM(SimulatedLLM(knowledge=case.knowledge), latency=LATENCY)
    probe = Rage.from_corpus(
        case.corpus,
        SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(k=case.k),
    )
    context = probe.retrieve(case.query)
    evaluator = ContextEvaluator(llm, context, backend=backend)
    evaluations, elapsed = timed(evaluator.evaluate_many, orderings)
    return evaluations, elapsed, llm


def _subset_orderings(case) -> list:
    probe = Rage.from_corpus(
        case.corpus,
        SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(k=case.k),
    )
    context = probe.retrieve(case.query)
    ids = context.doc_ids()
    orderings = []
    for mask in range(1, 2 ** len(ids)):
        orderings.append(
            tuple(doc for position, doc in enumerate(ids) if mask & (1 << position))
        )
    return orderings


def test_e16_asyncio_beats_serial_on_latency_model():
    """Acceptance shape: asyncio < serial wall-clock; answers identical."""
    case = load_use_case("big_three")
    orderings = _subset_orderings(case)  # 15 distinct subsets at k=4
    rows = []
    answers = {}
    for spec in BACKEND_SPECS:
        backend = make_backend(spec)
        evaluations, elapsed, llm = _latency_evaluation(backend, case, orderings)
        answers[spec] = [e.normalized_answer for e in evaluations]
        rows.append(
            {
                "backend": spec,
                "seconds": round(elapsed, 4),
                "calls": llm.calls,
                "max_inflight": llm.max_inflight,
            }
        )
    print_rows(
        "E16 one evaluation round, latency-simulating model "
        f"({len(orderings)} prompts x {LATENCY * 1000:.0f}ms)",
        rows,
    )
    by_spec = {row["backend"]: row for row in rows}
    # Every backend evaluated the same prompts to the same answers.
    assert answers["serial"] == answers["threaded:8"] == answers["asyncio"]
    assert all(row["calls"] == len(orderings) for row in rows)
    # Serial pays every wait sequentially; asyncio overlaps them all.
    assert by_spec["asyncio"]["seconds"] < by_spec["serial"]["seconds"] / 2
    assert by_spec["asyncio"]["max_inflight"] > 1
    assert by_spec["serial"]["max_inflight"] == 1
    # The thread pool overlaps up to its width.
    assert by_spec["threaded:8"]["seconds"] < by_spec["serial"]["seconds"]
    assert 1 < by_spec["threaded:8"]["max_inflight"] <= 8
    write_results("BENCH_E16_OUT", "e16_exec_backends", rows)


def test_e16_asyncio_capacity_bounds_inflight():
    """``asyncio:N`` keeps at most N calls in flight."""
    case = load_use_case("big_three")
    orderings = _subset_orderings(case)
    _, _, llm = _latency_evaluation(AsyncioBackend(max_inflight=3), case, orderings)
    assert 1 < llm.max_inflight <= 3


def _engine(case, **config_kwargs):
    defaults = dict(k=case.k, max_evaluations=4000)
    defaults.update(config_kwargs)
    return Rage.from_corpus(
        case.corpus,
        SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(**defaults),
    )


def test_e16_report_byte_identical_across_backends():
    """Backends change execution only: explain() renders identically."""
    case = load_use_case("big_three")
    rendered = {}
    for spec in BACKEND_SPECS:
        rage = _engine(case, backend=spec)
        rendered[spec] = _render_report(rage.explain(case.query))
    assert rendered["serial"] == rendered["threaded:8"] == rendered["asyncio"]


def test_e16_warm_disk_cache_zero_real_calls(tmp_path):
    """A second process pays zero real LLM calls, byte-identical report."""
    case = load_use_case("big_three")
    cache_dir = str(tmp_path / "store")

    def run_once():
        counter = CountingLLM(SimulatedLLM(knowledge=case.knowledge))
        rage = Rage.from_corpus(
            case.corpus,
            counter,
            config=RageConfig(k=case.k, max_evaluations=4000, cache_dir=cache_dir),
        )
        report = rage.explain(case.query)
        return _render_report(report), counter, rage

    cold_text, cold_counter, cold_rage = run_once()
    assert cold_counter.calls > 0
    assert cold_rage.store.stats.writes == cold_counter.calls

    warm_text, warm_counter, warm_rage = run_once()
    print(
        f"\nE16 disk store: cold={cold_counter.calls} real calls, "
        f"warm={warm_counter.calls}, "
        f"{warm_rage.store.stats.hits} disk hits"
    )
    assert warm_counter.calls == 0
    assert warm_rage.store.stats.hits > 0
    assert warm_text == cold_text


def test_e16_wallclock_serial(benchmark):
    case = load_use_case("big_three")
    orderings = _subset_orderings(case)
    benchmark(lambda: _latency_evaluation(SerialBackend(), case, orderings))


def test_e16_wallclock_threaded(benchmark):
    case = load_use_case("big_three")
    orderings = _subset_orderings(case)
    benchmark(lambda: _latency_evaluation(ThreadedBackend(8), case, orderings))


def test_e16_wallclock_asyncio(benchmark):
    case = load_use_case("big_three")
    orderings = _subset_orderings(case)
    benchmark(lambda: _latency_evaluation(AsyncioBackend(), case, orderings))
