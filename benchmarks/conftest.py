"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (see the
experiment index in DESIGN.md) and records the *shape* EXPERIMENTS.md
documents: who wins, by what factor, where crossovers fall.  Shapes are
asserted; wall-clock numbers come from pytest-benchmark.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# The shared test doubles (fake HTTP server, counting/latency shims)
# live under tests/fakes; make them importable as ``fakes`` here too.
_TESTS_DIR = str(Path(__file__).resolve().parent.parent / "tests")
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)

from fakes import network_guard  # noqa: E402

from repro import Rage, RageConfig, SimulatedLLM  # noqa: E402
from repro.datasets import load_use_case  # noqa: E402

# Benchmarks are as hermetic as the tests: loopback only.
network_guard.install()


def engine_for(name: str, **config_kwargs) -> tuple:
    """(use_case, fresh engine) for a named demo dataset."""
    case = load_use_case(name)
    defaults = dict(k=case.k, max_evaluations=4000)
    defaults.update(config_kwargs)
    rage = Rage.from_corpus(
        case.corpus,
        SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(**defaults),
    )
    return case, rage


@pytest.fixture()
def big_three_setup():
    return engine_for("big_three")


@pytest.fixture()
def us_open_setup():
    return engine_for("us_open")


@pytest.fixture()
def potya_setup():
    return engine_for("player_of_the_year")
