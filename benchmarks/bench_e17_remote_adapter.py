"""E17 — The remote HTTP adapter under the async execution stack.

PR 4 gives the library its first model that actually speaks HTTP
(:class:`~repro.llm.remote.RemoteLLM` over
:mod:`~repro.llm.transport`), so this benchmark closes the loop the
E16 latency *simulation* only gestured at: real sockets, real
concurrency, a real (loopback, in-process, deterministic) server.
Shapes asserted:

1. **Async saturation** — on a 10ms-latency fake server, one
   evaluation round through ``asyncio:8`` is at least 3x faster than
   ``serial`` with byte-identical answers, and the server observes
   >1 but never more than 8 requests in flight.
2. **Rate-limiter compliance** — with a token-bucket throttle
   configured, the *server-side* journal never sees more requests in
   any window than ``burst + rate * window`` allows.
3. **Warm store absorbs repeats** — a report answered once into a
   ``PromptStore`` re-renders byte-identically with **zero** new HTTP
   requests.
4. **Fault policy end-to-end** — injected 429/5xx/malformed/truncated
   faults are absorbed by retries mid-report; a non-retryable status
   surfaces as an error.

Everything runs against :class:`fakes.FakeLLMServer` on loopback — the
network guard (installed in ``conftest``) fails any test that tries to
leave the machine.  Set ``BENCH_E17_OUT`` to write the wall-clock table
as JSON (uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from fakes import FakeLLMServer, Fault, simulated_answer_fn

from bench_e16_exec_backends import _render_report, _subset_orderings
from repro import Rage, RageConfig, RemoteLLM, SimulatedLLM
from repro.core.evaluate import ContextEvaluator
from repro.datasets import load_use_case
from repro.errors import HttpStatusError
from repro.exec import make_backend
from repro.llm.cache import CachingLLM
from repro.llm.transport import RetryPolicy

#: Per-request simulated server latency (matches E16's shape).
LATENCY = 0.01

FAST_RETRY = RetryPolicy(
    max_attempts=6, base_delay=0.005, max_delay=0.05, jitter=0.0
)


def _remote(server, **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    return RemoteLLM("openai", "fake-model", base_url=server.base_url, **kwargs)


def _evaluation_round(server, case, backend_spec, orderings, rate_limit=None):
    """One batched evaluation round over HTTP; returns (answers, secs)."""
    llm = _remote(server, rate_limit=rate_limit)
    probe = Rage.from_corpus(
        case.corpus,
        SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(k=case.k),
    )
    context = probe.retrieve(case.query)
    backend = make_backend(backend_spec)
    cached = CachingLLM(llm, max_inflight=backend.capacity)
    evaluator = ContextEvaluator(cached, context, backend=backend)
    started = time.perf_counter()
    evaluations = evaluator.evaluate_many(orderings)
    elapsed = time.perf_counter() - started
    return [e.normalized_answer for e in evaluations], elapsed


def test_e17_asyncio_saturates_without_exceeding_inflight():
    """Acceptance: asyncio:8 >= 3x faster than serial, equal answers,
    in-flight bounded by the configured capacity."""
    case = load_use_case("big_three")
    orderings = _subset_orderings(case)  # 15 distinct subsets at k=4
    rows = []
    answers = {}
    for spec in ("serial", "asyncio:8"):
        # Scripted echo answers: deterministic and lock-free, so the
        # only serialized resource is the wire — which is the thing
        # this shape measures.
        with FakeLLMServer(latency=LATENCY) as server:
            answers[spec], elapsed = _evaluation_round(
                server, case, spec, orderings
            )
            rows.append(
                {
                    "backend": spec,
                    "seconds": round(elapsed, 4),
                    "http_requests": server.request_count,
                    "max_inflight": server.max_inflight,
                }
            )
    by_spec = {row["backend"]: row for row in rows}
    print(
        f"\nE17 evaluation round over HTTP ({len(orderings)} prompts x "
        f"{LATENCY * 1000:.0f}ms):"
    )
    for row in rows:
        print(
            f"  {row['backend']:>9}  {row['seconds'] * 1000:>8.1f}ms  "
            f"requests={row['http_requests']}  max_inflight={row['max_inflight']}"
        )
    assert answers["serial"] == answers["asyncio:8"]
    assert all(row["http_requests"] == len(orderings) for row in rows)
    assert by_spec["serial"]["max_inflight"] == 1
    assert 1 < by_spec["asyncio:8"]["max_inflight"] <= 8
    # The acceptance ratio: overlapping 10ms waits 8-wide.
    assert by_spec["asyncio:8"]["seconds"] * 3 <= by_spec["serial"]["seconds"]
    out_path = os.environ.get("BENCH_E17_OUT")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump({"bench": "e17_remote_adapter", "rows": rows}, handle, indent=2)


def test_e17_rate_limiter_never_exceeds_configured_rps():
    """Server-side journal proof: admissions respect burst + rate*W."""
    case = load_use_case("big_three")
    prompts_needed = _subset_orderings(case)
    rate, burst = 60.0, 3
    with FakeLLMServer(
        answer_fn=simulated_answer_fn(case.knowledge)
    ) as server:
        llm = _remote(server, rate_limit=rate, rate_burst=burst)
        backend = make_backend("asyncio:16")
        probe = Rage.from_corpus(
            case.corpus,
            SimulatedLLM(knowledge=case.knowledge),
            config=RageConfig(k=case.k),
        )
        context = probe.retrieve(case.query)
        evaluator = ContextEvaluator(
            CachingLLM(llm, max_inflight=backend.capacity), context, backend=backend
        )
        evaluator.evaluate_many(prompts_needed)
        assert server.request_count == len(prompts_needed)
        for window in (0.25, 0.5, 1.0):
            observed = server.max_requests_per_window(window)
            allowed = burst + rate * window
            print(
                f"E17 rate compliance: {observed} requests in worst {window}s "
                f"window (allowed {allowed:.0f})"
            )
            # +1 tolerance: server-side arrival timestamps jitter by a
            # socket hop relative to client-side admission times.
            assert observed <= allowed + 1


def _report_session(server, case, cache_dir):
    rage = Rage.from_corpus(
        case.corpus,
        config=RageConfig(
            k=case.k,
            max_evaluations=4000,
            model="remote:openai:fake-model",
            base_url=server.base_url,
            backend="asyncio:8",
            cache_dir=cache_dir,
            retries=5,
        ),
    )
    report = rage.explain(case.query)
    return _render_report(report), rage


def test_e17_warm_store_repeat_report_zero_http(tmp_path):
    """A repeated report against the same store makes zero HTTP calls."""
    case = load_use_case("big_three")
    cache_dir = str(tmp_path / "store")
    with FakeLLMServer(
        answer_fn=simulated_answer_fn(case.knowledge), latency=LATENCY
    ) as server:
        cold_text, _ = _report_session(server, case, cache_dir)
        cold_requests = server.request_count
        assert cold_requests > 0
        warm_text, warm_rage = _report_session(server, case, cache_dir)
        print(
            f"\nE17 disk store: cold={cold_requests} HTTP requests, "
            f"warm={server.request_count - cold_requests}, "
            f"{warm_rage.store.stats.hits} disk hits"
        )
        assert server.request_count == cold_requests  # zero new requests
        assert warm_rage.store.stats.hits > 0
        assert warm_text == cold_text


def test_e17_report_survives_injected_faults():
    """Retryable faults mid-report are invisible to the explanation."""
    case = load_use_case("big_three")
    with FakeLLMServer(
        answer_fn=simulated_answer_fn(case.knowledge)
    ) as server:
        llm = _remote(server)
        rage = Rage.from_corpus(
            case.corpus,
            llm,
            config=RageConfig(k=case.k, max_evaluations=4000, backend="asyncio:8"),
        )
        server.add_faults(
            Fault(kind="status", status=429, retry_after=0.01),
            Fault(kind="status", status=503),
            Fault(kind="malformed"),
            Fault(kind="truncated"),
            Fault(kind="status", status=500),
        )
        report = rage.explain(case.query)
        assert report.answer  # the report came out whole
        assert llm.client.stats.retries >= 5
        reference = Rage.from_corpus(
            case.corpus,
            SimulatedLLM(knowledge=case.knowledge),
            config=RageConfig(k=case.k, max_evaluations=4000),
        ).explain(case.query)
        assert report.answer == reference.answer


def test_e17_non_retryable_fault_surfaces():
    with FakeLLMServer() as server:
        llm = _remote(server)
        server.add_fault(Fault(kind="status", status=403))
        with pytest.raises(HttpStatusError) as err:
            llm.generate("blocked")
        assert err.value.status == 403
        assert server.request_count == 1


def test_e17_wallclock_serial(benchmark):
    case = load_use_case("big_three")
    orderings = _subset_orderings(case)
    with FakeLLMServer(
        answer_fn=simulated_answer_fn(case.knowledge), latency=LATENCY
    ) as server:
        benchmark(
            lambda: _evaluation_round(server, case, "serial", orderings)
        )


def test_e17_wallclock_asyncio8(benchmark):
    case = load_use_case("big_three")
    orderings = _subset_orderings(case)
    with FakeLLMServer(
        answer_fn=simulated_answer_fn(case.knowledge), latency=LATENCY
    ) as server:
        benchmark(
            lambda: _evaluation_round(server, case, "asyncio:8", orderings)
        )
