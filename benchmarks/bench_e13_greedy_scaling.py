"""E13 — Extension: greedy counterfactuals for large contexts.

The paper's exhaustive size-major search is exact but combinatorial;
the greedy grow-and-shrink extension (``repro.core.greedy``) spends at
most ~2k LLM calls.  Shapes: (a) on the demo-sized use cases greedy
matches the exhaustive optimum exactly; (b) on wide timeline contexts
its cost grows linearly while the exhaustive bottom-up budget grows
combinatorially; (c) greedy results are always *minimal* (no member is
redundant), trading only global minimum-cardinality.
"""

import pytest

from repro import Rage, RageConfig, SimulatedLLM
from repro.core import (
    ContextEvaluator,
    SearchDirection,
    greedy_combination_counterfactual,
    search_combination_counterfactual,
)
from repro.datasets import load_use_case, make_timeline_world


def _engine(corpus, knowledge, k):
    return Rage.from_corpus(
        corpus,
        SimulatedLLM(knowledge=knowledge),
        config=RageConfig(k=k, max_evaluations=100_000),
    )


@pytest.mark.parametrize("name", ["big_three", "us_open"])
def test_e13_greedy_matches_exhaustive_on_demos(name):
    case = load_use_case(name)
    rage = _engine(case.corpus, case.knowledge, case.k)
    context = rage.retrieve(case.query)
    evaluator = ContextEvaluator(rage.llm, context)
    scores = rage.relevance_scores(context)
    greedy = greedy_combination_counterfactual(evaluator, scores)
    exact = search_combination_counterfactual(evaluator, scores)
    assert greedy.found and exact.found
    assert greedy.counterfactual.size == exact.counterfactual.size
    assert greedy.counterfactual.new_answer == exact.counterfactual.new_answer


@pytest.mark.parametrize("num_years", [10, 14, 18])
def test_e13_cost_scaling(num_years):
    """Bottom-up citation over growing timelines: greedy stays linear."""
    world = make_timeline_world(num_years, seed=2)
    rage = _engine(world.corpus, world.knowledge, num_years)
    context = rage.retrieve(world.query)
    scores = rage.relevance_scores(context)

    greedy_eval = ContextEvaluator(rage.llm, context)
    greedy = greedy_combination_counterfactual(
        greedy_eval, scores, direction=SearchDirection.BOTTOM_UP
    )
    exact_eval = ContextEvaluator(rage.llm, context)
    exact = search_combination_counterfactual(
        exact_eval, scores, direction=SearchDirection.BOTTOM_UP,
        max_evaluations=100_000,
    )
    assert greedy.found and exact.found
    print(
        f"\nE13 k={num_years}: greedy {greedy.num_evaluations} calls "
        f"(size {greedy.counterfactual.size}) vs exhaustive "
        f"{exact.num_evaluations} calls (size {exact.counterfactual.size})"
    )
    assert greedy.num_evaluations <= 2 * num_years
    assert greedy.counterfactual.size == exact.counterfactual.size
    # the exhaustive search pays combinatorially on these widths
    assert exact.num_evaluations > greedy.num_evaluations


def test_e13_greedy_cost(benchmark):
    world = make_timeline_world(16, seed=4)
    rage = _engine(world.corpus, world.knowledge, 16)
    context = rage.retrieve(world.query)
    scores = rage.relevance_scores(context)

    def run():
        evaluator = ContextEvaluator(rage.llm, context)
        return greedy_combination_counterfactual(
            evaluator, scores, direction=SearchDirection.BOTTOM_UP
        )

    result = benchmark(run)
    assert result.found


def test_e13_greedy_minimality():
    """Dropping any member of the greedy set breaks the flip."""
    world = make_timeline_world(12, seed=7)
    rage = _engine(world.corpus, world.knowledge, 12)
    context = rage.retrieve(world.query)
    evaluator = ContextEvaluator(rage.llm, context)
    scores = rage.relevance_scores(context)
    result = greedy_combination_counterfactual(
        evaluator, scores, direction=SearchDirection.BOTTOM_UP
    )
    assert result.found
    cf = result.counterfactual
    from repro.core import CombinationPerturbation
    from repro.textproc import normalize_answer

    for doc_id in cf.changed_sources:
        subset = tuple(d for d in cf.changed_sources if d != doc_id)
        kept = tuple(d for d in context.doc_ids() if d in set(subset))
        answer = evaluator.evaluate(
            CombinationPerturbation(kept=kept).apply(context)
        )
        assert answer.normalized_answer != normalize_answer(cf.new_answer)
