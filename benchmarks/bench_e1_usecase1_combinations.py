"""E1 — Figure 2 / Use Case 1: combination insights for The Big Three.

Regenerates the content of the paper's Figure 2: the answer pie chart,
the answer rules, and the combination-answer table, and checks each
narrative beat of Section III-B.
"""

from repro.core import ContextEvaluator


def test_e1_combination_insights(benchmark, big_three_setup):
    case, rage = big_three_setup

    def run():
        return rage.combination_insights(case.query)

    insights = benchmark(run)

    # Figure 2 shape: three answers, Federer the plurality.
    pie = insights.pie()
    assert [s.answer for s in pie][0] == "Roger Federer"
    assert {s.answer for s in pie} == {
        "Roger Federer", "Novak Djokovic", "Rafael Nadal"
    }
    assert insights.total == 15

    # The paper's headline rule.
    rule = insights.rule_for("Roger Federer")
    assert rule is not None and rule.required_sources == ("bigthree-1-match-wins",)

    print("\nE1 answer distribution (Fig. 2):")
    for item in pie:
        print(f"  {item.answer:<16} {item.count:>3}  {item.fraction * 100:5.1f}%")
    for rule in insights.rules:
        print(f"  rule: {rule.describe()}")


def test_e1_full_context_answer(benchmark, big_three_setup):
    case, rage = big_three_setup
    result = benchmark(lambda: rage.ask(case.query))
    assert result.answer == "Roger Federer"


def test_e1_top_down_counterfactual(benchmark, big_three_setup):
    case, rage = big_three_setup
    result = benchmark(lambda: rage.combination_counterfactual(case.query))
    assert result.found
    assert result.counterfactual.changed_sources == ("bigthree-1-match-wins",)
    assert result.counterfactual.new_answer == "Novak Djokovic"
    # Pruning found it on the very first candidate: the highest-relevance
    # single-source removal.
    assert result.num_evaluations == 1
    print(f"\nE1 top-down counterfactual found in {result.num_evaluations} LLM call(s)")


def test_e1_empty_context_parametric_answer(benchmark, big_three_setup):
    case, rage = big_three_setup
    context = rage.retrieve(case.query)
    evaluator = ContextEvaluator(rage.llm, context)
    result = benchmark(lambda: evaluator.generation(()))
    assert result.answer == "Novak Djokovic"
