"""E5 — Permutation sampling: O(ks) Fisher–Yates vs the O(k!) naive.

    "A naive solution might generate all k! permutations of the k
    sources, then uniformly sample s permutations, resulting in O(k!)
    time complexity. ... we invoke the Fisher-Yates algorithm s times
    ... resulting in an efficient O(ks) solution."

The shape to reproduce: Fisher–Yates is essentially flat in k while the
naive baseline grows factorially; the gap at k=9 is already orders of
magnitude.
"""

import random
import time

import pytest

from repro.combinatorics import naive_sample_permutations, sample_permutations

S = 32


@pytest.mark.parametrize("k", [6, 8, 10, 12])
def test_e5_fisher_yates_sampling(benchmark, k):
    items = list(range(k))

    def run():
        return sample_permutations(items, S, random.Random(0))

    perms = benchmark(run)
    assert len(perms) == S
    assert all(sorted(p) == items for p in perms)


@pytest.mark.parametrize("k", [6, 7, 8])
def test_e5_naive_sampling(benchmark, k):
    """The factorial baseline (k capped at 8 to keep the run sane)."""
    items = list(range(k))

    def run():
        return naive_sample_permutations(items, S, random.Random(0))

    perms = benchmark(run)
    assert len(perms) == S


def test_e5_crossover_table():
    """One-shot scaling table + the headline speedup assertion."""
    print("\nE5 sampling time (s=32), seconds:")
    print(f"  {'k':>3} {'fisher-yates':>14} {'naive k!':>14} {'speedup':>10}")
    speedup_at_9 = None
    for k in range(4, 10):
        items = list(range(k))
        start = time.perf_counter()
        for _ in range(5):
            sample_permutations(items, S, random.Random(1))
        fy = (time.perf_counter() - start) / 5
        start = time.perf_counter()
        naive_sample_permutations(items, S, random.Random(1))
        naive = time.perf_counter() - start
        print(f"  {k:>3} {fy:>14.6f} {naive:>14.6f} {naive / fy:>9.1f}x")
        if k == 9:
            speedup_at_9 = naive / fy
    assert speedup_at_9 is not None and speedup_at_9 > 50


def test_e5_both_methods_sample_uniform_space():
    """Both samplers draw valid, distinct permutations of the same space."""
    items = list(range(7))
    fy = sample_permutations(items, S, random.Random(2))
    naive = naive_sample_permutations(items, S, random.Random(2))
    for batch in (fy, naive):
        assert len(set(batch)) == S
        assert all(sorted(p) == items for p in batch)
