"""E6 — Optimal permutations: O(sk^3) k-best assignment vs O(k!) naive.

    "A naive O(k!) solution might generate all k! permutations, scoring
    each ... We use the algorithm proposed by Chegireddy and Hamacher,
    which allows us to calculate the s optimal permutations in O(sk^3)."

Shapes: (a) the CH solver returns exactly the naive top-s for every
checkable k; (b) it keeps scaling polynomially to k far beyond what
enumeration can touch (25! ~ 1.5e25).
"""

import random
import time

import pytest

from repro.attention import PositionPrior, position_weights
from repro.core import naive_optimal_permutations, optimal_permutations
from repro.core.context import Context
from repro.retrieval import Document

S = 10


def _context_and_scores(k, seed=0):
    rng = random.Random(seed)
    docs = [Document(doc_id=f"d{i:03d}", text=f"text {i}") for i in range(k)]
    context = Context.from_documents("q", docs)
    scores = {doc.doc_id: rng.uniform(0.05, 1.0) for doc in docs}
    return context, scores


@pytest.mark.parametrize("k", [5, 10, 15, 25])
def test_e6_kbest_ch_scaling(benchmark, k):
    context, scores = _context_and_scores(k)

    def run():
        return optimal_permutations(context, scores, s=S, method="ch")

    placements = benchmark(run)
    assert len(placements) == S
    values = [p.score for p in placements]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


@pytest.mark.parametrize("k", [5, 7])
def test_e6_naive_enumeration(benchmark, k):
    context, scores = _context_and_scores(k)
    weights = position_weights(PositionPrior.V_SHAPED, k, depth=0.8)

    def run():
        return naive_optimal_permutations(context, scores, S, weights)

    placements = benchmark(run)
    assert len(placements) == S


def test_e6_exactness_crosscheck():
    """CH == naive top-s on every enumerable size."""
    for k in range(2, 8):
        context, scores = _context_and_scores(k, seed=k)
        weights = position_weights(PositionPrior.V_SHAPED, k, depth=0.8)
        fast = optimal_permutations(context, scores, s=S, attention_weights=weights)
        naive = naive_optimal_permutations(context, scores, S, weights)
        assert [round(p.score, 9) for p in fast] == [
            round(p.score, 9) for p in naive
        ], f"mismatch at k={k}"
    print("\nE6 CH == naive top-s for k in 2..7")


def test_e6_scaling_table():
    """Polynomial growth: doubling k multiplies time by << k!-style blowup."""
    print("\nE6 Chegireddy-Hamacher time (s=10), seconds:")
    times = {}
    for k in (8, 16, 32):
        context, scores = _context_and_scores(k, seed=99)
        start = time.perf_counter()
        optimal_permutations(context, scores, s=S, method="ch")
        times[k] = time.perf_counter() - start
        print(f"  k={k:>3}: {times[k]:.4f}")
    # Growth from k=8 to k=32 (4x k) should be bounded by ~4^4 = 256x
    # (k^3 with an extra factor for the partition bookkeeping), nowhere
    # near factorial blowup (32!/8! ~ 6.5e33).
    assert times[32] / max(times[8], 1e-9) < 1000
