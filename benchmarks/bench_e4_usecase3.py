"""E4 — Use Case 3: timelines (ATP Player of the Year).

Regenerates Section III-D: the full-context answer 5; the bottom-up
counterfactual citing exactly the five Djokovic documents; and sampled
permutation insights showing a consistent answer with no rules.
"""

from repro.core import SearchDirection


def test_e4_full_context_answer(benchmark, potya_setup):
    case, rage = potya_setup
    result = benchmark(lambda: rage.ask(case.query))
    assert result.answer == "5"
    assert result.context.k == 10


def test_e4_bottom_up_citation(benchmark, potya_setup):
    case, rage = potya_setup
    result = benchmark(
        lambda: rage.combination_counterfactual(
            case.query, direction=SearchDirection.BOTTOM_UP
        )
    )
    assert result.found
    cited = sorted(result.counterfactual.changed_sources)
    assert cited == [
        "potya-2011", "potya-2012", "potya-2014", "potya-2015", "potya-2018"
    ]
    print(
        f"\nE4 bottom-up citation ({result.num_evaluations} LLM calls): "
        + ", ".join(cited)
    )


def test_e4_top_down_minimal_removal(benchmark, potya_setup):
    case, rage = potya_setup
    result = benchmark(lambda: rage.combination_counterfactual(case.query))
    assert result.found
    assert result.counterfactual.size == 1  # removing any one Djokovic year
    removed = result.counterfactual.changed_sources[0]
    assert removed in {
        "potya-2011", "potya-2012", "potya-2014", "potya-2015", "potya-2018"
    }
    assert result.counterfactual.new_answer == "4"


def test_e4_permutation_insights_stable(benchmark, potya_setup):
    case, rage = potya_setup
    insights = benchmark(
        lambda: rage.permutation_insights(case.query, sample_size=40)
    )
    assert insights.is_stable
    assert insights.pie()[0].answer == "5"
    assert insights.rules == []
    print(
        "\nE4 permutation insights: stable answer '5' across "
        f"{insights.total} sampled orders; no positional rules"
    )
