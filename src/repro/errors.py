"""Exception hierarchy for the repro (RAGE) library.

Every error raised deliberately by this package derives from
:class:`RageError`, so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class RageError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(RageError):
    """An invalid configuration value was supplied."""


class RetrievalError(RageError):
    """The retrieval substrate could not satisfy a request."""


class EmptyIndexError(RetrievalError):
    """A query was issued against an index with no documents."""


class UnknownDocumentError(RetrievalError):
    """A document identifier does not exist in the corpus or index."""


class PromptError(RageError):
    """A prompt could not be built or parsed."""


class GenerationError(RageError):
    """The language model failed to produce an answer."""


class SearchBudgetError(RageError):
    """A perturbation search was configured with a non-positive budget."""


class PerturbationError(RageError):
    """A perturbation is inconsistent with the context it applies to."""


class AssignmentError(RageError):
    """The assignment solver received an infeasible or malformed instance."""


class DatasetError(RageError):
    """A built-in dataset could not be constructed or located."""
