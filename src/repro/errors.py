"""Exception hierarchy for the repro (RAGE) library.

Every error raised deliberately by this package derives from
:class:`RageError`, so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class RageError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(RageError):
    """An invalid configuration value was supplied."""


class ValidationError(RageError, ValueError):
    """A caller-supplied argument failed a library precondition.

    Also derives from :class:`ValueError` so pre-taxonomy callers that
    catch the builtin keep working.
    """


class RetrievalError(RageError):
    """The retrieval substrate could not satisfy a request."""


class DocumentError(RetrievalError, ValueError):
    """A document is malformed or conflicts with the corpus.

    Dual-inherits :class:`ValueError` for backward compatibility with
    callers written before the taxonomy covered corpus construction.
    """


class EmptyIndexError(RetrievalError):
    """A query was issued against an index with no documents."""


class UnknownDocumentError(RetrievalError):
    """A document identifier does not exist in the corpus or index."""


class PromptError(RageError):
    """A prompt could not be built or parsed."""


class GenerationError(RageError):
    """The language model failed to produce an answer."""


class GenerationTimeoutError(GenerationError):
    """A per-call deadline expired before the model answered.

    ``prompts`` holds the prompt(s) that timed out; sibling calls in the
    same batch are always driven to completion first, so the error
    identifies exactly the hung work, never the whole batch.
    """

    def __init__(self, prompts, timeout: float) -> None:
        self.prompts = tuple(prompts)
        self.timeout = timeout
        shown = self.prompts[0] if self.prompts else "?"
        extra = f" (+{len(self.prompts) - 1} more)" if len(self.prompts) > 1 else ""
        super().__init__(
            f"generation exceeded {timeout}s for prompt {shown[:80]!r}{extra}"
        )


class BatchContractError(GenerationError, RuntimeError):
    """A batch backend broke the one-result-per-prompt alignment contract.

    Dual-inherits :class:`RuntimeError`: this is a backend programming
    error, and pre-taxonomy callers trap it as such.
    """


class StoreDecodeError(RageError, ValueError):
    """A persisted store record could not be decoded.

    Dual-inherits :class:`ValueError` so the store's corruption-as-miss
    handling (and older callers) keep catching the builtin.
    """


class TransportError(GenerationError):
    """An HTTP transport failure the remote adapter could not recover."""


class TransportTimeoutError(TransportError):
    """A remote request exceeded its per-request timeout."""


class HttpStatusError(TransportError):
    """The remote endpoint answered with a non-success status."""

    def __init__(self, status: int, message: str, retry_after=None) -> None:
        self.status = status
        self.retry_after = retry_after
        super().__init__(f"HTTP {status}: {message}")


class MalformedResponseError(TransportError):
    """The remote endpoint's body could not be parsed as a completion."""


class NoProviderAvailableError(GenerationError):
    """Every provider in a router pool was unavailable or failed.

    Raised by :class:`~repro.llm.router.RouterLLM` when the failover
    walk exhausts the pool: each provider either had its circuit
    breaker open or failed the request.  ``failures`` maps provider
    name to why, in the order the router walked the pool.
    """

    def __init__(self, failures) -> None:
        self.failures = dict(failures)
        detail = "; ".join(
            f"{name}: {why}" for name, why in self.failures.items()
        )
        super().__init__(
            f"no provider available ({detail or 'empty pool'})"
        )


class SearchBudgetError(RageError):
    """A perturbation search was configured with a non-positive budget."""


class PerturbationError(RageError):
    """A perturbation is inconsistent with the context it applies to."""


class AssignmentError(RageError):
    """The assignment solver received an infeasible or malformed instance."""


class DatasetError(RageError):
    """A built-in dataset could not be constructed or located."""
