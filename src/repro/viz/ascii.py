"""Terminal rendering: tables, pie charts, rules, counterfactuals.

The Plotly Dash UI of the paper shows, per analysis, a pie chart of the
answer distribution, a list of answer rules, and a table associating
answers with the perturbations that produced them.  This module renders
the same three artifacts as plain text for the CLI and examples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.counterfactual import CombinationSearchResult, SearchDirection
from ..core.insights import AnswerSlice, CombinationInsights, PermutationInsights
from ..core.optimal import OptimalPermutation
from ..core.permutation_cf import PermutationSearchResult

_BAR_WIDTH = 40


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A minimal fixed-width table with a header rule."""
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_pie(slices: Sequence[AnswerSlice], width: int = _BAR_WIDTH) -> str:
    """Horizontal-bar 'pie chart' of the answer distribution."""
    if not slices:
        return "(no answers)"
    label_width = max(len(s.answer) for s in slices)
    lines: List[str] = []
    for item in slices:
        bar = "#" * max(1, round(item.fraction * width))
        lines.append(
            f"{item.answer.ljust(label_width)}  {bar} "
            f"{item.fraction * 100:5.1f}%  ({item.count})"
        )
    return "\n".join(lines)


def render_combination_insights(insights: CombinationInsights, max_rows: int = 20) -> str:
    """Pie + rules + answer/combination table for one analysis."""
    parts = [
        f"Combination insights for: {insights.query}",
        f"  perturbations analyzed: {insights.total} "
        f"(LLM evaluations: {insights.num_evaluations})",
        "",
        "Answer distribution:",
        _indent(render_pie(insights.pie())),
        "",
        "Answer rules:",
    ]
    if insights.rules:
        parts.extend(f"  - {rule.describe()}" for rule in insights.rules)
    else:
        parts.append("  (no rules found)")
    rows = [
        (answer, ", ".join(kept) if kept else "(empty context)")
        for answer, kept in insights.answer_table()[:max_rows]
    ]
    parts.extend(["", "Combinations by answer:", _indent(render_table(("answer", "kept sources"), rows))])
    if insights.total > max_rows:
        parts.append(f"  ... {insights.total - max_rows} more rows")
    return "\n".join(parts)


def render_permutation_insights(insights: PermutationInsights, max_rows: int = 20) -> str:
    """Pie + positional rules + answer/permutation table."""
    parts = [
        f"Permutation insights for: {insights.query}",
        f"  perturbations analyzed: {insights.total} "
        f"(LLM evaluations: {insights.num_evaluations})",
        "",
        "Answer distribution:",
        _indent(render_pie(insights.pie())),
        "",
        "Positional rules:",
    ]
    if insights.rules:
        parts.extend(f"  - {rule.describe()}" for rule in insights.rules)
    else:
        parts.append("  (no rules found)")
    rows = []
    for key, perms in sorted(insights.groups.items(), key=lambda kv: -len(kv[1])):
        for perm in perms[: max(1, max_rows // max(1, len(insights.groups)))]:
            rows.append((insights.display_answers[key], " > ".join(perm.order)))
    parts.extend(["", "Permutations by answer (truncated):",
                  _indent(render_table(("answer", "order"), rows))])
    if insights.is_stable:
        parts.append("")
        parts.append("The answer is stable across every analyzed permutation.")
    return "\n".join(parts)


def render_combination_counterfactual(result: CombinationSearchResult) -> str:
    """One combination counterfactual as a citation-style sentence."""
    head = (
        "Top-down counterfactual"
        if result.direction is SearchDirection.TOP_DOWN
        else "Bottom-up counterfactual"
    )
    lines = [f"{head} (baseline answer: {result.baseline_answer!r})"]
    if result.counterfactual is None:
        status = "budget exhausted" if result.budget_exhausted else "no flip exists"
        lines.append(f"  not found ({status}; {result.num_evaluations} evaluations)")
        return "\n".join(lines)
    cf = result.counterfactual
    verb = "removing" if cf.direction is SearchDirection.TOP_DOWN else "retaining only"
    lines.append(
        f"  {verb} {', '.join(cf.changed_sources)} changes the answer to "
        f"{cf.new_answer!r}"
    )
    lines.append(
        f"  (subset size {cf.size}, {result.num_evaluations} LLM evaluations)"
    )
    return "\n".join(lines)


def render_permutation_counterfactual(result: PermutationSearchResult) -> str:
    """One permutation counterfactual with its similarity."""
    lines = [f"Permutation counterfactual (baseline answer: {result.baseline_answer!r})"]
    if result.counterfactual is None:
        status = "budget exhausted" if result.budget_exhausted else "no flip exists"
        lines.append(f"  not found ({status}; {result.num_evaluations} evaluations)")
        return "\n".join(lines)
    cf = result.counterfactual
    lines.append(f"  reorder to: {' > '.join(cf.perturbation.order)}")
    lines.append(
        f"  answer becomes {cf.new_answer!r} "
        f"(Kendall tau {cf.tau:.3f}; moved: {', '.join(cf.moved_sources)})"
    )
    return "\n".join(lines)


def render_optimal_permutations(placements: Sequence[OptimalPermutation]) -> str:
    """The top-s optimal placements as a table."""
    rows = [
        (str(p.rank), " > ".join(p.order), f"{p.score:.4f}") for p in placements
    ]
    return render_table(("rank", "order", "relevance x attention"), rows)


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
