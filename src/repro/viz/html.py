"""Static HTML reports — the dependency-free Plotly Dash substitute.

Renders a :class:`repro.core.engine.RageReport` into a self-contained
HTML page with an inline SVG pie chart, the answer rules, the
perturbation tables, and the counterfactual explanations.  No external
assets, no JavaScript dependencies — open the file in any browser.
"""

from __future__ import annotations

import html
import math
from typing import List, Sequence

from ..core.engine import RageReport
from ..core.insights import AnswerSlice

_PALETTE = [
    "#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2",
    "#b279a2", "#ff9da6", "#9d755d", "#bab0ac", "#eeca3b",
]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1c2733; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.5rem 0; width: 100%; }
th, td { border: 1px solid #d7dde3; padding: 0.3rem 0.6rem;
         text-align: left; font-size: 0.9rem; }
th { background: #eef2f6; }
.answer { font-weight: 600; color: #205081; }
.rule { background: #f6f8d8; padding: 0.4rem 0.8rem; border-radius: 4px;
        margin: 0.25rem 0; }
.legend-swatch { display: inline-block; width: 0.8rem; height: 0.8rem;
                 margin-right: 0.4rem; border-radius: 2px; }
figure { display: flex; gap: 2rem; align-items: center; margin: 1rem 0; }
"""


def _svg_pie(slices: Sequence[AnswerSlice], radius: int = 90) -> str:
    """Inline SVG pie chart for an answer distribution."""
    if not slices:
        return "<p>(no data)</p>"
    if len(slices) == 1:
        color = _PALETTE[0]
        return (
            f'<svg width="{2 * radius}" height="{2 * radius}">'
            f'<circle cx="{radius}" cy="{radius}" r="{radius}" fill="{color}"/></svg>'
        )
    cx = cy = radius
    parts: List[str] = [f'<svg width="{2 * radius}" height="{2 * radius}">']
    angle = -math.pi / 2
    for index, item in enumerate(slices):
        sweep = 2 * math.pi * item.fraction
        x1 = cx + radius * math.cos(angle)
        y1 = cy + radius * math.sin(angle)
        angle += sweep
        x2 = cx + radius * math.cos(angle)
        y2 = cy + radius * math.sin(angle)
        large = 1 if sweep > math.pi else 0
        color = _PALETTE[index % len(_PALETTE)]
        parts.append(
            f'<path d="M{cx},{cy} L{x1:.2f},{y1:.2f} '
            f'A{radius},{radius} 0 {large} 1 {x2:.2f},{y2:.2f} Z" '
            f'fill="{color}"/>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _legend(slices: Sequence[AnswerSlice]) -> str:
    rows = []
    for index, item in enumerate(slices):
        color = _PALETTE[index % len(_PALETTE)]
        rows.append(
            f'<div><span class="legend-swatch" style="background:{color}"></span>'
            f"{html.escape(item.answer)} — {item.fraction * 100:.1f}% "
            f"({item.count})</div>"
        )
    return "<div>" + "".join(rows) + "</div>"


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    head = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(str(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def render_report_html(report: RageReport, max_rows: int = 30) -> str:
    """Render a full explanation report as a standalone HTML page."""
    combo = report.combination_insights
    sections: List[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>RAGE report</title><style>{_CSS}</style></head><body>",
        "<h1>RAGE explanation report</h1>",
        f"<p><b>Question:</b> {html.escape(report.query)}</p>",
        f"<p><b>Full-context answer:</b> "
        f"<span class='answer'>{html.escape(report.answer)}</span></p>",
        f"<p><b>Context ({report.context.k} sources):</b> "
        + html.escape(" > ".join(report.context.doc_ids()))
        + "</p>",
        "<h2>Combination insights</h2>",
        "<figure>",
        _svg_pie(combo.pie()),
        _legend(combo.pie()),
        "</figure>",
    ]
    if combo.rules:
        sections.append("<div>")
        sections.extend(
            f"<p class='rule'>{html.escape(rule.describe())}</p>" for rule in combo.rules
        )
        sections.append("</div>")
    table_rows = [
        (answer, ", ".join(kept) if kept else "(empty)")
        for answer, kept in combo.answer_table()[:max_rows]
    ]
    sections.append(_table(("answer", "kept sources"), table_rows))

    if report.permutation_insights is not None:
        perm = report.permutation_insights
        sections.extend(
            [
                "<h2>Permutation insights</h2>",
                "<figure>",
                _svg_pie(perm.pie()),
                _legend(perm.pie()),
                "</figure>",
            ]
        )
        if perm.rules:
            sections.extend(
                f"<p class='rule'>{html.escape(rule.describe())}</p>" for rule in perm.rules
            )
        elif perm.is_stable:
            sections.append("<p>The answer is stable under every analyzed order.</p>")

    sections.append("<h2>Counterfactual explanations</h2>")
    for label, search in (("Top-down", report.top_down), ("Bottom-up", report.bottom_up)):
        if search.counterfactual is None:
            sections.append(f"<p><b>{label}:</b> none found.</p>")
            continue
        cf = search.counterfactual
        verb = "Removing" if label == "Top-down" else "Retaining only"
        sections.append(
            f"<p><b>{label}:</b> {verb} "
            f"<i>{html.escape(', '.join(cf.changed_sources))}</i> flips "
            f"{html.escape(cf.baseline_answer)} → "
            f"<span class='answer'>{html.escape(cf.new_answer)}</span> "
            f"({search.num_evaluations} evaluations).</p>"
        )
    if report.permutation_counterfactual is not None:
        pcf = report.permutation_counterfactual
        if pcf.counterfactual is not None:
            cf = pcf.counterfactual
            sections.append(
                f"<p><b>Permutation:</b> reordering to "
                f"<i>{html.escape(' > '.join(cf.perturbation.order))}</i> flips the "
                f"answer to <span class='answer'>{html.escape(cf.new_answer)}</span> "
                f"(Kendall tau {cf.tau:.3f}).</p>"
            )

    if report.optimal:
        sections.append("<h2>Optimal permutations</h2>")
        sections.append(
            _table(
                ("rank", "order", "score"),
                [(p.rank, " > ".join(p.order), f"{p.score:.4f}") for p in report.optimal],
            )
        )
    sections.append("</body></html>")
    return "".join(sections)


def write_report_html(report: RageReport, path: str, max_rows: int = 30) -> None:
    """Render and write the report to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_report_html(report, max_rows=max_rows))
