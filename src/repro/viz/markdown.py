"""Markdown rendering of explanation reports.

Completes the rendering trio (ASCII for terminals, HTML for browsers,
Markdown for READMEs / issue trackers / experiment logs): a
:class:`~repro.core.engine.RageReport` becomes a self-contained Markdown
document with tables for the distributions, block quotes for the rules,
and the counterfactual sentences.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.counterfactual import CombinationSearchResult, SearchDirection
from ..core.engine import RageReport
from ..core.insights import AnswerSlice
from ..core.permutation_cf import PermutationSearchResult


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    rule = "|" + "|".join("---" for _ in headers) + "|"
    body = "\n".join("| " + " | ".join(str(c) for c in row) + " |" for row in rows)
    return "\n".join([head, rule, body]) if rows else "\n".join([head, rule])


def _distribution_table(slices: Sequence[AnswerSlice]) -> str:
    return _table(
        ("answer", "perturbations", "share"),
        [(s.answer, s.count, f"{s.fraction * 100:.1f}%") for s in slices],
    )


def _combination_cf_line(result: CombinationSearchResult) -> str:
    label = (
        "Top-down" if result.direction is SearchDirection.TOP_DOWN else "Bottom-up"
    )
    if result.counterfactual is None:
        return f"**{label}:** none found ({result.num_evaluations} evaluations)."
    cf = result.counterfactual
    verb = "Removing" if result.direction is SearchDirection.TOP_DOWN else "Retaining only"
    sources = ", ".join(f"`{doc_id}`" for doc_id in cf.changed_sources)
    return (
        f"**{label}:** {verb} {sources} flips *{cf.baseline_answer}* → "
        f"**{cf.new_answer}** ({result.num_evaluations} evaluations)."
    )


def _permutation_cf_line(result: PermutationSearchResult) -> str:
    if result.counterfactual is None:
        return (
            f"**Permutation:** no order flip found "
            f"({result.num_evaluations} evaluations)."
        )
    cf = result.counterfactual
    order = " → ".join(f"`{doc_id}`" for doc_id in cf.perturbation.order)
    return (
        f"**Permutation:** reordering to {order} flips the answer to "
        f"**{cf.new_answer}** (Kendall tau {cf.tau:.3f})."
    )


def render_report_markdown(report: RageReport, max_rows: int = 25) -> str:
    """Render a full report as a Markdown document."""
    combo = report.combination_insights
    lines: List[str] = [
        "# RAGE explanation report",
        "",
        f"**Question:** {report.query}",
        "",
        f"**Full-context answer:** **{report.answer}**",
        "",
        "**Context:** " + " → ".join(f"`{d}`" for d in report.context.doc_ids()),
        "",
        "## Combination insights",
        "",
        _distribution_table(combo.pie()),
        "",
    ]
    if combo.rules:
        lines.append("Rules:")
        lines.append("")
        lines.extend(f"> {rule.describe()}" for rule in combo.rules)
        lines.append("")
    table_rows = [
        (answer, ", ".join(f"`{d}`" for d in kept) if kept else "*(empty)*")
        for answer, kept in combo.answer_table()[:max_rows]
    ]
    lines.extend([_table(("answer", "kept sources"), table_rows), ""])
    if combo.total > max_rows:
        lines.extend([f"*... {combo.total - max_rows} more rows*", ""])

    if report.permutation_insights is not None:
        perm = report.permutation_insights
        lines.extend(
            ["## Permutation insights", "", _distribution_table(perm.pie()), ""]
        )
        if perm.rules:
            lines.extend(f"> {rule.describe()}" for rule in perm.rules)
            lines.append("")
        elif perm.is_stable:
            lines.extend(
                ["The answer is stable under every analyzed order.", ""]
            )

    lines.extend(["## Counterfactual explanations", ""])
    lines.append("- " + _combination_cf_line(report.top_down))
    lines.append("- " + _combination_cf_line(report.bottom_up))
    if report.permutation_counterfactual is not None:
        lines.append("- " + _permutation_cf_line(report.permutation_counterfactual))
    lines.append("")

    if report.optimal:
        lines.extend(
            [
                "## Optimal permutations",
                "",
                _table(
                    ("rank", "order", "score"),
                    [
                        (
                            p.rank,
                            " → ".join(f"`{d}`" for d in p.order),
                            f"{p.score:.4f}",
                        )
                        for p in report.optimal
                    ],
                ),
                "",
            ]
        )
    return "\n".join(lines)


def write_report_markdown(report: RageReport, path: str, max_rows: int = 25) -> None:
    """Render and write the Markdown report to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_report_markdown(report, max_rows=max_rows))
