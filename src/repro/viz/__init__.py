"""Rendering: ASCII artifacts for the CLI, static HTML reports."""

from .ascii import (
    render_combination_counterfactual,
    render_combination_insights,
    render_optimal_permutations,
    render_permutation_counterfactual,
    render_permutation_insights,
    render_pie,
    render_table,
)
from .html import render_report_html, write_report_html
from .markdown import render_report_markdown, write_report_markdown

__all__ = [
    "render_combination_counterfactual",
    "render_combination_insights",
    "render_optimal_permutations",
    "render_permutation_counterfactual",
    "render_permutation_insights",
    "render_pie",
    "render_table",
    "render_report_html",
    "write_report_html",
    "render_report_markdown",
    "write_report_markdown",
]
