"""Attention substrate: positional priors and synthetic attention traces.

Substitutes for the paper's Hugging Face attention tensors (see
DESIGN.md section 3.2): the aggregate per-source attention preserves the
position + query-salience structure the explanations depend on.
"""

from .aggregate import (
    aggregate_by_source,
    combination_score,
    normalize_scores,
    rank_sources,
)
from .model import AttentionModel, AttentionTrace, TokenAttention, source_attention_scores
from .positional import (
    PositionPrior,
    inverted_v_weights,
    position_weights,
    primacy_weights,
    recency_weights,
    uniform_weights,
    v_shaped_weights,
)

__all__ = [
    "aggregate_by_source",
    "combination_score",
    "normalize_scores",
    "rank_sources",
    "AttentionModel",
    "AttentionTrace",
    "TokenAttention",
    "source_attention_scores",
    "PositionPrior",
    "inverted_v_weights",
    "position_weights",
    "primacy_weights",
    "recency_weights",
    "uniform_weights",
    "v_shaped_weights",
]
