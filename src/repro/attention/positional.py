"""Context-position attention priors.

The paper leans on the "lost in the middle" observation (Liu et al.,
2023): LLMs pay more attention to sources at the beginning and end of
the context than to those in the middle.  RAGE lets the user "calibrate
the expected distribution of LLM context position attention by selecting
a predefined V-shaped distribution"; this module provides that V-shaped
prior plus uniform / primacy / recency alternatives used in ablations.

A prior is a function of ``(position, k)`` returning a weight; the
module-level helpers produce the full normalized weight vector for a
context of ``k`` sources (weights sum to 1).
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Callable, Dict, List

from ..errors import ConfigError


class PositionPrior(str, Enum):
    """Named, predefined position-attention distributions."""

    V_SHAPED = "v_shaped"
    UNIFORM = "uniform"
    PRIMACY = "primacy"
    RECENCY = "recency"
    INVERTED_V = "inverted_v"


def _relative_position(position: int, k: int) -> float:
    """Map position 0..k-1 onto [-1, 1] (single-source contexts map to 0)."""
    if k == 1:
        return 0.0
    return 2.0 * position / (k - 1) - 1.0


def v_shaped_weights(k: int, depth: float = 0.5) -> List[float]:
    """The "lost in the middle" prior: high at the ends, low in the middle.

    ``depth`` in (0, 1] controls how much the middle is suppressed; the
    raw weight at relative position x is ``(1 - depth) + depth * x**2``,
    normalized to sum to 1.  depth=0 degenerates to uniform.
    """
    if not 0.0 <= depth <= 1.0:
        raise ConfigError(f"depth must be in [0, 1], got {depth}")
    raw = [(1.0 - depth) + depth * _relative_position(i, k) ** 2 for i in range(k)]
    return _normalize(raw)


def inverted_v_weights(k: int, depth: float = 0.5) -> List[float]:
    """The opposite bias (middle-heavy); used as a stress-test prior."""
    raw = [(1.0 - depth) + depth * (1.0 - _relative_position(i, k) ** 2) for i in range(k)]
    return _normalize(raw)


def uniform_weights(k: int) -> List[float]:
    """No position bias."""
    if k <= 0:
        raise ConfigError(f"k must be positive, got {k}")
    return [1.0 / k] * k


def primacy_weights(k: int, decay: float = 0.7) -> List[float]:
    """Geometrically decaying attention from the front of the context."""
    if not 0.0 < decay <= 1.0:
        raise ConfigError(f"decay must be in (0, 1], got {decay}")
    raw = [decay**i for i in range(k)]
    return _normalize(raw)


def recency_weights(k: int, decay: float = 0.7) -> List[float]:
    """Geometrically decaying attention from the back of the context."""
    return list(reversed(primacy_weights(k, decay)))


def _normalize(raw: List[float]) -> List[float]:
    if not raw:
        raise ConfigError("cannot build a prior over zero positions")
    total = math.fsum(raw)
    if total <= 0:
        raise ConfigError("prior weights must have positive mass")
    return [w / total for w in raw]


_BUILDERS: Dict[PositionPrior, Callable[[int], List[float]]] = {
    PositionPrior.V_SHAPED: v_shaped_weights,
    PositionPrior.UNIFORM: uniform_weights,
    PositionPrior.PRIMACY: primacy_weights,
    PositionPrior.RECENCY: recency_weights,
    PositionPrior.INVERTED_V: inverted_v_weights,
}


def position_weights(
    prior: PositionPrior | str,
    k: int,
    depth: float = 0.5,
    decay: float = 0.7,
) -> List[float]:
    """Normalized attention weights for ``k`` context positions.

    ``prior`` may be a :class:`PositionPrior` member or its string value.
    ``depth`` shapes the V-shaped/inverted-V priors; ``decay`` shapes the
    primacy/recency priors; each is ignored by the other families.
    """
    if k <= 0:
        raise ConfigError(f"k must be positive, got {k}")
    key = PositionPrior(prior)
    if key in (PositionPrior.V_SHAPED, PositionPrior.INVERTED_V):
        return _BUILDERS[key](k, depth)  # type: ignore[call-arg]
    if key in (PositionPrior.PRIMACY, PositionPrior.RECENCY):
        return _BUILDERS[key](k, decay)  # type: ignore[call-arg]
    return _BUILDERS[key](k)
