"""Aggregation of attention traces into source relevance estimates.

Implements the paper's first relevance method ``S``:

    "we aggregate the LLM's attention values, summing them over all
    internal layers, attention heads, and tokens corresponding to a
    combination's constituent sources."

and the combination-level estimate used to order equal-size subsets:

    "the sum of the relative relevance scores of all sources within the
    combination".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .model import AttentionTrace


def aggregate_by_source(trace: AttentionTrace, doc_ids: Sequence[str]) -> Dict[str, float]:
    """Sum attention over layers, heads and tokens, keyed by document id.

    ``doc_ids`` must align with the source order the trace was built
    from.  Sources whose tokens produced no attention get 0.0.
    """
    totals = trace.source_totals
    scores = {doc_id: 0.0 for doc_id in doc_ids}
    for index, doc_id in enumerate(doc_ids):
        if index < len(totals):
            scores[doc_id] = totals[index]
    return scores


def combination_score(source_scores: Dict[str, float], combination: Iterable[str]) -> float:
    """Estimated relevance of a combination: sum of member source scores.

    Per the paper, combinations are only compared at equal size, so no
    size normalization is applied.
    """
    return sum(source_scores.get(doc_id, 0.0) for doc_id in combination)


def normalize_scores(scores: Dict[str, float]) -> Dict[str, float]:
    """Scale scores to sum to 1 (all-zero input is returned unchanged)."""
    mass = sum(scores.values())
    if mass <= 0:
        return dict(scores)
    return {doc_id: value / mass for doc_id, value in scores.items()}


def rank_sources(scores: Dict[str, float]) -> List[str]:
    """Document ids sorted by descending score, ties broken by id."""
    return [
        doc_id
        for doc_id, _ in sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    ]
