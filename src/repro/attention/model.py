"""Synthetic multi-layer, multi-head attention traces.

The real RAGE sums Llama-2 attention values "over all internal layers,
attention heads, and tokens corresponding to a combination's constituent
sources".  Without the real model we synthesize attention tensors whose
structure preserves the two signals that drive that aggregate:

* **position** — each source's share of attention follows the simulated
  LLM's positional prior (V-shaped by default), and
* **query salience** — within a source, tokens overlapping the query's
  content terms receive proportionally more attention.

On top of that deterministic backbone, per-(layer, head, token) values
are modulated by a hash-seeded pseudo-random factor, so traces look like
real head-to-head variation while remaining exactly reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigError
from ..textproc import Tokenizer, word_spans
from .positional import PositionPrior, position_weights


def _hash_unit(*parts: object) -> float:
    """Deterministic pseudo-random float in (0, 1) from the parts' hash."""
    payload = "\x1f".join(str(part) for part in parts).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return (int.from_bytes(digest, "big") + 1) / (2**64 + 2)


@dataclass(frozen=True)
class TokenAttention:
    """Attention assigned to one source token, per layer and head.

    ``values[layer][head]`` is the attention weight this token received
    from the (simulated) answer position.
    """

    token: str
    source_index: int
    values: Tuple[Tuple[float, ...], ...]

    def total(self) -> float:
        """Sum over all layers and heads (the paper's aggregation unit)."""
        return sum(sum(head_values) for head_values in self.values)


@dataclass
class AttentionTrace:
    """The full synthetic attention record for one generation.

    Attributes
    ----------
    num_layers, num_heads:
        Tensor dimensions.
    tokens:
        Flat list of per-token attention entries across all sources.
    source_totals:
        Convenience: summed attention per source index, aligned with the
        context order the prompt presented.
    """

    num_layers: int
    num_heads: int
    tokens: List[TokenAttention] = field(default_factory=list)

    @property
    def source_totals(self) -> List[float]:
        """Summed attention per source position."""
        if not self.tokens:
            return []
        k = max(entry.source_index for entry in self.tokens) + 1
        totals = [0.0] * k
        for entry in self.tokens:
            totals[entry.source_index] += entry.total()
        return totals

    def source_share(self) -> List[float]:
        """Per-source attention normalized to sum to 1."""
        totals = self.source_totals
        mass = sum(totals)
        if mass <= 0:
            return totals
        return [value / mass for value in totals]


class AttentionModel:
    """Generates deterministic synthetic attention for a (query, sources).

    Parameters
    ----------
    num_layers, num_heads:
        Simulated transformer shape.  Small defaults keep perturbation
        searches fast; the aggregation is linear so the shape does not
        change relative source ordering.
    prior:
        Position prior governing the across-source attention split.
    seed:
        Extra entropy folded into the per-token hash so different model
        instances produce different (but individually stable) traces.
    """

    def __init__(
        self,
        num_layers: int = 4,
        num_heads: int = 4,
        prior: PositionPrior | str = PositionPrior.V_SHAPED,
        seed: int = 0,
        depth: float = 0.5,
    ) -> None:
        if num_layers <= 0 or num_heads <= 0:
            raise ConfigError("attention model needs >= 1 layer and head")
        self.num_layers = num_layers
        self.num_heads = num_heads
        self.prior = PositionPrior(prior)
        self.seed = seed
        self.depth = depth
        self._tokenizer = Tokenizer(remove_stopwords=True, stem=True)

    def trace(self, query: str, source_texts: Sequence[str]) -> AttentionTrace:
        """Build the attention trace for one prompt evaluation."""
        trace = AttentionTrace(num_layers=self.num_layers, num_heads=self.num_heads)
        k = len(source_texts)
        if k == 0:
            return trace
        pos_weights = position_weights(self.prior, k, depth=self.depth)
        query_terms = set(self._tokenizer.tokenize(query))
        for source_index, text in enumerate(source_texts):
            spans = word_spans(text)
            if not spans:
                continue
            saliences = [
                2.0 if self._analyzed(span.text) & query_terms else 1.0
                for span in spans
            ]
            salience_mass = sum(saliences)
            for token_index, (span, salience) in enumerate(zip(spans, saliences)):
                base = pos_weights[source_index] * salience / salience_mass
                values = tuple(
                    tuple(
                        base
                        * (0.5 + _hash_unit(self.seed, source_index, token_index, layer, head))
                        for head in range(self.num_heads)
                    )
                    for layer in range(self.num_layers)
                )
                trace.tokens.append(
                    TokenAttention(token=span.text, source_index=source_index, values=values)
                )
        return trace

    def _analyzed(self, token: str) -> set:
        return set(self._tokenizer.tokenize(token))


def source_attention_scores(trace: AttentionTrace) -> Dict[int, float]:
    """Aggregate a trace into per-source totals keyed by source index."""
    return dict(enumerate(trace.source_totals))
