"""Permutation generation and sampling.

Implements the paper's two generation strategies:

* exhaustive — "generates all length-k permutations for the k sources"
  (O(k!), only viable for small k), and
* sampled — s independent Fisher–Yates shuffles, each O(k), for an
  overall O(ks) instead of the naive generate-all-then-sample O(k!).

The naive baseline is kept (``naive_sample_permutations``) because
benchmark E5 reproduces the paper's complexity comparison.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Iterator, List, Sequence, Tuple, TypeVar

from ..errors import ConfigError

T = TypeVar("T")


def fisher_yates_shuffle(items: Sequence[T], rng: random.Random) -> List[T]:
    """Return an unbiased uniform random permutation of ``items``.

    Classic Fisher–Yates / Knuth shuffle: one pass, one ``randint`` per
    element, O(k) time and space.  The input is not modified.
    """
    result = list(items)
    for i in range(len(result) - 1, 0, -1):
        j = rng.randint(0, i)
        result[i], result[j] = result[j], result[i]
    return result


def sample_permutations(
    items: Sequence[T],
    sample_size: int,
    rng: random.Random,
    distinct: bool = True,
    exclude: Sequence[Sequence[T]] = (),
) -> List[Tuple[T, ...]]:
    """Draw ``sample_size`` random permutations in O(k * sample_size).

    With ``distinct=True`` duplicate draws are rejected; if the request
    exceeds the admissible population all admissible permutations are
    returned instead (still bounded).  ``exclude`` lists forbidden
    permutations (e.g. the identity) that are rejected *during* the
    draw, so the result never silently under-fills.
    """
    if sample_size <= 0:
        raise ConfigError(f"sample_size must be positive, got {sample_size}")
    k = len(items)
    reference = sorted(items)
    # Only true permutations of ``items`` shrink the population; other
    # entries could never be drawn anyway.
    excluded = {
        order
        for order in {tuple(o) for o in exclude}
        if sorted(order) == reference
    }
    population = math.factorial(k) - len(excluded)
    if population <= 0:
        # Every permutation is forbidden: rejection sampling below
        # would loop forever regardless of the distinct flag.
        raise ConfigError("exclude forbids every permutation of the items")
    if distinct and sample_size >= population:
        return [
            perm for perm in itertools.permutations(items) if perm not in excluded
        ]
    picks: List[Tuple[T, ...]] = []
    seen: set = set()
    while len(picks) < sample_size:
        perm = tuple(fisher_yates_shuffle(items, rng))
        if perm in excluded:
            continue
        if distinct:
            if perm in seen:
                continue
            seen.add(perm)
        picks.append(perm)
    return picks


def naive_sample_permutations(
    items: Sequence[T],
    sample_size: int,
    rng: random.Random,
) -> List[Tuple[T, ...]]:
    """The O(k!) baseline: materialize every permutation, then sample.

    Kept only for the complexity benchmark (E5); do not use in library
    code paths.
    """
    if sample_size <= 0:
        raise ConfigError(f"sample_size must be positive, got {sample_size}")
    universe = list(itertools.permutations(items))
    if sample_size >= len(universe):
        return universe
    return rng.sample(universe, sample_size)


def all_permutations(items: Sequence[T]) -> Iterator[Tuple[T, ...]]:
    """Every permutation in lexicographic index order (O(k!))."""
    return itertools.permutations(items)


def permutation_count(k: int) -> int:
    """k! — the size of the permutation search space."""
    return math.factorial(k)


def apply_permutation(items: Sequence[T], order: Sequence[int]) -> List[T]:
    """Reorder ``items`` so position ``p`` holds ``items[order[p]]``.

    ``order`` must be a permutation of ``range(len(items))``.
    """
    if sorted(order) != list(range(len(items))):
        raise ConfigError("order is not a permutation of the item indices")
    return [items[i] for i in order]


def inversion_vector(perm: Sequence[int]) -> List[int]:
    """Per-element inversion counts (diagnostic used in tests)."""
    return [
        sum(1 for j in range(i) if perm[j] > perm[i])
        for i in range(len(perm))
    ]
