"""Combination enumeration and sampling over context sources.

The combination counterfactual search "tests combinations in increasing
order of subset size", and within one size "in order of their estimated
relevance" (sum of member relevance scores).  This module provides that
ordered enumeration as a lazy generator, plus uniform random sampling of
combinations for the insight analyses.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigError


def combination_mask(items: Sequence[str], combination: Iterable[str]) -> int:
    """Bitmask of ``combination`` over the ``items`` universe.

    Bit ``i`` is set when ``items[i]`` is a member.  The mask is the
    canonical subset encoding shared by :func:`sample_combinations` and
    :class:`repro.core.lattice.AnswerLattice`; unknown members raise
    :class:`ConfigError`.
    """
    positions = {item: index for index, item in enumerate(items)}
    mask = 0
    for member in combination:
        index = positions.get(member)
        if index is None:
            raise ConfigError(f"{member!r} is not in the item universe")
        mask |= 1 << index
    return mask


def mask_combination(items: Sequence[str], mask: int) -> Tuple[str, ...]:
    """Members of ``mask`` in ``items`` order (inverse of
    :func:`combination_mask`)."""
    if mask < 0 or mask >> len(items):
        raise ConfigError(f"mask {mask:#x} out of range for {len(items)} items")
    return tuple(item for index, item in enumerate(items) if mask >> index & 1)


def combinations_of_size(items: Sequence[str], size: int) -> Iterator[Tuple[str, ...]]:
    """All size-``size`` combinations in lexicographic index order."""
    if size < 0 or size > len(items):
        return iter(())
    return itertools.combinations(items, size)


def all_combinations(
    items: Sequence[str],
    include_empty: bool = True,
    include_full: bool = True,
) -> Iterator[Tuple[str, ...]]:
    """Every combination, size-major (0, 1, ..., k)."""
    k = len(items)
    start = 0 if include_empty else 1
    end = k if include_full else k - 1
    for size in range(start, end + 1):
        yield from itertools.combinations(items, size)


def count_combinations(k: int, include_empty: bool = True, include_full: bool = True) -> int:
    """Number of combinations :func:`all_combinations` would yield."""
    total = 2**k
    if not include_empty:
        total -= 1
    if not include_full and k >= 0:
        total -= 1
    return total


def ordered_combinations(
    items: Sequence[str],
    scores: Optional[Dict[str, float]] = None,
    min_size: int = 1,
    max_size: Optional[int] = None,
    descending: bool = True,
) -> Iterator[Tuple[str, ...]]:
    """Size-major enumeration, relevance-ordered within each size.

    Parameters
    ----------
    items:
        The source ids (the retrieved context ``Dq``).
    scores:
        Per-source estimated relevance ``S(q, d, Dq)``.  A combination's
        estimate is the sum over its members (no size normalization —
        only equal-size combinations are compared).  ``None`` falls back
        to lexicographic order within each size.
    min_size, max_size:
        Inclusive size bounds; ``max_size`` defaults to ``len(items)``.
    descending:
        Highest estimated relevance first (the paper's prioritization).
    """
    k = len(items)
    upper = k if max_size is None else max_size
    if min_size < 0 or upper > k or min_size > upper:
        raise ConfigError(f"invalid size bounds [{min_size}, {upper}] for k={k}")
    for size in range(min_size, upper + 1):
        combos = list(itertools.combinations(items, size))
        if scores is not None:
            combos.sort(
                key=lambda combo: (
                    -sum(scores.get(d, 0.0) for d in combo) if descending
                    else sum(scores.get(d, 0.0) for d in combo),
                    combo,
                )
            )
        yield from combos


def sample_combinations(
    items: Sequence[str],
    sample_size: int,
    rng: random.Random,
    include_empty: bool = False,
    include_full: bool = True,
) -> List[Tuple[str, ...]]:
    """Draw ``sample_size`` distinct combinations uniformly at random.

    Sampling draws a uniform bitmask per attempt and rejects duplicates,
    so no factorial-sized materialization occurs.  When ``sample_size``
    meets or exceeds the number of admissible combinations, all of them
    are returned (size-major order).
    """
    if sample_size <= 0:
        raise ConfigError(f"sample_size must be positive, got {sample_size}")
    k = len(items)
    if k == 0:
        # Degenerate universe: the only combination is the empty one —
        # which is also the full one, so both flags must admit it.
        # Guarded explicitly because ``rng.getrandbits(0)`` raises
        # ValueError on Python < 3.11.
        return [()] if include_empty and include_full else []
    population = count_combinations(k, include_empty, include_full)
    if sample_size >= population:
        return list(all_combinations(items, include_empty, include_full))
    seen: set = set()
    picks: List[Tuple[str, ...]] = []
    while len(picks) < sample_size:
        mask = rng.getrandbits(k)
        if not include_empty and mask == 0:
            continue
        if not include_full and mask == (1 << k) - 1:
            continue
        if mask in seen:
            continue
        seen.add(mask)
        picks.append(mask_combination(items, mask))
    return picks


def complement(items: Sequence[str], combination: Iterable[str]) -> Tuple[str, ...]:
    """Sources of ``items`` not in ``combination`` (original order kept)."""
    removed = set(combination)
    return tuple(item for item in items if item not in removed)
