"""k-best assignments: ranked solutions of the assignment problem.

RAGE's "optimal permutations" feature asks for the top-s placements of k
sources into k context positions, maximizing the sum of
relevance x expected positional attention.  The paper formulates this as
the s-best assignment problem and adopts the Chegireddy–Hamacher
algorithm (Discrete Applied Mathematics, 1987), which finds the s best
perfect matchings in O(s k^3).

This module implements:

* :func:`second_best_assignment` — the O(k^3) core: the second-best
  matching differs from the best by one alternating cycle, and with the
  Hungarian duals all reduced costs are non-negative, so the cheapest
  such cycle is found with a Floyd–Warshall pass over a k-node digraph.
* :func:`kbest_assignments_ch` — Chegireddy–Hamacher binary
  partitioning: each active subspace keeps its best and second-best
  solutions; emitting the globally-next solution splits one subspace on
  an edge in (best \\ second).
* :func:`kbest_assignments_murty` — Murty's classic partitioning, kept
  as an independently-implemented cross-check (tests require both agree
  with brute force).

All solvers minimize; callers maximizing (relevance x attention) negate
the matrix.  Forbidden edges are ``math.inf``.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import AssignmentError
from .hungarian import AssignmentSolution, solve_assignment, validate_square

Edge = Tuple[int, int]


@dataclass(frozen=True)
class RankedAssignment:
    """One solution in a k-best ranking."""

    rank: int
    assignment: Tuple[int, ...]
    cost: float


# ---------------------------------------------------------------------------
# Constrained solving
# ---------------------------------------------------------------------------


@dataclass
class _ReducedInstance:
    """A subproblem with forced edges removed and forbidden edges inf."""

    matrix: List[List[float]]
    row_map: List[int]  # reduced row index -> original row
    col_map: List[int]  # reduced col index -> original col


def _reduce(
    matrix: Sequence[Sequence[float]],
    forced: FrozenSet[Edge],
    forbidden: FrozenSet[Edge],
) -> _ReducedInstance:
    n = len(matrix)
    forced_rows = {r for r, _ in forced}
    forced_cols = {c for _, c in forced}
    if len(forced_rows) != len(forced) or len(forced_cols) != len(forced):
        raise AssignmentError("forced edges must not share rows or columns")
    row_map = [r for r in range(n) if r not in forced_rows]
    col_map = [c for c in range(n) if c not in forced_cols]
    reduced = [
        [
            math.inf if (r, c) in forbidden else matrix[r][c]
            for c in col_map
        ]
        for r in row_map
    ]
    return _ReducedInstance(matrix=reduced, row_map=row_map, col_map=col_map)


def _expand(
    instance: _ReducedInstance,
    reduced_assignment: Sequence[int],
    forced: FrozenSet[Edge],
    n: int,
) -> Tuple[int, ...]:
    full = [-1] * n
    for r, c in forced:
        full[r] = c
    for reduced_row, reduced_col in enumerate(reduced_assignment):
        full[instance.row_map[reduced_row]] = instance.col_map[reduced_col]
    return tuple(full)


def _solve_constrained(
    matrix: Sequence[Sequence[float]],
    forced: FrozenSet[Edge],
    forbidden: FrozenSet[Edge],
) -> Optional[Tuple[Tuple[int, ...], float, _ReducedInstance, Optional[AssignmentSolution]]]:
    """Best assignment honoring the constraints, or None when infeasible.

    Returns the full assignment, its cost on the *original* matrix, the
    reduced instance and the reduced solution (None when everything is
    forced).
    """
    n = len(matrix)
    for r, c in forced:
        if not math.isfinite(matrix[r][c]):
            return None
    forced_cost = sum(matrix[r][c] for r, c in forced)
    instance = _reduce(matrix, forced, forbidden)
    if not instance.row_map:
        return tuple(c for _, c in sorted(forced)), forced_cost, instance, None
    try:
        solution = solve_assignment(instance.matrix)
    except AssignmentError:
        return None
    full = _expand(instance, solution.assignment, forced, n)
    return full, forced_cost + solution.cost, instance, solution


# ---------------------------------------------------------------------------
# Second-best via minimum alternating cycle
# ---------------------------------------------------------------------------


def _min_alternating_cycle(
    instance: _ReducedInstance,
    solution: AssignmentSolution,
) -> Optional[Tuple[float, List[int]]]:
    """Cheapest alternating cycle in the reduced instance.

    Nodes are reduced rows; arc a -> b costs the reduced cost of row
    ``a`` taking row ``b``'s assigned column.  Any alternating cycle's
    extra cost over the optimum equals the sum of its arc weights (the
    dual terms telescope and assigned edges have zero reduced cost), so
    the cheapest directed cycle yields the second-best matching.

    Returns ``(extra_cost, cycle_rows)`` or ``None`` when no finite
    cycle exists (the subspace contains a single solution).
    """
    m = len(instance.row_map)
    if m < 2:
        return None
    assign = solution.assignment
    arc = [[math.inf] * m for _ in range(m)]
    for a in range(m):
        for b in range(m):
            if a == b:
                continue
            cost = instance.matrix[a][assign[b]]
            if math.isfinite(cost):
                reduced = cost - solution.row_potentials[a] - solution.col_potentials[assign[b]]
                # Guard tiny negative values from float round-off.
                arc[a][b] = max(reduced, 0.0)
    dist = [row[:] for row in arc]
    via: List[List[int]] = [[-1] * m for _ in range(m)]
    for mid in range(m):
        for a in range(m):
            if not math.isfinite(dist[a][mid]):
                continue
            through = dist[a][mid]
            row_mid = dist[mid]
            row_a = dist[a]
            via_a = via[a]
            for b in range(m):
                candidate = through + row_mid[b]
                if candidate < row_a[b]:
                    row_a[b] = candidate
                    via_a[b] = mid
    best_value = math.inf
    best_pair: Optional[Tuple[int, int]] = None
    for a in range(m):
        for b in range(m):
            if a == b:
                continue
            if not (math.isfinite(dist[a][b]) and math.isfinite(arc[b][a])):
                continue
            value = dist[a][b] + arc[b][a]
            if value < best_value:
                best_value = value
                best_pair = (a, b)
    if best_pair is None:
        return None
    path = _reconstruct_path(via, best_pair[0], best_pair[1])
    return best_value, path


def _reconstruct_path(via: List[List[int]], a: int, b: int) -> List[int]:
    """Expand the Floyd–Warshall `via` table into the node list a..b."""
    mid = via[a][b]
    if mid == -1:
        return [a, b]
    left = _reconstruct_path(via, a, mid)
    right = _reconstruct_path(via, mid, b)
    return left[:-1] + right


def _apply_cycle(
    instance: _ReducedInstance,
    solution: AssignmentSolution,
    cycle_rows: List[int],
) -> List[int]:
    """Rotate assignments along the cycle (row x takes successor's column)."""
    new_assignment = list(solution.assignment)
    ring = cycle_rows + [cycle_rows[0]]
    for a, b in zip(ring, ring[1:]):
        new_assignment[a] = solution.assignment[b]
    return new_assignment


def _second_from_solved(
    matrix: Sequence[Sequence[float]],
    forced: FrozenSet[Edge],
    instance: _ReducedInstance,
    reduced_solution: Optional[AssignmentSolution],
) -> Optional[Tuple[Tuple[int, ...], float]]:
    """Second-best solution given an already-solved subspace optimum."""
    if reduced_solution is None:
        return None
    cycle = _min_alternating_cycle(instance, reduced_solution)
    if cycle is None:
        return None
    extra, cycle_rows = cycle
    if not math.isfinite(extra):
        return None
    new_reduced = _apply_cycle(instance, reduced_solution, cycle_rows)
    full = _expand(instance, new_reduced, forced, len(matrix))
    cost = sum(matrix[r][c] for r, c in enumerate(full))
    return full, cost


def second_best_assignment(
    matrix: Sequence[Sequence[float]],
    forced: FrozenSet[Edge] = frozenset(),
    forbidden: FrozenSet[Edge] = frozenset(),
) -> Optional[Tuple[Tuple[int, ...], float]]:
    """Second-cheapest assignment within a constrained subspace.

    Returns ``(assignment, cost)`` or ``None`` when the subspace holds
    fewer than two solutions.
    """
    solved = _solve_constrained(matrix, forced, forbidden)
    if solved is None:
        return None
    _, _, instance, reduced_solution = solved
    return _second_from_solved(matrix, forced, instance, reduced_solution)


# ---------------------------------------------------------------------------
# Chegireddy–Hamacher k-best
# ---------------------------------------------------------------------------


@dataclass
class _Subspace:
    """An active node in the CH partition tree."""

    forced: FrozenSet[Edge]
    forbidden: FrozenSet[Edge]
    best: Tuple[int, ...]
    best_cost: float
    second: Optional[Tuple[int, ...]]
    second_cost: float


def _make_subspace(
    matrix: Sequence[Sequence[float]],
    forced: FrozenSet[Edge],
    forbidden: FrozenSet[Edge],
    known_best: Optional[Tuple[Tuple[int, ...], float]] = None,
) -> Optional[_Subspace]:
    solved = _solve_constrained(matrix, forced, forbidden)
    if solved is None:
        return None
    fresh_best, fresh_cost, instance, reduced_solution = solved
    if known_best is None:
        best, best_cost = fresh_best, fresh_cost
    else:
        best, best_cost = known_best
        if fresh_best != best:
            # Cost tie: the solver's optimum is a *different* solution of
            # equal cost, which is then exactly the subspace's runner-up
            # relative to the inherited best.
            return _Subspace(forced, forbidden, best, best_cost, fresh_best, fresh_cost)
    second = _second_from_solved(matrix, forced, instance, reduced_solution)
    if second is None:
        return _Subspace(forced, forbidden, best, best_cost, None, math.inf)
    return _Subspace(forced, forbidden, best, best_cost, second[0], second[1])


def kbest_assignments_ch(
    matrix: Sequence[Sequence[float]],
    s: int,
) -> List[RankedAssignment]:
    """The s cheapest assignments via Chegireddy–Hamacher partitioning.

    Each emission costs two constrained second-best computations
    (O(k^3) apiece), for O(s k^3) overall.  Returns fewer than ``s``
    results when the instance has fewer feasible assignments.
    """
    if s <= 0:
        raise AssignmentError(f"s must be positive, got {s}")
    validate_square(matrix)
    root = _make_subspace(matrix, frozenset(), frozenset())
    if root is None:
        raise AssignmentError("no feasible assignment exists")
    results = [RankedAssignment(rank=1, assignment=root.best, cost=root.best_cost)]
    active = [root]
    while len(results) < s:
        candidate_index = min(
            range(len(active)),
            key=lambda i: (active[i].second_cost, active[i].second or ()),
            default=-1,
        )
        if candidate_index < 0 or not math.isfinite(active[candidate_index].second_cost):
            break  # solution space exhausted
        node = active.pop(candidate_index)
        assert node.second is not None
        results.append(
            RankedAssignment(rank=len(results) + 1, assignment=node.second, cost=node.second_cost)
        )
        # Split on an edge of best not in second (exists since they differ).
        split_edge = next(
            (r, c)
            for r, c in enumerate(node.best)
            if node.second[r] != c
        )
        with_edge = _make_subspace(
            matrix,
            node.forced | {split_edge},
            node.forbidden,
            known_best=(node.best, node.best_cost),
        )
        without_edge = _make_subspace(
            matrix,
            node.forced,
            node.forbidden | {split_edge},
            known_best=(node.second, node.second_cost),
        )
        if with_edge is not None:
            active.append(with_edge)
        if without_edge is not None:
            active.append(without_edge)
    return results


# ---------------------------------------------------------------------------
# Murty's algorithm (cross-check implementation)
# ---------------------------------------------------------------------------


def kbest_assignments_murty(
    matrix: Sequence[Sequence[float]],
    s: int,
) -> List[RankedAssignment]:
    """The s cheapest assignments via Murty's partitioning.

    Independent of the CH implementation (priority queue of subproblems,
    one Hungarian solve per child); used to cross-validate results.
    """
    if s <= 0:
        raise AssignmentError(f"s must be positive, got {s}")
    n = validate_square(matrix)
    solved = _solve_constrained(matrix, frozenset(), frozenset())
    if solved is None:
        raise AssignmentError("no feasible assignment exists")
    best, best_cost = solved[0], solved[1]
    counter = itertools.count()
    heap: List[Tuple[float, int, Tuple[int, ...], FrozenSet[Edge], FrozenSet[Edge]]] = [
        (best_cost, next(counter), best, frozenset(), frozenset())
    ]
    results: List[RankedAssignment] = []
    emitted: set = set()
    while heap and len(results) < s:
        cost, _, assignment, forced, forbidden = heapq.heappop(heap)
        if assignment in emitted:
            continue
        emitted.add(assignment)
        results.append(RankedAssignment(rank=len(results) + 1, assignment=assignment, cost=cost))
        forced_rows = {r for r, _ in forced}
        accumulated: Dict[int, int] = {}
        for row in range(n):
            if row in forced_rows:
                continue
            child_forced = forced | {(r, c) for r, c in accumulated.items()}
            child_forbidden = forbidden | {(row, assignment[row])}
            child = _solve_constrained(matrix, frozenset(child_forced), frozenset(child_forbidden))
            if child is not None:
                child_assignment, child_cost = child[0], child[1]
                heapq.heappush(
                    heap,
                    (child_cost, next(counter), child_assignment, frozenset(child_forced), frozenset(child_forbidden)),
                )
            accumulated[row] = assignment[row]
    return results


def brute_force_kbest(matrix: Sequence[Sequence[float]], s: int) -> List[RankedAssignment]:
    """All assignments sorted by cost, truncated to s (tests only)."""
    from .hungarian import brute_force_assignments

    solutions = brute_force_assignments(matrix, limit=s)
    return [
        RankedAssignment(rank=i + 1, assignment=sol.assignment, cost=sol.cost)
        for i, sol in enumerate(solutions)
    ]
