"""Lazy enumeration of permutations in decreasing Kendall-tau order.

The paper's permutation counterfactual search "generates all length-k
permutations ... then computes Kendall's Tau ... sorted and evaluated in
decreasing order of similarity".  Materializing k! permutations caps the
method at small k.  This module removes the cap: permutations are
generated *directly* in order of increasing inversion count (which is
exactly decreasing tau), so a budgeted search only ever constructs the
orders it evaluates.

The construction uses inversion vectors (Lehmer-style): a permutation of
k items corresponds uniquely to a vector ``(c_1, ..., c_{k-1})`` with
``0 <= c_i <= i``, where ``c_i`` counts how many earlier (larger-index)
placements item ``i`` jumps over; the total inversion count is
``sum(c_i)``.  Enumerating vectors by total sum enumerates permutations
by inversion count; within one count, vectors are generated in
lexicographic order, giving a deterministic tie-break.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple, TypeVar

from ..errors import ConfigError
from .kendall import kendall_tau_from_inversions

T = TypeVar("T")


def max_inversions(k: int) -> int:
    """The inversion count of the full reversal: k(k-1)/2."""
    return k * (k - 1) // 2


def _inversion_vectors(k: int, total: int) -> Iterator[Tuple[int, ...]]:
    """All vectors (c_1..c_{k-1}), 0 <= c_i <= i, summing to ``total``,
    in lexicographic order."""
    bounds = list(range(1, k))  # c_i <= i for i = 1..k-1
    if total > sum(bounds):
        return
    vector: List[int] = [0] * len(bounds)

    def fill(index: int, remaining: int) -> Iterator[Tuple[int, ...]]:
        if index == len(bounds):
            if remaining == 0:
                yield tuple(vector)
            return
        # remaining must be coverable by the suffix bounds
        suffix_capacity = sum(bounds[index:])
        if remaining > suffix_capacity:
            return
        for value in range(0, min(bounds[index], remaining) + 1):
            vector[index] = value
            yield from fill(index + 1, remaining - value)
        vector[index] = 0

    yield from fill(0, total)


def _permutation_from_vector(k: int, vector: Sequence[int]) -> List[int]:
    """Build the permutation whose inversion vector is ``vector``.

    ``vector[i-1] = c_i`` means element ``i`` (0-based identity index)
    is inserted ``c_i`` positions from its sorted place toward the
    front, jumping over exactly ``c_i`` smaller-indexed elements —
    producing exactly ``sum(vector)`` inversions.
    """
    result: List[int] = [0]
    for i in range(1, k):
        c = vector[i - 1]
        result.insert(len(result) - c, i)
    return result


def permutations_by_inversions(items: Sequence[T]) -> Iterator[Tuple[Tuple[T, ...], int]]:
    """Yield ``(permutation, inversion_count)`` in increasing inversion
    order — i.e. decreasing Kendall tau to the original order.

    The identity (0 inversions) comes first; the full reversal comes
    last.  Within one inversion count the order is deterministic
    (lexicographic inversion vectors).  Generation is lazy: consuming
    the first n permutations costs O(n * k), independent of k!.
    """
    k = len(items)
    if k == 0:
        yield (), 0
        return
    if len(set(map(id, items))) != k and len(set(items)) != k:
        raise ConfigError("items must be unique to define permutations")
    for total in range(0, max_inversions(k) + 1):
        for vector in _inversion_vectors(k, total):
            order = _permutation_from_vector(k, vector)
            yield tuple(items[index] for index in order), total


def permutations_by_tau(
    items: Sequence[T],
    include_identity: bool = False,
) -> Iterator[Tuple[Tuple[T, ...], float]]:
    """Yield ``(permutation, tau)`` in decreasing-tau order, lazily."""
    k = len(items)
    for order, inversions in permutations_by_inversions(items):
        if not include_identity and inversions == 0:
            continue
        yield order, kendall_tau_from_inversions(inversions, k)
