"""Kendall's tau rank correlation for permutations.

The permutation counterfactual search evaluates candidate orders "in
decreasing order of similarity, based on decreasing Kendall's Tau" with
respect to the original retrieval order ``Dq``.  Permutations carry no
ties, so tau-a applies:

    tau = 1 - 4 * inversions / (k * (k - 1))

Inversions are counted with a merge-sort pass, O(k log k).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, TypeVar

from ..errors import ConfigError

T = TypeVar("T")


def count_inversions(values: Sequence[int]) -> int:
    """Number of pairs (i < j) with values[i] > values[j]."""
    work = list(values)
    buffer = [0] * len(work)
    return _merge_count(work, buffer, 0, len(work))


def _merge_count(work: List[int], buffer: List[int], lo: int, hi: int) -> int:
    if hi - lo <= 1:
        return 0
    mid = (lo + hi) // 2
    inversions = _merge_count(work, buffer, lo, mid) + _merge_count(work, buffer, mid, hi)
    left, right, out = lo, mid, lo
    while left < mid and right < hi:
        if work[left] <= work[right]:
            buffer[out] = work[left]
            left += 1
        else:
            buffer[out] = work[right]
            inversions += mid - left
            right += 1
        out += 1
    while left < mid:
        buffer[out] = work[left]
        left += 1
        out += 1
    while right < hi:
        buffer[out] = work[right]
        right += 1
        out += 1
    work[lo:hi] = buffer[lo:hi]
    return inversions


def kendall_tau_from_inversions(inversions: int, k: int) -> float:
    """tau-a from an inversion count over k items."""
    if k < 2:
        return 1.0
    pairs = k * (k - 1) // 2
    return 1.0 - 2.0 * inversions / pairs


def rank_map(reference: Sequence[T]) -> Dict[T, int]:
    """Item -> position map for a reference ordering (items unique)."""
    ranks: Dict[T, int] = {}
    for position, item in enumerate(reference):
        if item in ranks:
            raise ConfigError(f"duplicate item {item!r} in reference ordering")
        ranks[item] = position
    return ranks


def kendall_tau(reference: Sequence[T], candidate: Sequence[T]) -> float:
    """tau-a between a candidate ordering and the reference ordering.

    Both sequences must contain exactly the same unique items.  Returns
    1.0 for identical orderings, -1.0 for the exact reversal.
    """
    if len(reference) != len(candidate):
        raise ConfigError("orderings must have equal length")
    ranks = rank_map(reference)
    if set(ranks) != set(candidate) or len(set(candidate)) != len(candidate):
        raise ConfigError("orderings must contain the same unique items")
    projected = [ranks[item] for item in candidate]
    inversions = count_inversions(projected)
    return kendall_tau_from_inversions(inversions, len(reference))


def kendall_distance(reference: Sequence[T], candidate: Sequence[T]) -> int:
    """Raw inversion (bubble-sort) distance between the two orderings."""
    ranks = rank_map(reference)
    projected = [ranks[item] for item in candidate]
    return count_inversions(projected)
