"""Hungarian algorithm (Jonker–Volgenant shortest-augmenting-path form).

Solves the linear assignment problem min sum c[i][sigma(i)] over
permutations sigma in O(n^3).  Besides the optimal assignment it returns
the dual potentials (u, v), which the k-best machinery in
:mod:`repro.combinatorics.kbest` uses: reduced costs
``c[i][j] - u[i] - v[j]`` are non-negative everywhere and zero on
assigned edges, which makes second-best search a non-negative
minimum-cycle problem.

Infeasible (forbidden) edges are encoded as ``math.inf``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..errors import AssignmentError

#: Sentinel cost for forbidden edges.
FORBIDDEN = math.inf


@dataclass(frozen=True)
class AssignmentSolution:
    """Optimal assignment plus duals.

    Attributes
    ----------
    assignment:
        ``assignment[row] = column`` for every row.
    cost:
        Total cost of the assignment.
    row_potentials, col_potentials:
        Dual values (u, v) with ``u[i] + v[j] <= c[i][j]`` for all
        feasible edges and equality on assigned edges.
    """

    assignment: tuple
    cost: float
    row_potentials: tuple
    col_potentials: tuple

    def reduced_cost(self, matrix: Sequence[Sequence[float]], row: int, col: int) -> float:
        """Non-negative reduced cost of edge (row, col) under the duals."""
        return matrix[row][col] - self.row_potentials[row] - self.col_potentials[col]


def validate_square(matrix: Sequence[Sequence[float]]) -> int:
    """Return n for an n x n matrix, raising on malformed input."""
    n = len(matrix)
    if n == 0:
        raise AssignmentError("cost matrix must be non-empty")
    for row in matrix:
        if len(row) != n:
            raise AssignmentError("cost matrix must be square")
    return n


def solve_assignment(matrix: Sequence[Sequence[float]]) -> AssignmentSolution:
    """Minimum-cost perfect assignment via shortest augmenting paths.

    Raises
    ------
    AssignmentError
        When no perfect assignment of finite cost exists.
    """
    n = validate_square(matrix)
    # 1-indexed internal arrays, following the classic JV formulation.
    u = [0.0] * (n + 1)
    v = [0.0] * (n + 1)
    match_of_col = [0] * (n + 1)  # row currently assigned to each column

    for row in range(1, n + 1):
        # Dijkstra-like search for the shortest augmenting path from `row`.
        match_of_col[0] = row
        min_col = 0
        dist = [math.inf] * (n + 1)
        visited = [False] * (n + 1)
        origin = [0] * (n + 1)
        while True:
            visited[min_col] = True
            current_row = match_of_col[min_col]
            delta = math.inf
            next_col = 0
            for col in range(1, n + 1):
                if visited[col]:
                    continue
                reduced = matrix[current_row - 1][col - 1] - u[current_row] - v[col]
                if reduced < dist[col]:
                    dist[col] = reduced
                    origin[col] = min_col
                if dist[col] < delta:
                    delta = dist[col]
                    next_col = col
            if not math.isfinite(delta):
                raise AssignmentError("no feasible perfect assignment exists")
            for col in range(n + 1):
                if visited[col]:
                    u[match_of_col[col]] += delta
                    v[col] -= delta
                else:
                    dist[col] -= delta
            min_col = next_col
            if match_of_col[min_col] == 0:
                break
        # Augment along the found path.
        while min_col != 0:
            previous = origin[min_col]
            match_of_col[min_col] = match_of_col[previous]
            min_col = previous

    assignment = [0] * n
    for col in range(1, n + 1):
        if match_of_col[col] == 0:
            raise AssignmentError("no feasible perfect assignment exists")
        assignment[match_of_col[col] - 1] = col - 1
    total = 0.0
    for row, col in enumerate(assignment):
        cost = matrix[row][col]
        if not math.isfinite(cost):
            raise AssignmentError("optimal assignment uses a forbidden edge")
        total += cost
    return AssignmentSolution(
        assignment=tuple(assignment),
        cost=total,
        row_potentials=tuple(u[1:]),
        col_potentials=tuple(v[1:]),
    )


def assignment_cost(matrix: Sequence[Sequence[float]], assignment: Sequence[int]) -> float:
    """Total cost of an explicit assignment (inf if it uses a forbidden edge)."""
    return sum(matrix[row][col] for row, col in enumerate(assignment))


def brute_force_assignments(
    matrix: Sequence[Sequence[float]],
    limit: int | None = None,
) -> List[AssignmentSolution]:
    """Enumerate all n! assignments sorted by cost (tests/benchmarks only).

    Returns at most ``limit`` solutions.  Duals are zeroed — brute-force
    results are used for value and assignment comparison only.
    """
    import itertools

    n = validate_square(matrix)
    scored = []
    for perm in itertools.permutations(range(n)):
        cost = assignment_cost(matrix, perm)
        if math.isfinite(cost):
            scored.append((cost, perm))
    scored.sort(key=lambda item: (item[0], item[1]))
    if limit is not None:
        scored = scored[:limit]
    zeros = tuple([0.0] * n)
    return [
        AssignmentSolution(assignment=perm, cost=cost, row_potentials=zeros, col_potentials=zeros)
        for cost, perm in scored
    ]
