"""Combinatorial substrate: combinations, permutations, Kendall's tau,
Hungarian algorithm, and k-best assignments (Chegireddy–Hamacher, Murty).
"""

from .combinations import (
    all_combinations,
    combination_mask,
    combinations_of_size,
    complement,
    count_combinations,
    mask_combination,
    ordered_combinations,
    sample_combinations,
)
from .hungarian import (
    FORBIDDEN,
    AssignmentSolution,
    assignment_cost,
    brute_force_assignments,
    solve_assignment,
    validate_square,
)
from .kbest import (
    RankedAssignment,
    brute_force_kbest,
    kbest_assignments_ch,
    kbest_assignments_murty,
    second_best_assignment,
)
from .inversions import (
    max_inversions,
    permutations_by_inversions,
    permutations_by_tau,
)
from .kendall import (
    count_inversions,
    kendall_distance,
    kendall_tau,
    kendall_tau_from_inversions,
    rank_map,
)
from .permutations import (
    all_permutations,
    apply_permutation,
    fisher_yates_shuffle,
    inversion_vector,
    naive_sample_permutations,
    permutation_count,
    sample_permutations,
)

__all__ = [
    "all_combinations",
    "combination_mask",
    "combinations_of_size",
    "complement",
    "count_combinations",
    "mask_combination",
    "ordered_combinations",
    "sample_combinations",
    "FORBIDDEN",
    "AssignmentSolution",
    "assignment_cost",
    "brute_force_assignments",
    "solve_assignment",
    "validate_square",
    "RankedAssignment",
    "brute_force_kbest",
    "kbest_assignments_ch",
    "kbest_assignments_murty",
    "second_best_assignment",
    "max_inversions",
    "permutations_by_inversions",
    "permutations_by_tau",
    "count_inversions",
    "kendall_distance",
    "kendall_tau",
    "kendall_tau_from_inversions",
    "rank_map",
    "all_permutations",
    "apply_permutation",
    "fisher_yates_shuffle",
    "inversion_vector",
    "naive_sample_permutations",
    "permutation_count",
    "sample_permutations",
]
