"""Answer normalization, exactly as specified in the RAGE paper.

    "Before comparing against the original answer, we convert answers to
    lowercase, remove punctuation, and trim whitespace."

All answer comparisons in the counterfactual searches and insight
analyses go through :func:`normalize_answer` so two surface forms of the
same answer ("Roger Federer." vs "roger federer") are treated as equal.
"""

from __future__ import annotations

import re
import unicodedata

_PUNCTUATION_RE = re.compile(r"[^\w\s]", re.UNICODE)
_WHITESPACE_RE = re.compile(r"\s+")


def strip_accents(text: str) -> str:
    """Return ``text`` with combining accents removed (NFKD fold)."""
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def normalize_answer(answer: str) -> str:
    """Canonicalize an LLM answer for equality comparison.

    Lowercases, strips accents, removes punctuation, and collapses runs
    of whitespace to single spaces with no leading/trailing space.
    The function is idempotent: ``normalize_answer(normalize_answer(x))``
    equals ``normalize_answer(x)``.
    """
    text = strip_accents(answer).lower()
    text = _PUNCTUATION_RE.sub(" ", text)
    text = _WHITESPACE_RE.sub(" ", text)
    return text.strip()


def answers_equal(left: str, right: str) -> bool:
    """Return True when the two answers are equal after normalization."""
    return normalize_answer(left) == normalize_answer(right)


def normalize_entity(name: str) -> str:
    """Canonical key for an entity mention (same folding as answers)."""
    return normalize_answer(name)
