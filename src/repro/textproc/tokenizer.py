"""Tokenization for the retrieval and LLM substrates.

Two tokenizers live here:

* :class:`Tokenizer` — an analysis-chain tokenizer (lowercase, split on
  non-alphanumerics, optional stopword removal, optional Porter
  stemming).  It is what the inverted index and BM25 use, mirroring the
  Lucene ``StandardAnalyzer`` that Pyserini configures.
* :func:`word_spans` — offset-preserving tokenization used by the claim
  extractor and the synthetic attention model, which need to know where
  in the raw source text each token sits.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..errors import ValidationError
from .normalize import strip_accents
from .stemmer import PorterStemmer
from .stopwords import STOPWORDS

_TOKEN_RE = re.compile(r"[A-Za-z0-9']+")
_APOSTROPHE_RE = re.compile(r"'+")


@dataclass(frozen=True)
class Span:
    """A token with its character offsets into the source string."""

    text: str
    start: int
    end: int

    def __len__(self) -> int:
        return self.end - self.start


def word_spans(text: str) -> List[Span]:
    """Split ``text`` into word spans, preserving character offsets.

    Tokens are maximal runs of letters, digits and apostrophes; the
    apostrophes are kept in the span but trimmed from ``Span.text`` so
    possessives ("Djokovic's") match the bare entity.
    """
    spans = []
    for match in _TOKEN_RE.finditer(text):
        raw = _APOSTROPHE_RE.sub("", match.group(0))
        if raw:
            spans.append(Span(text=raw, start=match.start(), end=match.end()))
    return spans


class Tokenizer:
    """Configurable analysis chain producing index/query terms.

    Parameters
    ----------
    lowercase:
        Fold case before further processing (default True).
    remove_stopwords:
        Drop terms in :data:`repro.textproc.stopwords.STOPWORDS`.
    stem:
        Apply the Porter stemmer to each surviving term.
    fold_accents:
        Strip combining accents ("Świątek" -> "swiatek") so names typed
        without diacritics still match.
    """

    def __init__(
        self,
        lowercase: bool = True,
        remove_stopwords: bool = True,
        stem: bool = True,
        fold_accents: bool = True,
    ) -> None:
        self.lowercase = lowercase
        self.remove_stopwords = remove_stopwords
        self.stem = stem
        self.fold_accents = fold_accents
        self._stemmer = PorterStemmer()

    def tokenize(self, text: str) -> List[str]:
        """Return the list of analyzed terms for ``text`` (order kept)."""
        if self.fold_accents:
            text = strip_accents(text)
        if self.lowercase:
            text = text.lower()
        terms: List[str] = []
        for span in word_spans(text):
            term = span.text
            if self.remove_stopwords and term in STOPWORDS:
                continue
            if self.stem:
                term = self._stemmer(term)
            terms.append(term)
        return terms

    def tokenize_unique(self, text: str) -> set:
        """Return the set of distinct analyzed terms for ``text``."""
        return set(self.tokenize(text))

    def __call__(self, text: str) -> List[str]:
        return self.tokenize(text)


def ngrams(terms: Sequence[str], n: int) -> Iterable[tuple]:
    """Yield successive n-grams (tuples) over an analyzed term sequence."""
    if n <= 0:
        raise ValidationError("n must be positive")
    for i in range(len(terms) - n + 1):
        yield tuple(terms[i : i + n])


#: A shared default tokenizer instance (the common configuration).
DEFAULT_TOKENIZER = Tokenizer()
