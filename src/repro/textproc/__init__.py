"""Text processing substrate: tokenization, stemming, normalization.

These utilities back both the retrieval index (term analysis) and the
simulated LLM (answer normalization, offset-preserving token spans).
"""

from .normalize import (
    answers_equal,
    normalize_answer,
    normalize_entity,
    strip_accents,
)
from .stemmer import PorterStemmer, stem
from .stopwords import STOPWORDS, is_stopword
from .tokenizer import DEFAULT_TOKENIZER, Span, Tokenizer, ngrams, word_spans

__all__ = [
    "answers_equal",
    "normalize_answer",
    "normalize_entity",
    "strip_accents",
    "PorterStemmer",
    "stem",
    "STOPWORDS",
    "is_stopword",
    "DEFAULT_TOKENIZER",
    "Span",
    "Tokenizer",
    "ngrams",
    "word_spans",
]
