"""English stopword list used by the retrieval and LLM substrates.

The list is a compact, dependency-free subset of the classic SMART/Lucene
stopword lists: determiners, pronouns, auxiliaries, conjunctions, and
high-frequency prepositions.  It intentionally excludes comparative and
superlative adjectives (``best``, ``most``, ``latest`` ...) because the
question-intent parser in :mod:`repro.llm.intents` relies on them.
"""

from __future__ import annotations

from typing import FrozenSet

#: Words removed during indexing and query analysis.
STOPWORDS: FrozenSet[str] = frozenset(
    {
        "a", "an", "the", "this", "that", "these", "those",
        "i", "me", "my", "we", "our", "ours", "you", "your", "yours",
        "he", "him", "his", "she", "her", "hers", "it", "its",
        "they", "them", "their", "theirs",
        "am", "is", "are", "was", "were", "be", "been", "being",
        "do", "does", "did", "doing", "have", "has", "had", "having",
        "will", "would", "shall", "should", "can", "could", "may",
        "might", "must",
        "and", "or", "but", "nor", "so", "yet", "if", "then", "else",
        "because", "while", "although", "though",
        "of", "at", "by", "for", "with", "about", "against", "between",
        "into", "through", "during", "before", "after", "above", "below",
        "to", "from", "up", "down", "in", "out", "on", "off", "over",
        "under", "again", "further", "once", "here", "there", "when",
        "where", "why", "how", "all", "any", "both", "each", "few",
        "other", "some", "such", "no", "not", "only", "own", "same",
        "than", "too", "very", "just", "also", "as", "per", "via",
        "who", "whom", "whose", "which", "what",
    }
)


def is_stopword(term: str) -> bool:
    """Return ``True`` when ``term`` (already lowercased) is a stopword."""
    return term in STOPWORDS
