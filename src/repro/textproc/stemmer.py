"""A self-contained implementation of the Porter stemming algorithm.

Porter, M.F., "An algorithm for suffix stripping", Program 14(3), 1980.
The retrieval substrate stems both indexed terms and query terms so that
morphological variants ("winning", "wins", "winner") match.

The implementation follows the original five-step description.  It is
deliberately written as small pure functions over a measure/condition
helper class so each rule is independently testable.
"""

from __future__ import annotations

_VOWELS = "aeiou"


class _Word:
    """Mutable view over a word with the Porter condition helpers."""

    def __init__(self, word: str) -> None:
        self.b = word

    # -- character classes -------------------------------------------------

    def _is_consonant(self, i: int) -> bool:
        ch = self.b[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            return i == 0 or not self._is_consonant(i - 1)
        return True

    # -- Porter conditions -------------------------------------------------

    def measure(self, stem_len: int | None = None) -> int:
        """Return m, the number of VC sequences in the (sub-)stem."""
        end = len(self.b) if stem_len is None else stem_len
        m = 0
        i = 0
        # Skip initial consonants.
        while i < end and self._is_consonant(i):
            i += 1
        while True:
            while i < end and not self._is_consonant(i):
                i += 1
            if i >= end:
                return m
            m += 1
            while i < end and self._is_consonant(i):
                i += 1
            if i >= end:
                return m

    def has_vowel(self, stem_len: int) -> bool:
        return any(not self._is_consonant(i) for i in range(stem_len))

    def ends_double_consonant(self) -> bool:
        if len(self.b) < 2:
            return False
        return self.b[-1] == self.b[-2] and self._is_consonant(len(self.b) - 1)

    def ends_cvc(self, stem_len: int | None = None) -> bool:
        """True when the stem ends consonant-vowel-consonant, and the final
        consonant is not w, x or y."""
        end = len(self.b) if stem_len is None else stem_len
        if end < 3:
            return False
        if (
            self._is_consonant(end - 1)
            and not self._is_consonant(end - 2)
            and self._is_consonant(end - 3)
        ):
            return self.b[end - 1] not in "wxy"
        return False


def _replace_suffix(word: str, suffix: str, replacement: str) -> str:
    return word[: len(word) - len(suffix)] + replacement


def _step1a(word: str) -> str:
    if word.endswith("sses"):
        return _replace_suffix(word, "sses", "ss")
    if word.endswith("ies"):
        return _replace_suffix(word, "ies", "i")
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _Word(word).measure(len(stem)) > 0:
            return word[:-1]
        return word
    flagged = None
    if word.endswith("ed"):
        stem = word[:-2]
        if _Word(word).has_vowel(len(stem)):
            flagged = stem
    elif word.endswith("ing"):
        stem = word[:-3]
        if _Word(word).has_vowel(len(stem)):
            flagged = stem
    if flagged is None:
        return word
    word = flagged
    if word.endswith(("at", "bl", "iz")):
        return word + "e"
    w = _Word(word)
    if w.ends_double_consonant() and not word.endswith(("l", "s", "z")):
        return word[:-1]
    if w.measure() == 1 and w.ends_cvc():
        return word + "e"
    return word


def _step1c(word: str) -> str:
    if word.endswith("y") and _Word(word).has_vowel(len(word) - 1):
        return word[:-1] + "i"
    return word


_STEP2_RULES = (
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
    ("anci", "ance"), ("izer", "ize"), ("abli", "able"), ("alli", "al"),
    ("entli", "ent"), ("eli", "e"), ("ousli", "ous"), ("ization", "ize"),
    ("ation", "ate"), ("ator", "ate"), ("alism", "al"), ("iveness", "ive"),
    ("fulness", "ful"), ("ousness", "ous"), ("aliti", "al"),
    ("iviti", "ive"), ("biliti", "ble"),
)

_STEP3_RULES = (
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
)

_STEP4_SUFFIXES = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
)


def _apply_rule_list(word: str, rules: tuple[tuple[str, str], ...]) -> str:
    for suffix, replacement in rules:
        if word.endswith(suffix):
            stem_len = len(word) - len(suffix)
            if _Word(word).measure(stem_len) > 0:
                return _replace_suffix(word, suffix, replacement)
            return word
    return word


def _step4(word: str) -> str:
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem_len = len(word) - len(suffix)
            if suffix == "ion" and stem_len > 0 and word[stem_len - 1] not in "st":
                return word
            if _Word(word).measure(stem_len) > 1:
                return word[:stem_len]
            return word
    return word


def _step5a(word: str) -> str:
    if word.endswith("e"):
        stem_len = len(word) - 1
        w = _Word(word)
        m = w.measure(stem_len)
        if m > 1 or (m == 1 and not w.ends_cvc(stem_len)):
            return word[:-1]
    return word


def _step5b(word: str) -> str:
    w = _Word(word)
    if w.measure() > 1 and w.ends_double_consonant() and word.endswith("l"):
        return word[:-1]
    return word


def stem(word: str) -> str:
    """Return the Porter stem of ``word``.

    The input is expected to be a lowercase alphabetic token; words of
    length <= 2 are returned unchanged (per Porter's original note).
    """
    if len(word) <= 2:
        return word
    word = _step1a(word)
    word = _step1b(word)
    word = _step1c(word)
    word = _apply_rule_list(word, _STEP2_RULES)
    word = _apply_rule_list(word, _STEP3_RULES)
    word = _step4(word)
    word = _step5a(word)
    word = _step5b(word)
    return word


class PorterStemmer:
    """Object wrapper with a small memo cache around :func:`stem`."""

    def __init__(self) -> None:
        self._cache: dict[str, str] = {}

    def __call__(self, word: str) -> str:
        cached = self._cache.get(word)
        if cached is None:
            cached = stem(word)
            self._cache[word] = cached
        return cached

    def cache_size(self) -> int:
        """Number of distinct words stemmed so far (for diagnostics)."""
        return len(self._cache)
