"""Retrieval substrate: documents, inverted index, BM25, top-k search.

This package stands in for the paper's Pyserini BM25 + Lucene index.
"""

from .bm25 import BM25Scorer, Scorer, TfIdfScorer, top_k
from .dense import (
    DenseIndex,
    DenseScorer,
    HashedEmbedder,
    HybridScorer,
    ReciprocalRankFusionScorer,
)
from .document import Corpus, Document
from .index import IndexStats, InvertedIndex, Posting
from .metrics import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from .persistence import load_index, save_index
from .searcher import RetrievalResult, RetrievedSource, Searcher
from .sqlindex import (
    DB_NAME,
    FUSION_STRATEGIES,
    RETRIEVAL_MODES,
    SqliteIndex,
    SqliteSearcher,
    make_retrieval_scorer,
    open_index,
)

__all__ = [
    "BM25Scorer",
    "Scorer",
    "TfIdfScorer",
    "top_k",
    "Corpus",
    "Document",
    "IndexStats",
    "InvertedIndex",
    "Posting",
    "RetrievalResult",
    "RetrievedSource",
    "Searcher",
    "load_index",
    "save_index",
    "DenseIndex",
    "DenseScorer",
    "HashedEmbedder",
    "HybridScorer",
    "ReciprocalRankFusionScorer",
    "DB_NAME",
    "FUSION_STRATEGIES",
    "RETRIEVAL_MODES",
    "SqliteIndex",
    "SqliteSearcher",
    "make_retrieval_scorer",
    "open_index",
    "average_precision",
    "ndcg_at_k",
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
]
