"""Top-k retrieval: queries in, ranked contexts (``Dq``) out.

:class:`Searcher` corresponds to the paper's retrieval model ``M``: given
a query ``q`` and relevance threshold ``k`` it scores and ranks the ``k``
most relevant sources from the index.  The resulting ordered list of
:class:`RetrievedSource` — the paper's ``Dq`` — carries the retrieval
scores that serve as one of the two relevance methods ``S``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import EmptyIndexError
from .bm25 import BM25Scorer, Scorer, top_k
from .document import Document
from .index import InvertedIndex


@dataclass(frozen=True)
class RetrievedSource:
    """One ranked context source: the document, its rank and its score."""

    document: Document
    rank: int
    score: float

    @property
    def doc_id(self) -> str:
        """Shortcut to the underlying document id."""
        return self.document.doc_id


@dataclass(frozen=True)
class RetrievalResult:
    """The full answer to one retrieval request (the context ``Dq``)."""

    query: str
    sources: Sequence[RetrievedSource]

    def documents(self) -> List[Document]:
        """The ranked documents only."""
        return [source.document for source in self.sources]

    def doc_ids(self) -> List[str]:
        """The ranked document ids only."""
        return [source.doc_id for source in self.sources]

    def scores(self) -> List[float]:
        """The retrieval scores, aligned with :meth:`documents`."""
        return [source.score for source in self.sources]

    def __len__(self) -> int:
        return len(self.sources)


class Searcher:
    """Execute ranked retrieval against an :class:`InvertedIndex`."""

    def __init__(self, index: InvertedIndex, scorer: Optional[Scorer] = None) -> None:
        self.index = index
        self.scorer = scorer or BM25Scorer()

    def search(self, query: str, k: int = 10) -> RetrievalResult:
        """Score and rank the ``k`` most relevant sources for ``query``.

        Raises
        ------
        EmptyIndexError
            When the index holds no documents.
        """
        if len(self.index) == 0:
            raise EmptyIndexError("cannot search an empty index")
        query_terms = self.index.tokenizer.tokenize(query)
        scores = self.scorer.score_query(self.index, query_terms)
        ranked = top_k(scores, k) if scores else []
        sources = [
            RetrievedSource(document=self.index.document(doc_id), rank=rank, score=score)
            for rank, (doc_id, score) in enumerate(ranked, start=1)
        ]
        return RetrievalResult(query=query, sources=sources)

    def search_all(self, query: str) -> RetrievalResult:
        """Rank every matching document (``k`` = corpus size)."""
        return self.search(query, k=max(1, len(self.index)))
