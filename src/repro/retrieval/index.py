"""Positional inverted index — the Lucene-index substitute.

The index stores, per analyzed term, a postings list of
``(doc_id, term_frequency, positions)`` plus per-document lengths and
collection statistics.  This is everything BM25 and TF-IDF need, and the
positions support phrase-level diagnostics in the claim extractor tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import UnknownDocumentError
from ..textproc import Tokenizer
from .document import Corpus, Document


@dataclass(frozen=True)
class Posting:
    """One document entry inside a term's postings list."""

    doc_id: str
    term_frequency: int
    positions: Tuple[int, ...] = ()


@dataclass
class IndexStats:
    """Collection-level statistics used by the ranking functions."""

    num_documents: int = 0
    total_terms: int = 0
    vocabulary_size: int = 0

    @property
    def average_doc_length(self) -> float:
        """Mean analyzed-token count per document (0.0 when empty)."""
        if self.num_documents == 0:
            return 0.0
        return self.total_terms / self.num_documents


class InvertedIndex:
    """Term -> postings map built from a :class:`Corpus`.

    Parameters
    ----------
    tokenizer:
        The analysis chain; defaults to the package-wide configuration
        (lowercase, stopwords removed, Porter-stemmed).
    store_positions:
        Keep within-document token positions in each posting.
    """

    def __init__(
        self,
        tokenizer: Optional[Tokenizer] = None,
        store_positions: bool = True,
    ) -> None:
        self.tokenizer = tokenizer or Tokenizer()
        self.store_positions = store_positions
        self._postings: Dict[str, List[Posting]] = {}
        self._doc_lengths: Dict[str, int] = {}
        self._corpus = Corpus()

    # -- construction --------------------------------------------------

    def add_document(self, doc: Document) -> None:
        """Analyze and index one document."""
        self._corpus.add(doc)
        terms = self.tokenizer.tokenize(doc.text + " " + doc.title)
        self._doc_lengths[doc.doc_id] = len(terms)
        occurrences: Dict[str, List[int]] = {}
        for position, term in enumerate(terms):
            occurrences.setdefault(term, []).append(position)
        for term, positions in occurrences.items():
            posting = Posting(
                doc_id=doc.doc_id,
                term_frequency=len(positions),
                positions=tuple(positions) if self.store_positions else (),
            )
            self._postings.setdefault(term, []).append(posting)

    def remove_document(self, doc_id: str) -> Document:
        """Un-index a document, restoring pre-add statistics exactly.

        Every posting the document contributed is withdrawn (terms whose
        postings list empties disappear from the vocabulary, so
        ``document_frequency`` never double-counts a removed document),
        its length entry is dropped, and the stored document is returned.

        Raises
        ------
        UnknownDocumentError
            When ``doc_id`` was never indexed.
        """
        if doc_id not in self._doc_lengths:
            raise UnknownDocumentError(f"no document with id {doc_id!r}")
        document = self._corpus.get(doc_id)
        self._corpus.remove(doc_id)
        del self._doc_lengths[doc_id]
        emptied: List[str] = []
        for term, postings in self._postings.items():
            kept = [posting for posting in postings if posting.doc_id != doc_id]
            if len(kept) != len(postings):
                if kept:
                    self._postings[term] = kept
                else:
                    emptied.append(term)
        for term in emptied:
            del self._postings[term]
        return document

    def update_document(self, doc: Document) -> None:
        """Replace an indexed document with new content, atomically.

        Equivalent to ``remove_document(doc.doc_id)`` + ``add_document``:
        stale postings never linger, so an updated document is
        indistinguishable from one indexed fresh.
        """
        self.remove_document(doc.doc_id)
        self.add_document(doc)

    @classmethod
    def build(
        cls,
        documents: Iterable[Document],
        tokenizer: Optional[Tokenizer] = None,
        store_positions: bool = True,
    ) -> "InvertedIndex":
        """Index every document in ``documents`` and return the index."""
        index = cls(tokenizer=tokenizer, store_positions=store_positions)
        for doc in documents:
            index.add_document(doc)
        return index

    # -- lookups --------------------------------------------------------

    def postings(self, term: str) -> List[Posting]:
        """Postings list for an *analyzed* term (empty when absent)."""
        return self._postings.get(term, [])

    def document_frequency(self, term: str) -> int:
        """Number of documents containing the analyzed term."""
        return len(self._postings.get(term, ()))

    def doc_length(self, doc_id: str) -> int:
        """Analyzed token count of a document."""
        try:
            return self._doc_lengths[doc_id]
        except KeyError:
            raise UnknownDocumentError(f"no document with id {doc_id!r}") from None

    def document(self, doc_id: str) -> Document:
        """Return the stored document."""
        return self._corpus.get(doc_id)

    def documents(self) -> List[Document]:
        """All indexed documents in insertion order."""
        return list(self._corpus)

    def vocabulary(self) -> List[str]:
        """All analyzed terms, sorted for determinism."""
        return sorted(self._postings)

    @property
    def stats(self) -> IndexStats:
        """Fresh collection statistics snapshot."""
        return IndexStats(
            num_documents=len(self._doc_lengths),
            total_terms=sum(self._doc_lengths.values()),
            vocabulary_size=len(self._postings),
        )

    def __len__(self) -> int:
        return len(self._doc_lengths)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    def term_frequency(self, term: str, doc_id: str) -> int:
        """Frequency of analyzed ``term`` inside ``doc_id`` (0 if absent)."""
        for posting in self._postings.get(term, ()):
            if posting.doc_id == doc_id:
                return posting.term_frequency
        return 0
