"""Index persistence — save/load the inverted index as JSON.

The paper's system keeps "locally-configured document indexes" (Lucene
on disk).  This module gives the from-scratch index the same property:
an index can be built once, serialized, and reopened without re-analysis
— the analyzer configuration travels with the file so a reopened index
tokenizes queries identically.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List

from ..errors import RetrievalError
from ..textproc import Tokenizer
from .document import Document
from .index import InvertedIndex, Posting

#: Format marker written into every index file.
FORMAT_VERSION = 1


def index_to_dict(index: InvertedIndex) -> Dict[str, object]:
    """Serializable representation of a full index."""
    return {
        "format_version": FORMAT_VERSION,
        "tokenizer": {
            "lowercase": index.tokenizer.lowercase,
            "remove_stopwords": index.tokenizer.remove_stopwords,
            "stem": index.tokenizer.stem,
            "fold_accents": index.tokenizer.fold_accents,
        },
        "store_positions": index.store_positions,
        "documents": [doc.to_dict() for doc in index.documents()],
        "postings": {
            term: [
                {
                    "doc_id": posting.doc_id,
                    "tf": posting.term_frequency,
                    "positions": list(posting.positions),
                }
                for posting in index.postings(term)
            ]
            for term in index.vocabulary()
        },
        "doc_lengths": {
            doc.doc_id: index.doc_length(doc.doc_id) for doc in index.documents()
        },
    }


def index_from_dict(payload: Dict[str, object]) -> InvertedIndex:
    """Rebuild an index from :func:`index_to_dict` output.

    The stored postings are restored verbatim (no re-analysis), so a
    reopened index is bit-identical to the saved one.
    """
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise RetrievalError(
            f"unsupported index format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    tok_config = dict(payload["tokenizer"])  # type: ignore[arg-type]
    index = InvertedIndex(
        tokenizer=Tokenizer(**tok_config),
        store_positions=bool(payload["store_positions"]),
    )
    # Restore documents into the corpus without re-analyzing them.
    for doc_payload in payload["documents"]:  # type: ignore[union-attr]
        index._corpus.add(Document.from_dict(doc_payload))
    index._doc_lengths = {
        str(doc_id): int(length)
        for doc_id, length in dict(payload["doc_lengths"]).items()  # type: ignore[arg-type]
    }
    postings: Dict[str, List[Posting]] = {}
    for term, entries in dict(payload["postings"]).items():  # type: ignore[arg-type]
        postings[str(term)] = [
            Posting(
                doc_id=str(entry["doc_id"]),
                term_frequency=int(entry["tf"]),
                positions=tuple(int(p) for p in entry["positions"]),
            )
            for entry in entries
        ]
    index._postings = postings
    return index


def save_index(index: InvertedIndex, path: str | Path) -> None:
    """Write the index to ``path`` as JSON, atomically.

    The payload lands in a temp file in the destination directory and is
    ``os.replace``-d into place, so a crash mid-write can never leave a
    truncated, unloadable index — readers observe either the previous
    complete file or the new one.
    """
    path = Path(path)
    tmp_name: str | None = None
    try:
        descriptor, tmp_name = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=path.parent
        )
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(index_to_dict(index)))
        os.replace(tmp_name, path)
        tmp_name = None
    finally:
        if tmp_name is not None:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass


def load_index(path: str | Path) -> InvertedIndex:
    """Read an index previously written by :func:`save_index`.

    Raises
    ------
    RetrievalError
        When the file is missing, malformed, or a different format
        version.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise RetrievalError(f"no index file at {file_path}")
    try:
        payload = json.loads(file_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise RetrievalError(f"corrupt index file {file_path}: {error}") from error
    if not isinstance(payload, dict):
        raise RetrievalError(f"corrupt index file {file_path}: not an object")
    return index_from_dict(payload)
