"""Persistent incremental hybrid retrieval index, SQLite-backed.

The in-memory :class:`~repro.retrieval.index.InvertedIndex` rebuilds
from raw text on every process start and persists only as one whole-file
JSON blob.  :class:`SqliteIndex` is the production-shaped replacement —
the project's stand-in for a Lucene index directory:

* **One WAL-mode database** holds documents, postings, per-document
  lengths and (optionally) dense embedding vectors, stamped with a
  schema version and the analyzer configuration, so a reopened index
  tokenizes queries identically and never re-analyzes a stored document.
* **Lazy open** — opening is O(1); collection statistics and document
  lengths load on first search, postings stream per query term.  A warm
  restart therefore serves byte-identical results with *zero*
  re-tokenization of unchanged documents (``counters["doc_tokenizations"]``
  proves it).
* **Incremental re-indexing** — :meth:`SqliteIndex.add` hashes document
  content; re-adding an unchanged document is a no-op, a changed one is
  atomically re-indexed (stale postings can never linger), and
  :meth:`remove` withdraws every contribution.  :meth:`sync` folds a
  whole corpus in with per-document change detection.
* **Concurrent readers, single writer** — WAL mode lets any number of
  reader connections (one per thread, or other processes such as a
  second ``rage serve`` worker) query a consistent snapshot while one
  writer commits; :meth:`snapshot` pins one read transaction around a
  whole search so every posting list and document length it touches
  comes from the same database version.
* **Hybrid fusion done right** — :func:`make_retrieval_scorer` combines
  BM25 with dense cosine scores via min-max normalization
  (:class:`~repro.retrieval.dense.HybridScorer`) or reciprocal-rank
  fusion (:class:`~repro.retrieval.dense.ReciprocalRankFusionScorer`),
  never raw addition across incompatible scales; all rankings break
  ties by doc_id.

The class exposes the same read protocol the scorers consume
(``postings`` / ``document_frequency`` / ``doc_length`` / ``stats`` /
``tokenizer``), so :class:`~repro.retrieval.bm25.BM25Scorer` and friends
run against it unchanged; :class:`SqliteSearcher` wraps
:class:`~repro.retrieval.searcher.Searcher` with the snapshot
transaction.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, RetrievalError, UnknownDocumentError
from ..textproc import Tokenizer
from .bm25 import BM25Scorer, Scorer
from .dense import DenseScorer, HashedEmbedder, HybridScorer, ReciprocalRankFusionScorer
from .document import Document
from .index import IndexStats, Posting
from .searcher import RetrievalResult, Searcher

#: Bumped whenever the on-disk layout changes; an index written by a
#: different version refuses to open instead of misreading rows.
SCHEMA_VERSION = 1

#: Database filename inside an index directory.
DB_NAME = "index.db"

#: Retrieval modes a persistent index can serve.
RETRIEVAL_MODES = ("bm25", "dense", "hybrid")

#: Hybrid fusion strategies (both scale-safe; never raw addition).
FUSION_STRATEGIES = ("minmax", "rrf")

_SCHEMA = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE documents (
    doc_id       TEXT PRIMARY KEY,
    title        TEXT NOT NULL,
    text         TEXT NOT NULL,
    metadata     TEXT NOT NULL,
    content_hash TEXT NOT NULL,
    doc_length   INTEGER NOT NULL,
    seq          INTEGER NOT NULL
);
CREATE INDEX documents_by_seq ON documents (seq);
CREATE TABLE postings (
    term      TEXT NOT NULL,
    doc_id    TEXT NOT NULL,
    tf        INTEGER NOT NULL,
    positions TEXT NOT NULL,
    PRIMARY KEY (term, doc_id)
) WITHOUT ROWID;
CREATE INDEX postings_by_doc ON postings (doc_id);
CREATE TABLE vectors (
    doc_id     TEXT PRIMARY KEY,
    dimensions INTEGER NOT NULL,
    vector     BLOB NOT NULL
);
"""


def content_hash(doc: Document) -> str:
    """Stable content digest deciding whether a re-add must re-index."""
    payload = json.dumps(doc.to_dict(), sort_keys=True, ensure_ascii=False)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def open_index(
    index_dir: str | Path,
    tokenizer: Optional[Tokenizer] = None,
    embedder: Optional[HashedEmbedder] = None,
    store_positions: bool = True,
    dense: bool = False,
) -> "SqliteIndex":
    """Open (creating if needed) the persistent index in ``index_dir``.

    The directory is created on demand; the database lives at
    ``index_dir/index.db``.  ``dense=True`` equips a *newly created*
    index with dense vectors using ``embedder`` (default
    :class:`~repro.retrieval.dense.HashedEmbedder`); an existing index
    keeps whatever vector configuration it was built with.
    """
    root = Path(index_dir).expanduser()
    if root.exists() and not root.is_dir():
        raise ConfigError(f"index_dir {root} exists and is not a directory")
    root.mkdir(parents=True, exist_ok=True)
    if dense and embedder is None:
        embedder = HashedEmbedder(tokenizer=tokenizer)
    return SqliteIndex(
        root / DB_NAME,
        tokenizer=tokenizer,
        embedder=embedder,
        store_positions=store_positions,
    )


class SqliteIndex:
    """The SQLite-backed persistent incremental index (module docstring).

    Parameters
    ----------
    path:
        The database file.  A fresh file is initialized with the schema
        and the analyzer configuration; an existing one is validated
        (schema version, analyzer compatibility) and **not** rebuilt.
    tokenizer:
        Analysis chain for new indexes.  Opening an existing index with
        ``None`` adopts the stored configuration; passing a conflicting
        configuration raises — silently mixing analyzers would corrupt
        every ranking.
    embedder:
        Equip a *new* index with dense vectors.  ``None`` on an existing
        dense index reconstructs the embedder from the stored
        dimensions; passing one to a sparse-only index (or with the
        wrong dimensions) raises.
    store_positions:
        Keep within-document token positions (new indexes only).
    """

    def __init__(
        self,
        path: str | Path,
        tokenizer: Optional[Tokenizer] = None,
        embedder: Optional[HashedEmbedder] = None,
        store_positions: bool = True,
    ) -> None:
        self.path = Path(path).expanduser()
        self._lock = threading.RLock()
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        self._closed = False
        # Shared lazy caches; dropped on every write and whenever a
        # reader connection observes another process's commit.
        self._doc_lengths: Optional[Dict[str, int]] = None
        self._dense_ids: Optional[List[str]] = None
        self._dense_matrix: Optional[np.ndarray] = None
        self._stats: Optional[IndexStats] = None
        self.counters: Dict[str, int] = {
            "added": 0,
            "updated": 0,
            "unchanged": 0,
            "removed": 0,
            "doc_tokenizations": 0,
            "searches": 0,
        }
        self.tokenizer = tokenizer
        self.embedder = embedder
        self.store_positions = store_positions
        conn = self._conn()
        with self._lock:
            self._initialize(conn)

    # -- connections and lifecycle ----------------------------------------

    def _conn(self) -> sqlite3.Connection:
        """This thread's connection (each thread reads independently)."""
        if self._closed:
            raise RetrievalError(f"index {self.path} is closed")
        conn = getattr(self._local, "conn", None)
        if conn is None:
            try:
                conn = sqlite3.connect(
                    str(self.path),
                    timeout=30.0,
                    isolation_level=None,  # manual transactions
                    check_same_thread=False,  # close() reaps every thread's
                )
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
            except sqlite3.Error as error:
                raise RetrievalError(
                    f"cannot open index database {self.path}: {error}"
                ) from error
            self._local.conn = conn
            self._local.data_version = None
            with self._lock:
                self._connections.append(conn)
        return conn

    def close(self) -> None:
        """Close every connection this index opened (all threads)."""
        with self._lock:
            self._closed = True
            connections, self._connections = self._connections, []
        for conn in connections:
            try:
                conn.close()
            except sqlite3.Error:
                pass

    def __enter__(self) -> "SqliteIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- schema ------------------------------------------------------------

    def _initialize(self, conn: sqlite3.Connection) -> None:
        try:
            existing = conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table' AND name='meta'"
            ).fetchone()
            if existing is None:
                self._create_schema(conn)
            else:
                self._validate_schema(conn)
        except sqlite3.DatabaseError as error:
            raise RetrievalError(
                f"corrupt index database {self.path}: {error}"
            ) from error

    def _create_schema(self, conn: sqlite3.Connection) -> None:
        if self.tokenizer is None:
            self.tokenizer = Tokenizer()
        meta = {
            "schema_version": str(SCHEMA_VERSION),
            "tokenizer": json.dumps(_tokenizer_config(self.tokenizer)),
            "store_positions": "1" if self.store_positions else "0",
            "embedder_dimensions": (
                str(self.embedder.dimensions) if self.embedder is not None else ""
            ),
        }
        conn.execute("BEGIN IMMEDIATE")
        try:
            for statement in _SCHEMA.split(";"):
                if statement.strip():
                    conn.execute(statement)
            conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)", meta.items()
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def _validate_schema(self, conn: sqlite3.Connection) -> None:
        meta = dict(conn.execute("SELECT key, value FROM meta"))
        version = meta.get("schema_version")
        if version != str(SCHEMA_VERSION):
            raise RetrievalError(
                f"unsupported index schema version {version!r} at {self.path} "
                f"(expected {SCHEMA_VERSION})"
            )
        stored_tok = json.loads(meta["tokenizer"])
        if self.tokenizer is None:
            self.tokenizer = Tokenizer(**stored_tok)
        elif _tokenizer_config(self.tokenizer) != stored_tok:
            raise RetrievalError(
                f"index {self.path} was built with analyzer {stored_tok}; "
                "reopen with a matching tokenizer (or None to adopt it)"
            )
        self.store_positions = meta.get("store_positions") == "1"
        stored_dims = meta.get("embedder_dimensions") or ""
        if not stored_dims:
            if self.embedder is not None:
                raise RetrievalError(
                    f"index {self.path} was built without dense vectors; "
                    "rebuild it with an embedder to enable dense retrieval"
                )
        else:
            dims = int(stored_dims)
            if self.embedder is None:
                self.embedder = HashedEmbedder(dims, tokenizer=self.tokenizer)
            elif self.embedder.dimensions != dims:
                raise RetrievalError(
                    f"index {self.path} stores {dims}-dimensional vectors; "
                    f"embedder has {self.embedder.dimensions}"
                )

    # -- cache discipline --------------------------------------------------

    def _drop_caches(self) -> None:
        with self._lock:
            self._doc_lengths = None
            self._dense_ids = None
            self._dense_matrix = None
            self._stats = None

    def _check_external_commits(self, conn: sqlite3.Connection) -> None:
        """Drop shared caches when another connection committed.

        ``PRAGMA data_version`` changes (for this connection) exactly
        when a different connection modified the database — the hook a
        long-lived reader needs to notice an external indexer's work.
        """
        version = conn.execute("PRAGMA data_version").fetchone()[0]
        if getattr(self._local, "data_version", None) != version:
            self._local.data_version = version
            self._drop_caches()

    def _lengths(self, conn: Optional[sqlite3.Connection] = None) -> Dict[str, int]:
        conn = conn or self._conn()
        with self._lock:
            cached = self._doc_lengths
        if cached is not None:
            return cached
        try:
            loaded = {
                doc_id: length
                for doc_id, length in conn.execute(
                    "SELECT doc_id, doc_length FROM documents"
                )
            }
        except sqlite3.DatabaseError as error:
            raise RetrievalError(
                f"corrupt index database {self.path}: {error}"
            ) from error
        with self._lock:
            self._doc_lengths = loaded
        return loaded

    @contextmanager
    def snapshot(self) -> Iterator[sqlite3.Connection]:
        """One read transaction: every read inside sees one DB version.

        WAL readers are never blocked by the writer; a search wrapped in
        a snapshot can therefore run concurrently with an indexer commit
        and still return internally consistent rankings.
        """
        conn = self._conn()
        self._check_external_commits(conn)
        try:
            conn.execute("BEGIN")
        except sqlite3.DatabaseError as error:
            raise RetrievalError(
                f"corrupt index database {self.path}: {error}"
            ) from error
        try:
            yield conn
        finally:
            conn.execute("COMMIT")

    # -- writes ------------------------------------------------------------

    def add(self, doc: Document) -> str:
        """Index, re-index, or skip one document by content hash.

        Returns ``"added"`` (new document), ``"updated"`` (content
        changed; old postings atomically replaced) or ``"unchanged"``
        (byte-identical content: a no-op — nothing is re-tokenized and
        nothing is written).
        """
        with self._lock:
            conn = self._conn()
            digest = content_hash(doc)
            try:
                row = conn.execute(
                    "SELECT content_hash FROM documents WHERE doc_id = ?",
                    (doc.doc_id,),
                ).fetchone()
                if row is not None and row[0] == digest:
                    self.counters["unchanged"] += 1
                    return "unchanged"
                conn.execute("BEGIN IMMEDIATE")
                try:
                    if row is not None:
                        self._delete_rows(conn, doc.doc_id)
                    self._insert_document(conn, doc, digest)
                    conn.execute("COMMIT")
                except BaseException:
                    conn.execute("ROLLBACK")
                    raise
            except sqlite3.DatabaseError as error:
                raise RetrievalError(
                    f"corrupt index database {self.path}: {error}"
                ) from error
            outcome = "updated" if row is not None else "added"
            self.counters[outcome] += 1
            self._drop_caches()
            return outcome

    def add_many(self, documents: Iterable[Document]) -> Dict[str, int]:
        """Bulk :meth:`add` in one transaction; returns outcome counts.

        Unchanged documents are detected *before* the write transaction
        opens, so a fully warm corpus sync takes zero write locks.
        """
        outcome = {"added": 0, "updated": 0, "unchanged": 0}
        with self._lock:
            conn = self._conn()
            try:
                pending: List[Tuple[Document, str, bool]] = []
                for doc in documents:
                    digest = content_hash(doc)
                    row = conn.execute(
                        "SELECT content_hash FROM documents WHERE doc_id = ?",
                        (doc.doc_id,),
                    ).fetchone()
                    if row is not None and row[0] == digest:
                        outcome["unchanged"] += 1
                        self.counters["unchanged"] += 1
                        continue
                    pending.append((doc, digest, row is not None))
                if not pending:
                    return outcome
                conn.execute("BEGIN IMMEDIATE")
                try:
                    for doc, digest, existed in pending:
                        if existed:
                            self._delete_rows(conn, doc.doc_id)
                        self._insert_document(conn, doc, digest)
                        key = "updated" if existed else "added"
                        outcome[key] += 1
                        self.counters[key] += 1
                    conn.execute("COMMIT")
                except BaseException:
                    conn.execute("ROLLBACK")
                    raise
            except sqlite3.DatabaseError as error:
                raise RetrievalError(
                    f"corrupt index database {self.path}: {error}"
                ) from error
            self._drop_caches()
        return outcome

    def update(self, doc: Document) -> str:
        """Re-index an *existing* document (content-hash no-op aware)."""
        with self._lock:
            if doc.doc_id not in self:
                raise UnknownDocumentError(
                    f"no document with id {doc.doc_id!r}"
                )
            return self.add(doc)

    def remove(self, doc_id: str) -> None:
        """Withdraw a document and every posting it contributed."""
        with self._lock:
            conn = self._conn()
            try:
                row = conn.execute(
                    "SELECT doc_id FROM documents WHERE doc_id = ?", (doc_id,)
                ).fetchone()
                if row is None:
                    raise UnknownDocumentError(f"no document with id {doc_id!r}")
                conn.execute("BEGIN IMMEDIATE")
                try:
                    self._delete_rows(conn, doc_id)
                    conn.execute("COMMIT")
                except BaseException:
                    conn.execute("ROLLBACK")
                    raise
            except sqlite3.DatabaseError as error:
                raise RetrievalError(
                    f"corrupt index database {self.path}: {error}"
                ) from error
            self.counters["removed"] += 1
            self._drop_caches()

    def sync(self, documents: Iterable[Document], remove_missing: bool = False) -> Dict[str, int]:
        """Fold a corpus in incrementally; optionally drop absent docs.

        Returns ``{"added": a, "updated": u, "unchanged": n, "removed": r}``.
        A warm restart over an unchanged corpus reports everything
        ``unchanged`` and performs zero tokenizations.
        """
        documents = list(documents)
        outcome = self.add_many(documents)
        outcome["removed"] = 0
        if remove_missing:
            wanted = {doc.doc_id for doc in documents}
            with self._lock:
                for doc_id in self.doc_ids():
                    if doc_id not in wanted:
                        self.remove(doc_id)
                        outcome["removed"] += 1
        return outcome

    def _delete_rows(self, conn: sqlite3.Connection, doc_id: str) -> None:
        conn.execute("DELETE FROM postings WHERE doc_id = ?", (doc_id,))
        conn.execute("DELETE FROM vectors WHERE doc_id = ?", (doc_id,))
        conn.execute("DELETE FROM documents WHERE doc_id = ?", (doc_id,))

    def _insert_document(
        self, conn: sqlite3.Connection, doc: Document, digest: str
    ) -> None:
        terms = self.tokenizer.tokenize(doc.text + " " + doc.title)
        with self._lock:  # re-entrant: every caller already writes under it
            self.counters["doc_tokenizations"] += 1
        occurrences: Dict[str, List[int]] = {}
        for position, term in enumerate(terms):
            occurrences.setdefault(term, []).append(position)
        seq = conn.execute(
            "SELECT COALESCE(MAX(seq), 0) + 1 FROM documents"
        ).fetchone()[0]
        conn.execute(
            "INSERT INTO documents "
            "(doc_id, title, text, metadata, content_hash, doc_length, seq) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                doc.doc_id,
                doc.title,
                doc.text,
                json.dumps(dict(doc.metadata), sort_keys=True, ensure_ascii=False),
                digest,
                len(terms),
                seq,
            ),
        )
        conn.executemany(
            "INSERT INTO postings (term, doc_id, tf, positions) VALUES (?, ?, ?, ?)",
            (
                (
                    term,
                    doc.doc_id,
                    len(positions),
                    json.dumps(positions) if self.store_positions else "[]",
                )
                for term, positions in occurrences.items()
            ),
        )
        if self.embedder is not None:
            vector = self.embedder.embed(doc.text + " " + doc.title)
            conn.execute(
                "INSERT INTO vectors (doc_id, dimensions, vector) VALUES (?, ?, ?)",
                (doc.doc_id, self.embedder.dimensions, vector.tobytes()),
            )

    # -- the scorer-facing read protocol -----------------------------------

    def postings(self, term: str) -> List[Posting]:
        """Postings for an analyzed term, ordered by doc_id (empty when
        absent)."""
        conn = self._conn()
        try:
            rows = conn.execute(
                "SELECT doc_id, tf, positions FROM postings "
                "WHERE term = ? ORDER BY doc_id",
                (term,),
            ).fetchall()
        except sqlite3.DatabaseError as error:
            raise RetrievalError(
                f"corrupt index database {self.path}: {error}"
            ) from error
        return [
            Posting(
                doc_id=doc_id,
                term_frequency=tf,
                positions=tuple(json.loads(positions)),
            )
            for doc_id, tf, positions in rows
        ]

    def document_frequency(self, term: str) -> int:
        """Number of documents containing the analyzed term."""
        conn = self._conn()
        return conn.execute(
            "SELECT COUNT(*) FROM postings WHERE term = ?", (term,)
        ).fetchone()[0]

    def term_frequency(self, term: str, doc_id: str) -> int:
        """Frequency of ``term`` inside ``doc_id`` (0 if absent)."""
        conn = self._conn()
        row = conn.execute(
            "SELECT tf FROM postings WHERE term = ? AND doc_id = ?",
            (term, doc_id),
        ).fetchone()
        return row[0] if row is not None else 0

    def doc_length(self, doc_id: str) -> int:
        """Analyzed token count of a document."""
        try:
            return self._lengths()[doc_id]
        except KeyError:
            raise UnknownDocumentError(f"no document with id {doc_id!r}") from None

    def document(self, doc_id: str) -> Document:
        """Return the stored document."""
        conn = self._conn()
        row = conn.execute(
            "SELECT doc_id, title, text, metadata FROM documents WHERE doc_id = ?",
            (doc_id,),
        ).fetchone()
        if row is None:
            raise UnknownDocumentError(f"no document with id {doc_id!r}")
        return _row_to_document(row)

    def documents(self) -> List[Document]:
        """All indexed documents in first-indexed order."""
        conn = self._conn()
        return [
            _row_to_document(row)
            for row in conn.execute(
                "SELECT doc_id, title, text, metadata FROM documents ORDER BY seq"
            )
        ]

    def doc_ids(self) -> List[str]:
        """All indexed document ids in first-indexed order."""
        conn = self._conn()
        return [
            row[0]
            for row in conn.execute("SELECT doc_id FROM documents ORDER BY seq")
        ]

    def vocabulary(self) -> List[str]:
        """All analyzed terms, sorted."""
        conn = self._conn()
        return [
            row[0]
            for row in conn.execute(
                "SELECT DISTINCT term FROM postings ORDER BY term"
            )
        ]

    @property
    def stats(self) -> IndexStats:
        """Collection statistics (cached: BM25 reads these per query,
        and the vocabulary count walks every distinct term)."""
        conn = self._conn()
        self._check_external_commits(conn)
        with self._lock:
            cached = self._stats
        if cached is not None:
            return cached
        lengths = self._lengths(conn)
        try:
            vocabulary = conn.execute(
                "SELECT COUNT(DISTINCT term) FROM postings"
            ).fetchone()[0]
        except sqlite3.DatabaseError as error:
            raise RetrievalError(
                f"corrupt index database {self.path}: {error}"
            ) from error
        computed = IndexStats(
            num_documents=len(lengths),
            total_terms=sum(lengths.values()),
            vocabulary_size=vocabulary,
        )
        with self._lock:
            self._stats = computed
        return computed

    def __len__(self) -> int:
        conn = self._conn()
        self._check_external_commits(conn)
        return len(self._lengths(conn))

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._lengths()

    def size_bytes(self) -> int:
        """On-disk footprint (database plus WAL side files)."""
        total = 0
        for suffix in ("", "-wal", "-shm"):
            candidate = Path(str(self.path) + suffix)
            if candidate.exists():
                total += candidate.stat().st_size
        return total

    # -- dense access ------------------------------------------------------

    def dense_view(self) -> "_DenseView":
        """Dense-scores adapter over the stored vectors.

        Raises when the index was built without an embedder — dense and
        hybrid retrieval need vectors that only indexing can produce.
        """
        if self.embedder is None:
            raise RetrievalError(
                f"index {self.path} has no dense vectors; rebuild it with "
                "an embedder to use dense or hybrid retrieval"
            )
        return _DenseView(self)

    def _dense_rows(self) -> Tuple[List[str], np.ndarray]:
        with self._lock:
            if self._dense_ids is not None and self._dense_matrix is not None:
                return self._dense_ids, self._dense_matrix
        conn = self._conn()
        try:
            rows = conn.execute(
                "SELECT doc_id, vector FROM vectors ORDER BY doc_id"
            ).fetchall()
        except sqlite3.DatabaseError as error:
            raise RetrievalError(
                f"corrupt index database {self.path}: {error}"
            ) from error
        ids = [doc_id for doc_id, _ in rows]
        dimensions = self.embedder.dimensions if self.embedder else 0
        if rows:
            matrix = np.vstack(
                [np.frombuffer(blob, dtype=np.float64) for _, blob in rows]
            )
        else:
            matrix = np.zeros((0, dimensions), dtype=np.float64)
        with self._lock:
            self._dense_ids = ids
            self._dense_matrix = matrix
        return ids, matrix


class _DenseView:
    """The :class:`~repro.retrieval.dense.DenseIndex` read protocol
    (``scores``/``search``) over a :class:`SqliteIndex`'s vector table."""

    def __init__(self, index: SqliteIndex) -> None:
        self.index = index
        self.embedder = index.embedder

    def __len__(self) -> int:
        ids, _ = self.index._dense_rows()
        return len(ids)

    def scores(self, query: str) -> Dict[str, float]:
        """Cosine similarity for every stored vector."""
        ids, matrix = self.index._dense_rows()
        if not ids:
            return {}
        query_vector = self.embedder.embed(query)
        similarities = matrix @ query_vector
        return dict(zip(ids, similarities.tolist()))


def make_retrieval_scorer(
    index: SqliteIndex,
    mode: str = "bm25",
    fusion: str = "minmax",
    alpha: float = 0.5,
) -> Scorer:
    """Build the scorer a retrieval mode names, over a persistent index.

    ``bm25`` is the sparse baseline; ``dense`` ranks purely by vector
    cosine; ``hybrid`` fuses both — via min-max normalization
    (``fusion="minmax"``, weight ``alpha`` on the sparse side) or
    reciprocal-rank fusion (``fusion="rrf"``), both immune to the
    unbounded-BM25 vs bounded-cosine scale mismatch.
    """
    if mode not in RETRIEVAL_MODES:
        raise ConfigError(
            f"retrieval mode must be one of {RETRIEVAL_MODES}, got {mode!r}"
        )
    if fusion not in FUSION_STRATEGIES:
        raise ConfigError(
            f"fusion must be one of {FUSION_STRATEGIES}, got {fusion!r}"
        )
    if mode == "bm25":
        return BM25Scorer()
    dense = DenseScorer(index.dense_view())
    if mode == "dense":
        return dense
    if fusion == "rrf":
        return ReciprocalRankFusionScorer(
            [BM25Scorer(), dense], weights=[alpha, 1.0 - alpha]
        )
    return HybridScorer(BM25Scorer(), dense, alpha=alpha)


class SqliteSearcher(Searcher):
    """:class:`~repro.retrieval.searcher.Searcher` over a persistent
    index: every search runs inside one snapshot transaction, so a
    concurrent indexer commit can never split a ranking across two
    database versions."""

    def __init__(self, index: SqliteIndex, scorer: Optional[Scorer] = None) -> None:
        super().__init__(index, scorer=scorer)

    def search(self, query: str, k: int = 10) -> RetrievalResult:
        index: SqliteIndex = self.index
        with index.snapshot():
            with index._lock:
                index.counters["searches"] += 1
            return super().search(query, k)


def _tokenizer_config(tokenizer: Tokenizer) -> Dict[str, bool]:
    return {
        "lowercase": tokenizer.lowercase,
        "remove_stopwords": tokenizer.remove_stopwords,
        "stem": tokenizer.stem,
        "fold_accents": tokenizer.fold_accents,
    }


def _row_to_document(row: Sequence[object]) -> Document:
    doc_id, title, text, metadata = row
    return Document(
        doc_id=doc_id,
        text=text,
        title=title,
        metadata=json.loads(metadata),
    )
