"""Documents and corpora — the knowledge sources RAGE explains.

A :class:`Document` is one external knowledge source.  A :class:`Corpus`
is an ordered, id-addressable collection of documents from which the
retrieval model selects the context ``Dq``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional

from ..errors import DocumentError, UnknownDocumentError


@dataclass(frozen=True)
class Document:
    """A single knowledge source.

    Attributes
    ----------
    doc_id:
        Stable unique identifier (used in perturbations, rules, reports).
    text:
        The raw natural-language content given to the LLM.
    title:
        Optional short human-readable title for rendering.
    metadata:
        Free-form string metadata (e.g. publication year) — never read by
        the core algorithms, only surfaced in reports.
    """

    doc_id: str
    text: str
    title: str = ""
    metadata: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.doc_id:
            raise DocumentError("doc_id must be a non-empty string")
        if not self.text:
            raise DocumentError(f"document {self.doc_id!r} has empty text")

    def display_title(self) -> str:
        """Title if present, else the document id."""
        return self.title or self.doc_id

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation."""
        return {
            "doc_id": self.doc_id,
            "text": self.text,
            "title": self.title,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Document":
        """Inverse of :meth:`to_dict`."""
        return cls(
            doc_id=str(payload["doc_id"]),
            text=str(payload["text"]),
            title=str(payload.get("title", "")),
            metadata={str(k): str(v) for k, v in dict(payload.get("metadata", {})).items()},
        )


class Corpus:
    """An ordered collection of :class:`Document` with id lookup.

    Iteration order is insertion order, which makes corpus construction
    deterministic and reproducible across runs.
    """

    def __init__(self, documents: Optional[Iterable[Document]] = None) -> None:
        self._docs: Dict[str, Document] = {}
        for doc in documents or ():
            self.add(doc)

    def add(self, doc: Document) -> None:
        """Add a document; duplicate ids are rejected."""
        if doc.doc_id in self._docs:
            raise DocumentError(f"duplicate doc_id {doc.doc_id!r}")
        self._docs[doc.doc_id] = doc

    def get(self, doc_id: str) -> Document:
        """Return the document with ``doc_id`` or raise."""
        try:
            return self._docs[doc_id]
        except KeyError:
            raise UnknownDocumentError(f"no document with id {doc_id!r}") from None

    def remove(self, doc_id: str) -> Document:
        """Remove and return the document with ``doc_id``, or raise."""
        try:
            return self._docs.pop(doc_id)
        except KeyError:
            raise UnknownDocumentError(f"no document with id {doc_id!r}") from None

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._docs

    def __len__(self) -> int:
        return len(self._docs)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._docs.values())

    def doc_ids(self) -> List[str]:
        """All document ids in insertion order."""
        return list(self._docs.keys())

    def to_json(self) -> str:
        """Serialize the corpus to a JSON array string."""
        return json.dumps([doc.to_dict() for doc in self], indent=2)

    @classmethod
    def from_json(cls, payload: str) -> "Corpus":
        """Deserialize a corpus produced by :meth:`to_json`."""
        return cls(Document.from_dict(item) for item in json.loads(payload))
