"""Ranking functions over the inverted index.

:class:`BM25Scorer` implements Okapi BM25 with the Robertson/Lucene IDF
(the formulation Pyserini's default BM25 uses), and :class:`TfIdfScorer`
provides a classic lnc.ltc-style TF-IDF baseline used by the ablation
benchmarks.  Both satisfy the :class:`Scorer` protocol consumed by
:class:`repro.retrieval.searcher.Searcher`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Protocol, Sequence

from ..errors import ConfigError
from .index import InvertedIndex


class Scorer(Protocol):
    """Scoring interface: accumulate per-document scores for a query."""

    def score_query(self, index: InvertedIndex, query_terms: Sequence[str]) -> Dict[str, float]:
        """Return ``{doc_id: score}`` for every document matching any term."""
        ...


class BM25Scorer:
    """Okapi BM25.

    score(d, q) = sum over query terms t of
        IDF(t) * tf(t, d) * (k1 + 1) / (tf(t, d) + k1 * (1 - b + b * |d| / avgdl))

    with the non-negative Robertson IDF
        IDF(t) = ln(1 + (N - df + 0.5) / (df + 0.5)).

    Parameters
    ----------
    k1:
        Term-frequency saturation (Pyserini default 0.9; classic 1.2).
    b:
        Length normalization strength in [0, 1] (Pyserini default 0.4).
    """

    def __init__(self, k1: float = 0.9, b: float = 0.4) -> None:
        if k1 < 0:
            raise ConfigError(f"BM25 k1 must be >= 0, got {k1}")
        if not 0.0 <= b <= 1.0:
            raise ConfigError(f"BM25 b must be in [0, 1], got {b}")
        self.k1 = k1
        self.b = b

    def idf(self, index: InvertedIndex, term: str) -> float:
        """Robertson IDF of an analyzed term (0 for absent terms)."""
        df = index.document_frequency(term)
        if df == 0:
            return 0.0
        n = len(index)
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def score_query(self, index: InvertedIndex, query_terms: Sequence[str]) -> Dict[str, float]:
        scores: Dict[str, float] = {}
        if len(index) == 0:
            return scores
        avgdl = index.stats.average_doc_length or 1.0
        for term in query_terms:
            idf = self.idf(index, term)
            if idf == 0.0:
                continue
            for posting in index.postings(term):
                tf = posting.term_frequency
                dl = index.doc_length(posting.doc_id)
                denom = tf + self.k1 * (1.0 - self.b + self.b * dl / avgdl)
                contribution = idf * tf * (self.k1 + 1.0) / denom
                scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + contribution
        return scores


class TfIdfScorer:
    """Log-TF x IDF with cosine-style document length normalization.

    Kept as a second retrieval model so benchmarks can ablate the choice
    of retrieval-based relevance scores in the counterfactual search.
    """

    def idf(self, index: InvertedIndex, term: str) -> float:
        df = index.document_frequency(term)
        if df == 0:
            return 0.0
        return math.log(1.0 + len(index) / df)

    def score_query(self, index: InvertedIndex, query_terms: Sequence[str]) -> Dict[str, float]:
        scores: Dict[str, float] = {}
        for term in query_terms:
            idf = self.idf(index, term)
            if idf == 0.0:
                continue
            for posting in index.postings(term):
                weight = (1.0 + math.log(posting.term_frequency)) * idf
                scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + weight
        for doc_id in list(scores):
            length = index.doc_length(doc_id)
            scores[doc_id] /= math.sqrt(length) if length > 0 else 1.0
        return scores


def top_k(scores: Dict[str, float], k: int) -> List[tuple]:
    """Return the k highest-scoring ``(doc_id, score)`` pairs.

    Ties are broken by doc_id so rankings are fully deterministic.
    """
    if k <= 0:
        raise ConfigError(f"k must be positive, got {k}")
    ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return ordered[:k]
