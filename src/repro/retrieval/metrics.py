"""Standard ranked-retrieval quality metrics.

Used by benchmark E11 and available for evaluating custom corpora:
precision@k, recall@k, mean reciprocal rank, average precision (MAP for
a single query), and nDCG with binary relevance.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Set

from ..errors import ConfigError


def _relevant_set(relevant: Iterable[str]) -> Set[str]:
    result = set(relevant)
    if not result:
        raise ConfigError("relevant set must be non-empty")
    return result


def precision_at_k(ranking: Sequence[str], relevant: Iterable[str], k: int) -> float:
    """Fraction of the top-k that is relevant."""
    if k <= 0:
        raise ConfigError(f"k must be positive, got {k}")
    relevant_set = _relevant_set(relevant)
    top = ranking[:k]
    if not top:
        return 0.0
    return sum(1 for doc_id in top if doc_id in relevant_set) / k


def recall_at_k(ranking: Sequence[str], relevant: Iterable[str], k: int) -> float:
    """Fraction of the relevant set found in the top-k."""
    if k <= 0:
        raise ConfigError(f"k must be positive, got {k}")
    relevant_set = _relevant_set(relevant)
    found = sum(1 for doc_id in ranking[:k] if doc_id in relevant_set)
    return found / len(relevant_set)


def reciprocal_rank(ranking: Sequence[str], relevant: Iterable[str]) -> float:
    """1 / rank of the first relevant document (0.0 when none appears)."""
    relevant_set = _relevant_set(relevant)
    for rank, doc_id in enumerate(ranking, start=1):
        if doc_id in relevant_set:
            return 1.0 / rank
    return 0.0


def average_precision(ranking: Sequence[str], relevant: Iterable[str]) -> float:
    """Mean of precision@rank over ranks holding relevant documents."""
    relevant_set = _relevant_set(relevant)
    hits = 0
    precision_sum = 0.0
    for rank, doc_id in enumerate(ranking, start=1):
        if doc_id in relevant_set:
            hits += 1
            precision_sum += hits / rank
    if hits == 0:
        return 0.0
    return precision_sum / len(relevant_set)


def ndcg_at_k(ranking: Sequence[str], relevant: Iterable[str], k: int) -> float:
    """Normalized discounted cumulative gain with binary relevance."""
    if k <= 0:
        raise ConfigError(f"k must be positive, got {k}")
    relevant_set = _relevant_set(relevant)
    dcg = sum(
        1.0 / math.log2(rank + 1)
        for rank, doc_id in enumerate(ranking[:k], start=1)
        if doc_id in relevant_set
    )
    ideal_hits = min(len(relevant_set), k)
    ideal = sum(1.0 / math.log2(rank + 1) for rank in range(1, ideal_hits + 1))
    return dcg / ideal if ideal > 0 else 0.0
