"""Dense retrieval: embedding-based ranking and hybrid fusion.

The retrieval toolkit the paper builds on (Pyserini) is explicitly "a
Python toolkit for reproducible information retrieval research with
sparse AND dense representations".  This module provides the dense half
without external model weights:

* :class:`HashedEmbedder` — deterministic feature-hashed bag-of-terms
  embeddings (the "hashing trick"): each analyzed term is hashed to a
  dimension and a sign, giving fixed-width vectors whose cosine
  similarity approximates term overlap.  No training, no network, fully
  reproducible — the appropriate stand-in for a sentence encoder in
  this offline environment (see DESIGN.md §3).
* :class:`DenseIndex` — exact (brute-force) nearest-neighbour search
  over normalized document vectors.
* :class:`DenseScorer` — the :class:`~repro.retrieval.bm25.Scorer`
  protocol over a dense index, so :class:`Searcher` can rank with it.
* :class:`HybridScorer` — min-max-normalized linear fusion of a sparse
  and a dense scorer (Pyserini's standard hybrid).
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, EmptyIndexError
from ..textproc import Tokenizer
from .bm25 import Scorer
from .document import Document
from .index import InvertedIndex


class HashedEmbedder:
    """Feature-hashed bag-of-terms embeddings.

    Each analyzed term deterministically maps to one of ``dimensions``
    buckets with a +/-1 sign (both derived from a blake2b digest);
    vectors are L2-normalized so dot product = cosine similarity.
    """

    def __init__(self, dimensions: int = 256, tokenizer: Optional[Tokenizer] = None) -> None:
        if dimensions <= 0:
            raise ConfigError(f"dimensions must be positive, got {dimensions}")
        self.dimensions = dimensions
        self.tokenizer = tokenizer or Tokenizer()

    def _slot(self, term: str) -> Tuple[int, float]:
        digest = hashlib.blake2b(term.encode("utf-8"), digest_size=8).digest()
        value = int.from_bytes(digest, "big")
        index = value % self.dimensions
        sign = 1.0 if (value >> 63) & 1 else -1.0
        return index, sign

    def embed(self, text: str) -> np.ndarray:
        """Normalized embedding of ``text`` (zero vector for no terms)."""
        vector = np.zeros(self.dimensions, dtype=np.float64)
        for term in self.tokenizer.tokenize(text):
            index, sign = self._slot(term)
            vector[index] += sign
        norm = float(np.linalg.norm(vector))
        if norm > 0:
            vector /= norm
        return vector

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Stacked embeddings, one row per text."""
        if not texts:
            return np.zeros((0, self.dimensions), dtype=np.float64)
        return np.vstack([self.embed(text) for text in texts])


class DenseIndex:
    """Exact nearest-neighbour search over document embeddings."""

    def __init__(self, embedder: Optional[HashedEmbedder] = None) -> None:
        self.embedder = embedder or HashedEmbedder()
        self._doc_ids: List[str] = []
        self._matrix = np.zeros((0, self.embedder.dimensions), dtype=np.float64)

    @classmethod
    def build(
        cls,
        documents: Sequence[Document],
        embedder: Optional[HashedEmbedder] = None,
    ) -> "DenseIndex":
        """Embed and index every document."""
        index = cls(embedder=embedder)
        texts = [doc.text + " " + doc.title for doc in documents]
        index._doc_ids = [doc.doc_id for doc in documents]
        index._matrix = index.embedder.embed_batch(texts)
        return index

    def __len__(self) -> int:
        return len(self._doc_ids)

    def search(self, query: str, k: int = 10) -> List[Tuple[str, float]]:
        """Top-k ``(doc_id, cosine)`` pairs, best first, ties by doc id."""
        if len(self) == 0:
            raise EmptyIndexError("cannot search an empty dense index")
        if k <= 0:
            raise ConfigError(f"k must be positive, got {k}")
        query_vector = self.embedder.embed(query)
        similarities = self._matrix @ query_vector
        scored = sorted(
            zip(self._doc_ids, similarities.tolist()),
            key=lambda item: (-item[1], item[0]),
        )
        return scored[:k]

    def scores(self, query: str) -> Dict[str, float]:
        """Cosine similarity for every indexed document."""
        if len(self) == 0:
            return {}
        query_vector = self.embedder.embed(query)
        similarities = self._matrix @ query_vector
        return dict(zip(self._doc_ids, similarities.tolist()))


class DenseScorer:
    """Adapt a :class:`DenseIndex` to the sparse :class:`Scorer` protocol.

    The inverted index supplies the document set and the analyzed query
    terms; scores come from the dense index.  Build both indexes over
    the same corpus.
    """

    def __init__(self, dense_index: DenseIndex) -> None:
        self.dense_index = dense_index

    def score_query(self, index: InvertedIndex, query_terms: Sequence[str]) -> Dict[str, float]:
        query = " ".join(query_terms)
        scores = self.dense_index.scores(query)
        # Keep only docs present in the sparse index (same corpus check)
        # and with positive affinity, mirroring sparse behaviour where
        # non-matching docs are unscored.
        return {
            doc_id: score
            for doc_id, score in scores.items()
            if doc_id in index and score > 0.0
        }


class ReciprocalRankFusionScorer:
    """Reciprocal-rank fusion over any number of scorers.

    RRF fuses *ranks* instead of scores — ``sum_i w_i / (k0 + rank_i)``
    — so it is immune to scale mismatch between fused signals (an
    unbounded BM25 score and a ``[-1, 1]`` cosine contribute equally by
    construction).  Ranks are assigned with doc_id tie-breaks, making
    the fusion fully deterministic.

    Parameters
    ----------
    scorers:
        The signals to fuse (each satisfying the :class:`Scorer`
        protocol); documents unscored by a signal simply contribute
        nothing for it.
    k0:
        Rank-smoothing constant (literature default 60): larger values
        flatten the difference between adjacent ranks.
    weights:
        Optional per-scorer weights, aligned with ``scorers``; default
        all 1.0.
    """

    def __init__(
        self,
        scorers: Sequence[Scorer],
        k0: float = 60.0,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if not scorers:
            raise ConfigError("RRF needs at least one scorer")
        if k0 <= 0:
            raise ConfigError(f"k0 must be positive, got {k0}")
        if weights is not None and len(weights) != len(scorers):
            raise ConfigError(
                f"weights must align with scorers "
                f"({len(weights)} vs {len(scorers)})"
            )
        self.scorers = list(scorers)
        self.k0 = k0
        self.weights = list(weights) if weights is not None else [1.0] * len(scorers)

    @staticmethod
    def _ranks(scores: Dict[str, float]) -> Dict[str, int]:
        """1-based ranks, best first, ties broken by doc_id."""
        ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return {doc_id: rank for rank, (doc_id, _) in enumerate(ordered, start=1)}

    def score_query(self, index: InvertedIndex, query_terms: Sequence[str]) -> Dict[str, float]:
        fused: Dict[str, float] = {}
        for weight, scorer in zip(self.weights, self.scorers):
            for doc_id, rank in self._ranks(
                scorer.score_query(index, query_terms)
            ).items():
                fused[doc_id] = fused.get(doc_id, 0.0) + weight / (self.k0 + rank)
        return fused


class HybridScorer:
    """Min-max-normalized linear fusion: alpha*sparse + (1-alpha)*dense."""

    def __init__(self, sparse: Scorer, dense: Scorer, alpha: float = 0.5) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ConfigError(f"alpha must be in [0, 1], got {alpha}")
        self.sparse = sparse
        self.dense = dense
        self.alpha = alpha

    @staticmethod
    def _normalize(scores: Dict[str, float]) -> Dict[str, float]:
        if not scores:
            return {}
        low = min(scores.values())
        high = max(scores.values())
        if math.isclose(low, high):
            return {doc_id: 1.0 for doc_id in scores}
        return {doc_id: (s - low) / (high - low) for doc_id, s in scores.items()}

    def score_query(self, index: InvertedIndex, query_terms: Sequence[str]) -> Dict[str, float]:
        sparse_scores = self._normalize(self.sparse.score_query(index, query_terms))
        dense_scores = self._normalize(self.dense.score_query(index, query_terms))
        fused: Dict[str, float] = {}
        for doc_id in set(sparse_scores) | set(dense_scores):
            fused[doc_id] = self.alpha * sparse_scores.get(doc_id, 0.0) + (
                1.0 - self.alpha
            ) * dense_scores.get(doc_id, 0.0)
        return fused
