"""Cross-request micro-batch windows over an execution backend.

Single-flight (:mod:`repro.llm.coalesce`) deduplicates *identical*
prompts; this layer merges *different* ones.  Concurrent tenants of a
serving process each submit their evaluation rounds through
:meth:`ExecutionBackend.run` as separate small batches, and each batch
pays its own dispatch.  A :class:`CoalescingBackend` holds the first
submission for a model open for up to ``window_ms`` milliseconds,
gathers every submission that arrives in that window — across requests,
tenants, and threads — and flushes them as **one** merged native batch
through the wrapped backend's dispatch ladder.  Duplicate prompts
across submissions are dispatched once and fanned back out to every
submitter in its own order.

The window is opt-in (``RageConfig.batch_window_ms`` /
``--batch-window-ms``, default off) because it is a throughput/latency
trade: every participant waits out the window plus the merged flush,
which only pays off when the inner model rewards bigger batches (a
padded transformer batch, one HTTP round-trip) or requests genuinely
overlap.

Semantics preserved from the wrapped backend:

* **Per-prompt timeouts** — the flush goes through the inner backend's
  normal dispatch, so its deadline still applies per prompt; a hung
  prompt fails after its siblings complete, exactly as it would have in
  a solo batch.  The window does widen the failure domain: an error
  raised by the merged flush propagates to every submission in the
  window (each sees the same exception), mirroring what the existing
  batch contract does for prompts of one request.
* **Cancellation refunds** — an async waiter cancelled before its
  window flushes is withdrawn: its prompts are not dispatched on its
  behalf (``stats.refunded``) and the flush proceeds for the others.
  Cancelled after the flush started, the result is simply discarded.
  The flush itself runs on a timer thread, never on a waiter, so a
  cancelled leader cannot strand the window.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigError
from ..llm.base import GenerationResult, LanguageModel
from ..llm.coalesce import Latch
from .backend import ExecutionBackend


@dataclass
class WindowStats:
    """Counters for one :class:`CoalescingBackend` window layer.

    ``submissions`` counts batches entering a window; ``windows`` the
    flushes dispatched; ``merged_windows`` the flushes that combined
    more than one submission (cross-request batching actually
    happened); ``flushed_prompts`` the deduplicated prompts dispatched
    across all flushes (so ``mean_flush_size`` is the average merged
    batch the inner backend saw); ``refunded`` the prompts withdrawn by
    cancelled waiters before their flush.
    """

    submissions: int = 0
    windows: int = 0
    merged_windows: int = 0
    flushed_prompts: int = 0
    max_flush: int = 0
    refunded: int = 0

    @property
    def mean_flush_size(self) -> float:
        """Average deduplicated prompts per flush (0.0 when unused)."""
        if self.windows == 0:
            return 0.0
        return self.flushed_prompts / self.windows


class _Submission:
    """One caller's batch waiting for its window to flush."""

    __slots__ = ("prompts", "latch", "withdrawn", "taken")

    def __init__(self, prompts: Sequence[str]) -> None:
        self.prompts = list(prompts)
        self.latch = Latch()
        self.withdrawn = False  # cancelled before the flush took it
        self.taken = False  # claimed by a flush; too late to withdraw

    def settle_aligned(
        self, results: Sequence[GenerationResult], index: Dict[str, int]
    ) -> None:
        self.latch.resolve([results[index[p]] for p in self.prompts])


class _Window:
    """The open submission set for one model's next flush."""

    __slots__ = ("model", "submissions", "timer")

    def __init__(self, model: LanguageModel) -> None:
        self.model = model
        self.submissions: List[_Submission] = []
        self.timer: Optional[threading.Timer] = None


class CoalescingBackend(ExecutionBackend):
    """Wrap any backend with a cross-request micro-batch window.

    Construction takes the wrapped backend and the window width in
    milliseconds (must be > 0 — ``None``/off means simply not wrapping).
    ``capacity`` and ``timeout`` are the inner backend's; this layer
    adds scheduling, not concurrency.  ``stats`` (inherited) counts the
    submissions this layer accepted, ``window_stats`` the flush-side
    picture; the inner backend's own ``stats`` then show the merged
    batches it actually received.
    """

    def __init__(self, inner: ExecutionBackend, window_ms: float) -> None:
        if not window_ms or window_ms <= 0:
            raise ConfigError(
                f"window_ms must be > 0 milliseconds, got {window_ms!r}"
            )
        super().__init__()
        self.inner = inner
        self.window_ms = float(window_ms)
        self.name = f"coalesce:{window_ms:g}ms+{inner.name}"
        self.capacity = inner.capacity
        self.timeout = inner.timeout
        self.window_stats = WindowStats()
        # One window per wrapped model may be open at a time; the
        # registry and all submission/withdrawal bookkeeping happen
        # under this lock.  Flushes (real model calls) never hold it.
        self._window_lock = threading.Lock()
        self._pending: Dict[int, _Window] = {}

    def run(
        self, model: LanguageModel, prompts: Sequence[str]
    ) -> List[GenerationResult]:
        if not prompts:
            return []
        with self._track(len(prompts)):
            submission = self._enlist(model, prompts)
            return submission.latch.wait()

    async def arun(
        self, model: LanguageModel, prompts: Sequence[str]
    ) -> List[GenerationResult]:
        if not prompts:
            return []
        with self._track(len(prompts)):
            submission = self._enlist(model, prompts)
            try:
                return await submission.latch.wait_async()
            except BaseException:
                # Covers asyncio.CancelledError (which is not an
                # Exception): refund our seat if the flush has not
                # taken it, then let the cancellation propagate.
                self._withdraw(submission)
                raise

    def _enlist(self, model: LanguageModel, prompts: Sequence[str]) -> _Submission:
        """Join (or open) the model's current window; maybe arm its timer.

        The timer — not the first submitter — owns the flush, so a
        submitter that is cancelled, times out, or dies can never
        strand the other participants of its window.
        """
        submission = _Submission(prompts)
        started: Optional[threading.Timer] = None
        with self._window_lock:
            window = self._pending.get(id(model))
            if window is None:
                window = _Window(model)
                self._pending[id(model)] = window
                timer = threading.Timer(
                    self.window_ms / 1000.0, self._flush, args=(window,)
                )
                timer.daemon = True
                window.timer = timer
                started = timer
            window.submissions.append(submission)
            self.window_stats.submissions += 1
        if started is not None:
            started.start()
        return submission

    def _withdraw(self, submission: _Submission) -> None:
        with self._window_lock:
            if submission.taken:
                return
            submission.withdrawn = True
            self.window_stats.refunded += len(submission.prompts)

    def _flush(self, window: _Window) -> None:
        """Close ``window`` and dispatch its merged batch (timer thread)."""
        with self._window_lock:
            if self._pending.get(id(window.model)) is window:
                del self._pending[id(window.model)]
            live = [s for s in window.submissions if not s.withdrawn]
            for submission in live:
                submission.taken = True
        if not live:
            return
        unique: List[str] = []
        index: Dict[str, int] = {}
        for submission in live:
            for prompt in submission.prompts:
                if prompt not in index:
                    index[prompt] = len(unique)
                    unique.append(prompt)
        try:
            results = self.inner.run(window.model, unique)
        except BaseException as error:
            for submission in live:
                submission.latch.reject(error)
            return
        with self._window_lock:
            self.window_stats.windows += 1
            self.window_stats.flushed_prompts += len(unique)
            self.window_stats.max_flush = max(
                self.window_stats.max_flush, len(unique)
            )
            if len(live) > 1:
                self.window_stats.merged_windows += 1
        for submission in live:
            submission.settle_aligned(results, index)
