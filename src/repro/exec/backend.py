"""Execution backends: *how* a batch of LLM calls runs.

:func:`repro.llm.base.batched_generate` answers the per-call question —
which entry point of one model to use.  An :class:`ExecutionBackend`
answers the policy question one level up: given the misses of one
evaluation round, run them serially, across a thread pool, or on an
asyncio event loop, with an explicit capacity (maximum in-flight LLM
calls).  :class:`~repro.core.evaluate.ContextEvaluator.evaluate_many`
is the single choke point that submits through a backend, so every
explanation algorithm — evaluation plans, lattice probe rounds,
candidate scans, both counterfactual searches — inherits the chosen
execution strategy without knowing it exists.

Backends never change *what* is computed: answers are byte-identical
across all of them (the models are deterministic and results realign
with the input order); only wall-clock and resource usage differ.

Choosing a backend
------------------
``serial``
    One dispatch, no added concurrency.  The right default for
    compute-bound in-process models (the simulated LLM, a local
    transformer) whose native ``generate_batch`` already is the fastest
    path.
``threaded[:N]``
    Up to ``N`` (default 8) concurrent ``generate`` calls on a thread
    pool.  Wins only when the model
    releases the GIL or waits on I/O (remote HTTP APIs); a native batch
    entry point still takes precedence because it cannot be beaten by
    re-slicing the same compute.
``asyncio[:N]``
    Drives the model's async contract (``agenerate_batch`` /
    ``agenerate``) on an event loop, at most ``N`` calls in flight
    (the :data:`~repro.llm.base.DEFAULT_MAX_INFLIGHT` safety cap when
    omitted).  The scalable choice for async remote backends —
    in-flight calls cost coroutines, not threads.

:func:`make_backend` parses exactly those specs (CLI ``--backend`` and
:class:`~repro.core.engine.RageConfig.backend` use it).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..errors import ConfigError
from ..llm.base import (
    DEFAULT_MAX_INFLIGHT,
    GenerationResult,
    LanguageModel,
    abatched_generate,
    batched_generate,
    pooled_generate,
    run_coroutine,
    sequential_generate,
)

#: Thread-pool width when ``threaded`` is requested without a count.
DEFAULT_THREAD_WORKERS = 8


def _check_timeout(timeout: Optional[float]) -> Optional[float]:
    if timeout is not None and timeout <= 0:
        raise ConfigError(
            f"timeout must be > 0 seconds (or None for no deadline), got {timeout}"
        )
    return timeout


def _has_native_batch(model: LanguageModel) -> bool:
    return callable(getattr(model, "generate_batch", None)) or callable(
        getattr(model, "agenerate_batch", None)
    )


@dataclass
class BackendStats:
    """Submission counters for one :class:`ExecutionBackend` instance.

    One backend is shared by every consumer of one engine — all
    evaluators, and all request threads of a serving process — so these
    counters describe the engine's whole evaluation traffic.
    ``batches``/``prompts`` count submissions through
    :meth:`ExecutionBackend.run` / :meth:`ExecutionBackend.arun`;
    ``active`` the batches executing right now and ``max_active`` their
    high-water mark, which exceeds 1 exactly when concurrent callers
    (server request handlers) actually overlapped on the backend.
    """

    batches: int = 0
    prompts: int = 0
    active: int = 0
    max_active: int = 0


class ExecutionBackend:
    """Strategy for executing one batch of prompts against one model.

    Subclasses implement :meth:`run` (synchronous callers — the
    evaluator) and may override :meth:`arun` (async callers — a future
    serving layer); the default ``arun`` simply awaits nothing and
    delegates, which is correct for backends that block anyway.
    Subclass entry points wrap their body in :meth:`_track` so the
    shared :class:`BackendStats` stay truthful whoever calls.

    Attributes
    ----------
    name:
        Spec-style identifier (``serial``, ``threaded:8``, ...).
    capacity:
        Maximum concurrent in-flight LLM calls this backend adds on top
        of the model's own dispatch; ``None`` defers to the dispatch
        layer's :data:`~repro.llm.base.DEFAULT_MAX_INFLIGHT` cap (and
        is model-defined for native batches).
    timeout:
        Optional per-call deadline (seconds) applied to every dispatch
        this backend runs; a hung prompt fails *that prompt* (raised as
        :class:`~repro.errors.GenerationTimeoutError` after its
        siblings complete), never silently stalls the batch.  ``None``
        (the default) preserves the historical wait-forever behavior.
    """

    name: str = "abstract"
    capacity: Optional[int] = 1
    timeout: Optional[float] = None

    def __init__(self) -> None:
        self.stats = BackendStats()
        self._stats_lock = threading.Lock()

    @contextmanager
    def _track(self, num_prompts: int) -> Iterator[None]:
        """Account one batch submission for the lifetime of its run."""
        with self._stats_lock:
            self.stats.batches += 1
            self.stats.prompts += num_prompts
            self.stats.active += 1
            self.stats.max_active = max(self.stats.max_active, self.stats.active)
        try:
            yield
        finally:
            with self._stats_lock:
                self.stats.active -= 1

    def run(
        self, model: LanguageModel, prompts: Sequence[str]
    ) -> List[GenerationResult]:
        """Execute ``prompts`` against ``model``; aligned results."""
        raise NotImplementedError

    async def arun(
        self, model: LanguageModel, prompts: Sequence[str]
    ) -> List[GenerationResult]:
        """Async entry point; defaults to the blocking :meth:`run`."""
        return self.run(model, prompts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class SerialBackend(ExecutionBackend):
    """One dispatch, no added concurrency — the library's default.

    A native (sync or async) batch entry point counts as the one
    dispatch; otherwise prompts run strictly one ``generate`` at a
    time.  Unlike bare :func:`~repro.llm.base.batched_generate` —
    whose ladder happily fans per-prompt ``agenerate`` calls out on an
    event loop — this backend *pins* capacity to 1, which is what makes
    it the honest baseline the E16 benchmark compares against.
    """

    name = "serial"
    capacity = 1

    def __init__(self, timeout: Optional[float] = None) -> None:
        super().__init__()
        self.timeout = _check_timeout(timeout)

    def run(
        self, model: LanguageModel, prompts: Sequence[str]
    ) -> List[GenerationResult]:
        with self._track(len(prompts)):
            if _has_native_batch(model):
                return batched_generate(model, prompts, timeout=self.timeout)
            return sequential_generate(model, prompts, timeout=self.timeout)


class ThreadedBackend(ExecutionBackend):
    """A thread pool of concurrent ``generate`` calls.

    A native batch entry point still takes precedence (re-slicing the
    same compute across threads cannot beat it, and for padded
    transformer batches would regress); the pool engages exactly when
    the model exposes only per-prompt calls, and is clamped to the
    batch size so small batches stop spawning idle threads.
    """

    def __init__(
        self,
        max_workers: int = DEFAULT_THREAD_WORKERS,
        timeout: Optional[float] = None,
    ) -> None:
        if max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        super().__init__()
        self.max_workers = max_workers
        self.name = f"threaded:{max_workers}"
        self.capacity = max_workers
        self.timeout = _check_timeout(timeout)

    def run(
        self, model: LanguageModel, prompts: Sequence[str]
    ) -> List[GenerationResult]:
        with self._track(len(prompts)):
            if _has_native_batch(model):
                return batched_generate(
                    model, prompts, max_workers=self.max_workers, timeout=self.timeout
                )
            return pooled_generate(
                model, prompts, self.max_workers, timeout=self.timeout
            )


class AsyncioBackend(ExecutionBackend):
    """Event-loop execution of the model's async contract.

    Runs :func:`repro.llm.base.abatched_generate` (async-first dispatch:
    native async batch, then sync batch off-loop, then an ``agenerate``
    task group) with at most ``max_inflight`` calls in flight —
    ``None`` applies the library's
    :data:`~repro.llm.base.DEFAULT_MAX_INFLIGHT` safety cap rather
    than unbounded fan-out.  A model exposing only sync ``generate``
    still gets its concurrency: the bound doubles as the thread-pool
    width, so ``asyncio:8`` never silently degrades to a sequential
    loop.  Synchronous callers get a private event loop per batch via
    :func:`repro.llm.base.run_coroutine`; async callers should use
    :meth:`arun`, which awaits on *their* loop.
    """

    def __init__(
        self,
        max_inflight: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be >= 1 (or None for the default cap), "
                f"got {max_inflight}"
            )
        super().__init__()
        self.max_inflight = max_inflight
        self.name = "asyncio" if max_inflight is None else f"asyncio:{max_inflight}"
        self.capacity = max_inflight
        self.timeout = _check_timeout(timeout)

    def _workers(self) -> int:
        return self.max_inflight or DEFAULT_THREAD_WORKERS

    def run(
        self, model: LanguageModel, prompts: Sequence[str]
    ) -> List[GenerationResult]:
        with self._track(len(prompts)):
            return list(
                run_coroutine(
                    abatched_generate(
                        model,
                        prompts,
                        max_workers=self._workers(),
                        max_inflight=self.max_inflight,
                        timeout=self.timeout,
                    )
                )
            )

    async def arun(
        self, model: LanguageModel, prompts: Sequence[str]
    ) -> List[GenerationResult]:
        with self._track(len(prompts)):
            return await abatched_generate(
                model,
                prompts,
                max_workers=self._workers(),
                max_inflight=self.max_inflight,
                timeout=self.timeout,
            )


def make_backend(
    spec: Optional[str],
    batch_workers: Optional[int] = None,
    timeout: Optional[float] = None,
) -> ExecutionBackend:
    """Build a backend from a spec string.

    Specs: ``serial``, ``threaded``, ``threaded:N``, ``asyncio``,
    ``asyncio:N``.  ``None`` resolves to the historical default —
    :class:`ThreadedBackend` when ``batch_workers`` is set (the PR 1
    ``--workers`` behavior), else :class:`SerialBackend`.  ``timeout``
    is the per-call deadline applied to whichever backend results.
    """
    if spec is None:
        if batch_workers is not None and batch_workers > 1:
            return ThreadedBackend(batch_workers, timeout=timeout)
        return SerialBackend(timeout=timeout)
    head, sep, tail = spec.strip().partition(":")
    count: Optional[int] = None
    if sep and not tail:
        raise ConfigError(f"invalid backend spec {spec!r}: empty count after ':'")
    if tail:
        try:
            count = int(tail)
        except ValueError:
            raise ConfigError(f"invalid backend spec {spec!r}: {tail!r} is not an int")
    if head == "serial":
        if tail:
            raise ConfigError(f"backend 'serial' takes no count, got {spec!r}")
        return SerialBackend(timeout=timeout)
    if head == "threaded":
        return ThreadedBackend(
            count if count is not None else (batch_workers or DEFAULT_THREAD_WORKERS),
            timeout=timeout,
        )
    if head == "asyncio":
        return AsyncioBackend(max_inflight=count, timeout=timeout)
    raise ConfigError(
        f"unknown backend {spec!r} (expected serial, threaded[:N] or asyncio[:N])"
    )
