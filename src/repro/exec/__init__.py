"""Execution layer: pluggable backends for running LLM call batches.

See :mod:`repro.exec.backend` for the strategy catalogue; the
evaluator (:class:`repro.core.evaluate.ContextEvaluator`) submits every
batch through one of these, so explanation algorithms stay oblivious to
how calls are executed.
"""

from .backend import (
    DEFAULT_THREAD_WORKERS,
    AsyncioBackend,
    BackendStats,
    ExecutionBackend,
    SerialBackend,
    ThreadedBackend,
    make_backend,
)
from .coalesce import CoalescingBackend, WindowStats

__all__ = [
    "DEFAULT_THREAD_WORKERS",
    "AsyncioBackend",
    "BackendStats",
    "CoalescingBackend",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadedBackend",
    "WindowStats",
    "make_backend",
]
