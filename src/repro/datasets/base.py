"""Shared structure for the demo use-case datasets.

Each of the paper's three demonstration use cases ships as a
:class:`UseCase`: a corpus of knowledge sources, the canonical question,
the knowledge-base facts the simulated LLM "was trained on", and the
expected behaviour (context order and full-context answer) that
EXPERIMENTS.md records against the paper's narrative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import DatasetError
from ..llm.knowledge import KnowledgeBase
from ..retrieval.document import Corpus


@dataclass
class UseCase:
    """One fully-specified demonstration scenario.

    Attributes
    ----------
    name:
        Registry key ("big_three", "us_open", "player_of_the_year").
    description:
        One-line summary for reports and the CLI.
    corpus:
        The knowledge sources available to retrieval.
    query:
        The canonical question posed in the paper's narrative.
    knowledge:
        Parametric facts for the simulated LLM (including deliberately
        stale/wrong ones — see each dataset's module docstring).
    k:
        Retrieval depth: how many sources form the context ``Dq``.
    expected_context:
        Document ids in the expected retrieval order, or ``None`` when
        the paper's narrative does not depend on a specific order.
    expected_answer:
        The paper's full-context answer.
    notes:
        Free-form provenance notes.
    """

    name: str
    description: str
    corpus: Corpus
    query: str
    knowledge: KnowledgeBase
    k: int
    expected_context: Optional[List[str]]
    expected_answer: str
    notes: str = ""
    extras: Dict[str, str] = field(default_factory=dict)


_REGISTRY: Dict[str, "UseCaseBuilder"] = {}


class UseCaseBuilder:
    """Callable registered under a dataset name."""

    def __init__(self, name: str, builder) -> None:
        self.name = name
        self._builder = builder

    def __call__(self) -> UseCase:
        return self._builder()


def register_use_case(name: str):
    """Decorator: register a zero-argument builder under ``name``."""

    def decorate(builder):
        _REGISTRY[name] = UseCaseBuilder(name, builder)
        return builder

    return decorate


def load_use_case(name: str) -> UseCase:
    """Build the named use case.

    Raises
    ------
    DatasetError
        For unknown names (the message lists what is available).
    """
    try:
        return _REGISTRY[name]()
    except KeyError:
        available = ", ".join(sorted(_REGISTRY))
        raise DatasetError(f"unknown use case {name!r}; available: {available}") from None


def available_use_cases() -> List[str]:
    """Sorted registry keys."""
    return sorted(_REGISTRY)
