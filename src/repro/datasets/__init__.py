"""Demo datasets (the paper's three use cases) and synthetic generators."""

from . import tennis, timeline, us_open  # noqa: F401  (register use cases)
from .base import UseCase, available_use_cases, load_use_case, register_use_case
from .synthetic import (
    SuperlativeWorld,
    TimelineWorld,
    make_superlative_world,
    make_timeline_world,
    random_corpus,
)
from .timeline import DJOKOVIC_YEARS, WINNERS

__all__ = [
    "UseCase",
    "available_use_cases",
    "load_use_case",
    "register_use_case",
    "SuperlativeWorld",
    "TimelineWorld",
    "make_superlative_world",
    "make_timeline_world",
    "random_corpus",
    "DJOKOVIC_YEARS",
    "WINNERS",
]
