"""Use Case 3 — Timelines: ATP Player of the Year, 2010–2019.

Paper narrative (Section III-D): ten documents, one per year, recording
the Player of the Year — Rafael Nadal (2010, 2013, 2017, 2019), Novak
Djokovic (2011, 2012, 2014, 2015, 2018) and Andy Murray (2016).  Asked
how many times Djokovic won between 2010 and 2019, the LLM answers 5
with the full context; the bottom-up combination counterfactual cites
exactly the five Djokovic documents; and permutation insights show a
consistent answer with no positional rules ("the LLM consistently
comprehends the entire timeline ... regardless of the specific order").

The simulated LLM's COUNT rule is order-insensitive by design, so the
stability is a property being *demonstrated*, not an accident.  The
knowledge base deliberately misremembers the count as 4, making the
empty-context answer wrong — which is what gives the bottom-up
counterfactual its five-document citation set.
"""

from __future__ import annotations

from ..llm.intents import QuestionIntent
from ..llm.knowledge import KnowledgeBase
from ..retrieval.document import Corpus, Document
from .base import UseCase, register_use_case

QUERY = (
    "How many times did Novak Djokovic win the ATP Player of the Year "
    "award between 2010 and 2019?"
)

WINNERS = {
    2010: "Rafael Nadal",
    2011: "Novak Djokovic",
    2012: "Novak Djokovic",
    2013: "Rafael Nadal",
    2014: "Novak Djokovic",
    2015: "Novak Djokovic",
    2016: "Andy Murray",
    2017: "Rafael Nadal",
    2018: "Novak Djokovic",
    2019: "Rafael Nadal",
}

#: The years the correct answer counts (used by tests and benchmarks).
DJOKOVIC_YEARS = tuple(sorted(year for year, who in WINNERS.items() if who == "Novak Djokovic"))

_TEMPLATE = (
    "The {year} ATP Player of the Year award was won by {winner} after a "
    "dominant season on the professional tennis tour."
)


def _documents():
    return [
        Document(
            doc_id=f"potya-{year}",
            title=f"Player of the Year {year}",
            text=_TEMPLATE.format(year=year, winner=winner),
            metadata={"year": str(year), "winner": winner},
        )
        for year, winner in sorted(WINNERS.items())
    ]


def _knowledge() -> KnowledgeBase:
    kb = KnowledgeBase()
    # Imperfect parametric memory: off by one.  The bottom-up
    # counterfactual must retain sources to flip this 4 to the correct 5.
    kb.add_fact(
        intent=QuestionIntent.COUNT,
        topic="novak djokovic atp player year award",
        answer="4",
        confidence=0.8,
    )
    return kb


@register_use_case("player_of_the_year")
def build() -> UseCase:
    """Build the Use Case 3 dataset."""
    return UseCase(
        name="player_of_the_year",
        description="Timeline counting question (Use Case 3)",
        corpus=Corpus(_documents()),
        query=QUERY,
        knowledge=_knowledge(),
        k=10,
        expected_context=None,  # the narrative does not fix an order
        expected_answer="5",
        notes=(
            "Counterfactual targets: bottom-up citation = the five Djokovic "
            "documents; permutation insights stable at 5 with no rules "
            "(paper Section III-D)."
        ),
    )
