"""Use Case 1 — Ambiguous Answers: the Big Three of tennis.

Paper narrative (Section III-B): the user asks which of Novak Djokovic,
Roger Federer and Rafael Nadal is the best, over documents ranking the
three by different metrics.  With the full retrieved context the LLM
answers "Roger Federer"; combination insights reveal the match-wins
document (which ranks Federer first "at 369") appears in every
combination yielding that answer; and moving that document from the
first to the second context position flips the answer to
"Novak Djokovic".

The corpus is authored so the BM25 retrieval order puts the match-wins
document first (it is the only source using the question's word "best")
and so the simulated LLM's positional voting reproduces each beat of
the narrative; the integration tests assert all of them.
"""

from __future__ import annotations

from ..llm.intents import QuestionIntent
from ..llm.knowledge import KnowledgeBase
from ..retrieval.document import Corpus, Document
from .base import UseCase, register_use_case

QUERY = (
    "Who is the best tennis player among the Big Three of "
    "Novak Djokovic, Roger Federer, and Rafael Nadal?"
)

_DOCUMENTS = [
    Document(
        doc_id="bigthree-1-match-wins",
        title="Grand Slam match wins",
        text=(
            "Roger Federer is widely considered the best tennis player of the "
            "Big Three era. Roger Federer ranks first with 369 Grand Slam match "
            "wins, ahead of Novak Djokovic and Rafael Nadal."
        ),
        metadata={"metric": "grand slam match wins"},
    ),
    Document(
        doc_id="bigthree-2-grand-slams",
        title="Grand Slam titles",
        text=(
            "Novak Djokovic leads the Grand Slam count with 24 major singles "
            "titles, the highest total in tennis among the Big Three. Rafael "
            "Nadal owns 22 titles and Roger Federer owns 20 titles."
        ),
        metadata={"metric": "grand slam titles"},
    ),
    Document(
        doc_id="bigthree-3-weeks-no1",
        title="Weeks at number one",
        text=(
            "Novak Djokovic ranks first with 428 weeks as the top ranked tennis "
            "player in the world. Roger Federer logged 310 weeks and Rafael "
            "Nadal logged 209 weeks at the top of the ranking."
        ),
        metadata={"metric": "weeks at no. 1"},
    ),
    Document(
        doc_id="bigthree-4-head-to-head",
        title="Head-to-head record",
        text=(
            "Rafael Nadal leads the head to head tennis record with 24 match "
            "wins over Roger Federer, holding the edge in their direct rivalry."
        ),
        metadata={"metric": "head-to-head"},
    ),
]


def _knowledge() -> KnowledgeBase:
    kb = KnowledgeBase()
    # The parametric belief: Djokovic recently surpassed the others in
    # Grand Slam wins ("The user expects that Novak Djokovic ... might be
    # the LLM's choice").
    kb.add_fact(
        intent=QuestionIntent.SUPERLATIVE,
        topic=(
            "best tennis player big three novak djokovic roger federer "
            "rafael nadal"
        ),
        answer="Novak Djokovic",
        confidence=1.0,
    )
    return kb


@register_use_case("big_three")
def build() -> UseCase:
    """Build the Use Case 1 dataset."""
    return UseCase(
        name="big_three",
        description="Ambiguous 'best of the Big Three' question (Use Case 1 / Fig. 2)",
        corpus=Corpus(_DOCUMENTS),
        query=QUERY,
        knowledge=_knowledge(),
        k=4,
        expected_context=[
            "bigthree-1-match-wins",
            "bigthree-2-grand-slams",
            "bigthree-3-weeks-no1",
            "bigthree-4-head-to-head",
        ],
        expected_answer="Roger Federer",
        notes=(
            "Counterfactual targets: removing bigthree-1-match-wins flips to "
            "Novak Djokovic; moving it to the second position flips to "
            "Novak Djokovic (paper Section III-B)."
        ),
    )
