"""Seeded synthetic worlds for tests and benchmarks.

Three generators:

* :class:`SuperlativeWorld` — k sources each endorsing one of several
  candidates for a "who is the best X" question.  Position-sensitive by
  construction, so counterfactual searches have non-trivial structure.
  Used by the pruning/ordering benchmarks (E7, E8) and the position-bias
  sweep (E9, E10).
* :class:`TimelineWorld` — year-stamped award sources for COUNT
  questions (scaled-up Use Case 3 analogues).
* :func:`random_corpus` — a vocabulary-controlled random corpus with
  planted relevant documents, for retrieval quality/throughput (E11).

Everything is driven by an explicit ``seed`` so every experiment is
exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..llm.intents import QuestionIntent
from ..llm.knowledge import KnowledgeBase
from ..retrieval.document import Corpus, Document

_TOPICS = [
    "chess grandmaster", "marathon runner", "jazz trumpeter",
    "salsa dancer", "pastry chef", "go player", "sprint cyclist",
    "archer", "debater", "violinist",
]

_FIRST_NAMES = [
    "Alex", "Blake", "Casey", "Devon", "Emery", "Finley", "Gray",
    "Harper", "Indigo", "Jules", "Kendall", "Logan", "Morgan", "Noel",
    "Oakley", "Peyton", "Quinn", "Reese", "Sage", "Tatum",
]

_LAST_NAMES = [
    "Abara", "Bellweather", "Castellan", "Draven", "Ellington",
    "Fairbanks", "Greenwood", "Hollis", "Ingram", "Juneau", "Kessler",
    "Lockhart", "Merriweather", "Northgate", "Ostrander", "Pemberton",
    "Quillfeather", "Rutherford", "Silverton", "Thistlewood",
]

_METRICS = [
    "tournament victories", "ranking points", "season titles",
    "career wins", "perfect scores", "record finishes",
    "championship rounds", "qualifying heats",
]


def _candidate_names(count: int, rng: random.Random) -> List[str]:
    """Distinct two-token capitalized names (extractor-compatible)."""
    if count > len(_FIRST_NAMES) * len(_LAST_NAMES):
        raise ConfigError(f"cannot generate {count} distinct names")
    names: List[str] = []
    seen: set = set()
    while len(names) < count:
        name = f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"
        if name not in seen:
            seen.add(name)
            names.append(name)
    return names


@dataclass
class SuperlativeWorld:
    """A synthetic "who is the best <topic>" scenario.

    Attributes
    ----------
    query:
        The canonical question.
    corpus:
        k sources; source i endorses ``endorsements[i]``.
    knowledge:
        A parametric prior for one candidate.
    endorsements:
        Candidate endorsed by each source, aligned with corpus order.
    candidates:
        All candidate names.
    """

    query: str
    corpus: Corpus
    knowledge: KnowledgeBase
    endorsements: List[str]
    candidates: List[str]
    topic: str


def make_superlative_world(
    num_sources: int,
    num_candidates: int = 3,
    seed: int = 0,
    explicit_fraction: float = 0.25,
) -> SuperlativeWorld:
    """Build a :class:`SuperlativeWorld`.

    ``explicit_fraction`` of sources assert an explicit superlative
    (strong claims); the rest use rank-first metric claims, mirroring
    the mixed evidence of Use Case 1.
    """
    if num_sources <= 0:
        raise ConfigError("num_sources must be positive")
    if num_candidates < 2:
        raise ConfigError("need at least two candidates")
    rng = random.Random(seed)
    topic = rng.choice(_TOPICS)
    candidates = _candidate_names(num_candidates, rng)
    documents: List[Document] = []
    endorsements: List[str] = []
    for i in range(num_sources):
        champion = candidates[rng.randrange(num_candidates)]
        metric = rng.choice(_METRICS)
        value = rng.randint(10, 500)
        if rng.random() < explicit_fraction:
            text = (
                f"{champion} is widely considered the best {topic} of this "
                f"generation. {champion} ranks first with {value} {metric}."
            )
        else:
            text = (
                f"By {metric}, {champion} leads the {topic} field with "
                f"{value} {metric} recorded across the season."
            )
        documents.append(
            Document(doc_id=f"synth-{seed}-{i:03d}", title=f"Source {i}", text=text)
        )
        endorsements.append(champion)
    knowledge = KnowledgeBase()
    knowledge.add_fact(
        intent=QuestionIntent.SUPERLATIVE,
        topic=f"best {topic}",
        answer=candidates[0],
        confidence=0.8,
    )
    return SuperlativeWorld(
        query=f"Who is the best {topic} in the world?",
        corpus=Corpus(documents),
        knowledge=knowledge,
        endorsements=endorsements,
        candidates=candidates,
        topic=topic,
    )


@dataclass
class TimelineWorld:
    """A synthetic year-per-source counting scenario."""

    query: str
    corpus: Corpus
    knowledge: KnowledgeBase
    subject: str
    subject_years: Tuple[int, ...]
    year_range: Tuple[int, int]


def make_timeline_world(
    num_years: int,
    seed: int = 0,
    start_year: int = 2000,
    num_candidates: int = 3,
) -> TimelineWorld:
    """Build a :class:`TimelineWorld` covering ``num_years`` seasons."""
    if num_years <= 0:
        raise ConfigError("num_years must be positive")
    rng = random.Random(seed)
    topic = rng.choice(_TOPICS)
    candidates = _candidate_names(num_candidates, rng)
    subject = candidates[0]
    documents: List[Document] = []
    subject_years: List[int] = []
    for offset in range(num_years):
        year = start_year + offset
        winner = candidates[rng.randrange(num_candidates)]
        if winner == subject:
            subject_years.append(year)
        documents.append(
            Document(
                doc_id=f"timeline-{seed}-{year}",
                title=f"{topic} {year}",
                text=(
                    f"The {year} {topic} of the year award was won by {winner} "
                    f"after a standout season of competition."
                ),
            )
        )
    end_year = start_year + num_years - 1
    knowledge = KnowledgeBase()
    knowledge.add_fact(
        intent=QuestionIntent.COUNT,
        topic=f"{subject} {topic} year award",
        answer=str(max(0, len(subject_years) - 1)),  # off-by-one memory
        confidence=0.8,
    )
    return TimelineWorld(
        query=(
            f"How many times did {subject} win the {topic} of the year award "
            f"between {start_year} and {end_year}?"
        ),
        corpus=Corpus(documents),
        knowledge=knowledge,
        subject=subject,
        subject_years=tuple(subject_years),
        year_range=(start_year, end_year),
    )


def random_corpus(
    num_docs: int,
    seed: int = 0,
    vocab_size: int = 500,
    doc_length: int = 40,
    num_relevant: int = 0,
    query_terms: Optional[Sequence[str]] = None,
) -> Tuple[Corpus, List[str]]:
    """Random-word corpus with ``num_relevant`` planted relevant docs.

    Relevant documents have the query terms injected at random offsets;
    returns the corpus and the planted doc ids (retrieval should rank
    them on top — benchmark E11 measures precision).
    """
    if num_docs <= 0:
        raise ConfigError("num_docs must be positive")
    if num_relevant > num_docs:
        raise ConfigError("num_relevant cannot exceed num_docs")
    rng = random.Random(seed)
    vocabulary = [f"word{index:04d}" for index in range(vocab_size)]
    injected = list(query_terms or ("needle", "haystack", "signal"))
    relevant_ids: List[str] = []
    documents: List[Document] = []
    for i in range(num_docs):
        words = [rng.choice(vocabulary) for _ in range(doc_length)]
        doc_id = f"rand-{seed}-{i:05d}"
        if i < num_relevant:
            for term in injected:
                words.insert(rng.randrange(len(words) + 1), term)
            relevant_ids.append(doc_id)
        documents.append(Document(doc_id=doc_id, text=" ".join(words)))
    return Corpus(documents), relevant_ids
