"""Use Case 2 — Inconsistent Sources: US Open women's champions.

Paper narrative (Section III-C): the user asks for the most recent US
Open women's champion over five similar documents, one per year.  With
the full context the answer is "Coco Gauff" (the 2023 champion, stated
by the *last* context document).  Permutation insights reveal the LLM
"incorrectly identifies the 2022 champion 'Iga Swiatek' whenever the
last document is moved towards the middle of the sequence" — out-of-date
sources win when the up-to-date one lands in a low-attention position.

The five documents share one template (equal analyzed lengths, equal
BM25 scores), so the deterministic doc-id tie-break yields the
chronological context order with the 2023 document last, matching the
paper's setup.
"""

from __future__ import annotations

from ..llm.intents import QuestionIntent
from ..llm.knowledge import KnowledgeBase
from ..retrieval.document import Corpus, Document
from .base import UseCase, register_use_case

QUERY = "Who is the most recent winner of the US Open women's singles championship?"

_CHAMPIONS = [
    (2019, "Bianca Andreescu", "Serena Williams"),
    (2020, "Naomi Osaka", "Victoria Azarenka"),
    (2021, "Emma Raducanu", "Leylah Fernandez"),
    (2022, "Iga Swiatek", "Ons Jabeur"),
    (2023, "Coco Gauff", "Aryna Sabalenka"),
]

_TEMPLATE = (
    "The {year} US Open women's singles championship was won by {winner}, "
    "who defeated {runner_up} in the final match of the tournament."
)


def _documents():
    return [
        Document(
            doc_id=f"usopen-{year}",
            title=f"US Open {year}",
            text=_TEMPLATE.format(year=year, winner=winner, runner_up=runner_up),
            metadata={"year": str(year)},
        )
        for year, winner, runner_up in _CHAMPIONS
    ]


def _knowledge() -> KnowledgeBase:
    kb = KnowledgeBase()
    # Stale parametric memory: a training cutoff before the 2022 and 2023
    # tournaments.  Only consulted when the context is empty.
    kb.add_fact(
        intent=QuestionIntent.MOST_RECENT,
        topic="most recent winner us open women singles championship",
        answer="Emma Raducanu",
        confidence=0.9,
    )
    return kb


@register_use_case("us_open")
def build() -> UseCase:
    """Build the Use Case 2 dataset."""
    return UseCase(
        name="us_open",
        description="Inconsistent-sources US Open question (Use Case 2)",
        corpus=Corpus(_documents()),
        query=QUERY,
        knowledge=_knowledge(),
        k=5,
        expected_context=[f"usopen-{year}" for year, _, _ in _CHAMPIONS],
        expected_answer="Coco Gauff",
        notes=(
            "Counterfactual target: permutations placing usopen-2023 in the "
            "middle of the context flip the answer to Iga Swiatek "
            "(paper Section III-C)."
        ),
        extras={"incorrect_answer": "Iga Swiatek"},
    )
