"""Multi-tenant HTTP serving layer: ask/explain as a web service.

The paper demos RAGE as an interactive web service — users pose a
question, read the answer, then request explanations against the cached
context.  :class:`RageServer` is that service over the library's own
stack, stdlib-only:

* **One engine, N sessions** — every tenant gets its own
  :class:`~repro.app.session.RageSession` (its posed question, context
  and answer are per-tenant state) over one shared
  :class:`~repro.core.engine.Rage`, so all tenants share one prompt
  cache, one :class:`~repro.llm.store.PromptStore` and one
  :class:`~repro.exec.ExecutionBackend` — a question any tenant already
  paid for answers warm for every other tenant.
* **Per-tenant admission** — each tenant owns a
  :class:`~repro.llm.transport.TokenBucket`; a request whose slot is
  not immediately available is answered ``429`` with a ``Retry-After``
  header (the same delta-seconds contract the client-side transport
  honors) and its reservation is *refunded* so rejected traffic never
  consumes capacity.
* **Threaded service** — ``http.server.ThreadingHTTPServer`` handles
  each request on its own thread; sessions serialize their own state
  (atomic :meth:`~repro.app.session.RageSession.pose`), the cache and
  store tolerate concurrent readers/writers, and the shared backend
  tracks how often request threads actually overlap.

Endpoints (all JSON)
--------------------
``POST /ask``
    ``{"tenant": t, "query": q?, "k": n?}`` — retrieve + answer (poses
    the session); ``query`` defaults to the server's canonical question
    and ``k`` overrides the retrieval depth for this request.  The body
    carries the ranked per-source retrieval scores alongside the
    answer, so clients see why each source made the context.
``POST /explain``
    ``{"tenant": t, "sample_size": n?}`` — the full explanation report
    for the tenant's posed question, byte-identical to what the
    in-process engine produces (see :func:`report_payload`).
``GET /metrics``
    Usage/traffic counters: per-tenant admission, retrieval-index
    statistics (backend, mode, collection counts; for the persistent
    SQLite index also its incremental-indexing counters and on-disk
    size), prompt-cache and disk-store stats, execution-backend stats,
    and — for remote models
    — :class:`~repro.llm.remote.RemoteLLM` usage plus
    :class:`~repro.llm.transport.TransportStats`; behind a
    :class:`~repro.llm.router.RouterLLM`, per-provider breaker state,
    trips, hedges and attributed cost.
``GET /healthz``
    Readiness, not just liveness: ``ok`` (200) all providers healthy,
    ``degraded`` (200 + detail) some provider's breaker open,
    ``unhealthy`` (503) no provider available, ``draining`` (503)
    shutdown in progress.

Shutdown is a *graceful drain*: :meth:`RageServer.close` (and the CLI's
SIGTERM/Ctrl-C path) first stops admitting new POSTs — they answer
``503`` with ``Retry-After`` — then waits up to ``drain_window``
seconds for in-flight handlers to finish before stopping the listener
and persisting store counters.

Every payload encoder is a module-level function on purpose: tests and
clients can render the *same* JSON from an in-process session and
assert the server's bytes equal it exactly.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.context import Context
from ..core.counterfactual import CombinationSearchResult
from ..core.engine import Rage, RageConfig, RageReport, build_model_chain
from ..core.insights import CombinationInsights, PermutationInsights
from ..core.permutation_cf import PermutationSearchResult
from ..datasets.base import UseCase, load_use_case
from ..errors import ConfigError, ValidationError
from ..exec.coalesce import CoalescingBackend
from ..llm.base import LanguageModel
from ..llm.cache import CachingLLM
from ..llm.remote import RemoteLLM
from ..llm.router import RouterLLM
from ..llm.simulated import SimulatedLLM
from ..llm.transport import TokenBucket
from .session import RageSession

#: Admission burst when a rate is configured without one.
DEFAULT_ADMIT_BURST = 4

#: Journal retention: the most recent requests kept for observability.
#: Lifetime totals live in counters, so bounding the journal loses
#: detail, never accounting — and a long-running server stays O(1).
DEFAULT_JOURNAL_LIMIT = 10_000

#: How long /metrics may serve a cached store (entries, bytes) before
#: re-walking the disk.  Scrapers poll /metrics; a full readdir+stat
#: sweep per scrape would compete with live request handling.
STORE_USAGE_TTL = 15.0

#: How long :meth:`RageServer.close` waits for in-flight handlers to
#: finish once admission has stopped.  Bounded: a hung handler must not
#: wedge shutdown forever.
DEFAULT_DRAIN_WINDOW = 5.0


# -- payload encoders ------------------------------------------------------
#
# Canonical JSON for every response body: sorted keys, compact
# separators, UTF-8.  The encoders are pure functions over engine
# objects so "server response == in-process result" is a *bytes*
# comparison, not a fuzzy one.


def encode_json(payload: Mapping[str, object]) -> bytes:
    """The server's canonical JSON bytes for a payload."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def retrieval_payload(context: Context) -> List[Dict]:
    """Per-source retrieval scores, in rank order.

    Rides inside the ``/ask`` and ``/explain`` bodies so clients see
    *why* each source made the context ``Dq`` — the ranked scores the
    retrieval layer (BM25, dense cosine, or their fusion) assigned.
    """
    return [
        {
            "doc_id": source.document.doc_id,
            "rank": rank,
            "score": source.retrieval_score,
        }
        for rank, source in enumerate(context.sources, start=1)
    ]


def ask_payload(tenant: str, query: str, context: Context, answer: str) -> Dict:
    """The ``POST /ask`` response body."""
    return {
        "tenant": tenant,
        "query": query,
        "context": list(context.doc_ids()),
        "retrieval": retrieval_payload(context),
        "answer": answer,
    }


def _combination_insights_payload(insights: CombinationInsights) -> Dict:
    return {
        "total": insights.total,
        "num_evaluations": insights.num_evaluations,
        "pie": [
            {"answer": s.answer, "count": s.count, "fraction": s.fraction}
            for s in insights.pie()
        ],
        "rules": [
            {
                "answer": rule.answer,
                "required_sources": list(rule.required_sources),
                "excluded_sources": list(rule.excluded_sources),
            }
            for rule in insights.rules
        ],
    }


def _permutation_insights_payload(insights: PermutationInsights) -> Dict:
    return {
        "total": insights.total,
        "num_evaluations": insights.num_evaluations,
        "pie": [
            {"answer": s.answer, "count": s.count, "fraction": s.fraction}
            for s in insights.pie()
        ],
        "rules": [
            {
                "answer": rule.answer,
                "fixed_positions": [
                    {"position": position, "doc_id": doc_id}
                    for position, doc_id in rule.fixed_positions
                ],
            }
            for rule in insights.rules
        ],
    }


def _combination_cf_payload(result: CombinationSearchResult) -> Dict:
    payload: Dict[str, object] = {
        "direction": result.direction.value,
        "baseline_answer": result.baseline_answer,
        "target_answer": result.target_answer,
        "num_evaluations": result.num_evaluations,
        "budget_exhausted": result.budget_exhausted,
        "found": result.found,
        "counterfactual": None,
    }
    if result.counterfactual is not None:
        cf = result.counterfactual
        payload["counterfactual"] = {
            "changed_sources": list(cf.changed_sources),
            "new_answer": cf.new_answer,
            "size": cf.size,
            "estimated_relevance": cf.estimated_relevance,
        }
    return payload


def _permutation_cf_payload(result: Optional[PermutationSearchResult]) -> Optional[Dict]:
    if result is None:
        return None
    payload: Dict[str, object] = {
        "baseline_answer": result.baseline_answer,
        "target_answer": result.target_answer,
        "num_evaluations": result.num_evaluations,
        "budget_exhausted": result.budget_exhausted,
        "found": result.found,
        "counterfactual": None,
    }
    if result.counterfactual is not None:
        cf = result.counterfactual
        payload["counterfactual"] = {
            "order": list(cf.perturbation.order),
            "tau": cf.tau,
            "moved_sources": list(cf.moved_sources),
            "new_answer": cf.new_answer,
        }
    return payload


def report_payload(report: RageReport) -> Dict:
    """JSON form of a :class:`~repro.core.engine.RageReport`.

    This is the ``POST /explain`` body *and* the reference encoding
    tests compare against: an in-process ``session.report()`` run
    through this function must produce byte-identical JSON to the
    served response.
    """
    return {
        "query": report.query,
        "answer": report.answer,
        "context": list(report.context.doc_ids()),
        "retrieval": retrieval_payload(report.context),
        "combination_insights": _combination_insights_payload(
            report.combination_insights
        ),
        "permutation_insights": (
            _permutation_insights_payload(report.permutation_insights)
            if report.permutation_insights is not None
            else None
        ),
        "top_down": _combination_cf_payload(report.top_down),
        "bottom_up": _combination_cf_payload(report.bottom_up),
        "permutation_counterfactual": _permutation_cf_payload(
            report.permutation_counterfactual
        ),
        "optimal": [
            {"rank": opt.rank, "order": list(opt.order), "score": opt.score}
            for opt in report.optimal
        ],
        "stability": (
            {
                "stable_fraction": report.stability.stable_fraction,
                "flip_tau": report.stability.flip_tau,
                "num_permutations": report.stability.num_permutations,
            }
            if report.stability is not None
            else None
        ),
        "llm_calls": report.llm_calls,
        "plan": (
            {
                "requested": report.plan_stats.requested,
                "dispatched": report.plan_stats.dispatched,
                "implied": report.plan_stats.implied,
                "pruned": report.plan_stats.pruned,
            }
            if report.plan_stats is not None
            else None
        ),
        "implied": report.implied,
        "pruned": report.pruned,
    }


# -- the server ------------------------------------------------------------


@dataclass
class Tenant:
    """One tenant's session, admission bucket and counters."""

    name: str
    session: RageSession
    bucket: Optional[TokenBucket]
    admitted: int = 0
    rejected: int = 0


@dataclass
class ServedRequest:
    """One journal line: what was asked and how it was answered."""

    method: str
    path: str
    tenant: Optional[str]
    status: int
    time: float  # monotonic


class _Handler(BaseHTTPRequestHandler):
    # Quiet: serving tests must not spray access logs into pytest output.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    @property
    def _server(self) -> "RageServer":
        return self.server.rage_server  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        srv = self._server
        try:
            if self.path == "/healthz":
                payload = srv.health_payload()
                # Readiness contract: ok/degraded still serve traffic
                # (200); unhealthy/draining tell load balancers to back
                # off (503).  GETs stay readable during a drain so
                # operators can watch it finish.
                status = 200 if payload["status"] in ("ok", "degraded") else 503
                self._respond(status, payload, tenant=None)
            elif self.path == "/metrics":
                self._respond(200, srv.metrics_payload(), tenant=None)
            else:
                self._respond(
                    404, {"error": f"unknown path {self.path}"}, tenant=None
                )
        except Exception as error:  # noqa: BLE001 - same contract as POST:
            # a failing metrics render is a 500 body, not a dead socket.
            self._respond(
                500,
                {"error": f"{type(error).__name__}: {error}"},
                tenant=None,
            )

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        srv = self._server
        if self.path not in ("/ask", "/explain"):
            self._respond(
                404, {"error": f"unknown path {self.path}"}, tenant=None
            )
            return
        if not srv.begin_request():
            # Draining: admission is closed.  Retry-After advertises the
            # drain window — by then either the server is gone or (drain
            # aborted) admitting again.
            self._respond(
                503,
                {"error": "server is draining", "retry_after": srv.drain_window},
                tenant=None,
                retry_after=srv.drain_window,
            )
            return
        try:
            self._do_post(srv)
        finally:
            srv.end_request()

    def _do_post(self, srv: "RageServer") -> None:
        try:
            body = self._read_json()
        except ValueError as error:
            self._respond(400, {"error": str(error)}, tenant=None)
            return
        raw_tenant = body.get("tenant")
        if not isinstance(raw_tenant, str) or not raw_tenant:
            self._respond(
                400, {"error": "body must name a tenant"}, tenant=None
            )
            return
        tenant = srv.tenant(raw_tenant)
        if tenant is None:
            self._respond(
                404, {"error": f"unknown tenant {raw_tenant!r}"}, tenant=raw_tenant
            )
            return
        admitted, wait = srv.admit(tenant)
        # The journal stamp is the admission decision's, not the
        # response's: the window-bound checks measure what the bucket
        # admitted, and an expensive /explain must not let admissions
        # spread over several windows look bunched into one.
        stamp = time.monotonic()
        if not admitted:
            self._respond(
                429,
                {"error": "rate limited", "tenant": tenant.name, "retry_after": wait},
                tenant=tenant.name,
                retry_after=wait,
                stamp=stamp,
            )
            return
        try:
            if self.path == "/ask":
                payload = srv.handle_ask(tenant, body)
            else:
                payload = srv.handle_explain(tenant, body)
        except (ConfigError, ValueError) as error:
            self._respond(
                400, {"error": str(error)}, tenant=tenant.name, stamp=stamp
            )
        except Exception as error:  # noqa: BLE001 - a crashing model must
            # become a 500 JSON body (and a journal entry), never a
            # dropped socket and a handler-thread traceback.
            self._respond(
                500,
                {"error": f"{type(error).__name__}: {error}"},
                tenant=tenant.name,
                stamp=stamp,
            )
        else:
            self._respond(200, payload, tenant=tenant.name, stamp=stamp)

    # -- plumbing ----------------------------------------------------------

    def _read_json(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ValidationError("request body is not valid JSON")
        if not isinstance(payload, dict):
            raise ValidationError("request body must be a JSON object")
        return payload

    def _respond(
        self,
        status: int,
        payload: Mapping[str, object],
        tenant: Optional[str],
        retry_after: Optional[float] = None,
        stamp: Optional[float] = None,
    ) -> None:
        data = encode_json(payload)
        # Journal before the bytes hit the wire: once a client has read
        # its response, the journal provably contains the entry (tests
        # and operators race the handler thread otherwise).  ``stamp``
        # carries the admission-decision time for tenant-facing POSTs;
        # GETs and routing errors stamp at response time.
        self._server._journal_append(
            ServedRequest(
                method=self.command,
                path=self.path,
                tenant=tenant,
                status=status,
                time=stamp if stamp is not None else time.monotonic(),
            )
        )
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            if retry_after is not None:
                # Delta-seconds, ceiled: a client sleeping the advertised
                # integer is guaranteed a free slot (RFC 7231 allows no
                # fractional delta).
                self.send_header("Retry-After", str(max(1, math.ceil(retry_after))))
            self.end_headers()
            self.wfile.write(data)
        except OSError:
            # Client gave up mid-response (broken pipe, connection
            # reset); the journal entry already landed, and a dead
            # socket must not traceback out of the handler thread.
            pass


class RageServer:
    """The multi-tenant ask/explain HTTP service (see module docstring).

    Use as a context manager::

        with RageServer.for_use_case("big_three", tenants=["a", "b"]) as srv:
            requests.post(srv.base_url + "/ask", json={"tenant": "a"})

    Parameters
    ----------
    rage:
        The shared engine (one prompt cache, store and backend for all
        tenants).
    tenants:
        Tenant names; each gets a private :class:`RageSession` and —
        with ``admit_rate`` set — a private admission bucket.
    admit_rate / admit_burst:
        Per-tenant token-bucket admission (requests/second and burst).
        ``None`` rate = no admission control.  Exhaustion answers
        ``429`` + ``Retry-After`` and refunds the reservation.
    default_query:
        Query used by ``POST /ask`` bodies that omit one (the use
        case's canonical question when built via :meth:`for_use_case`).
    host / port:
        Bind address; port 0 picks an ephemeral port.
    journal_limit:
        How many recent requests the observability journal retains
        (lifetime totals are counters and never truncate).
    drain_window:
        Upper bound, in seconds, on how long :meth:`close` waits for
        in-flight requests after admission stops.
    """

    def __init__(
        self,
        rage: Rage,
        tenants: Sequence[str],
        admit_rate: Optional[float] = None,
        admit_burst: Optional[int] = None,
        default_query: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        journal_limit: int = DEFAULT_JOURNAL_LIMIT,
        drain_window: float = DEFAULT_DRAIN_WINDOW,
    ) -> None:
        if not tenants:
            raise ConfigError("a server needs at least one tenant")
        if len(set(tenants)) != len(tenants):
            raise ConfigError(f"duplicate tenant names in {list(tenants)!r}")
        if admit_burst is not None and admit_rate is None:
            raise ConfigError("admit_burst without admit_rate has no effect")
        self.rage = rage
        self.default_query = default_query
        self.admit_rate = admit_rate
        # Resolve the effective burst exactly once: the buckets and the
        # /metrics advertisement must never disagree.
        self.admit_burst = (
            (admit_burst if admit_burst is not None else DEFAULT_ADMIT_BURST)
            if admit_rate is not None
            else None
        )
        self._tenants: Dict[str, Tenant] = {
            name: Tenant(
                name=name,
                session=RageSession(rage),
                bucket=(
                    TokenBucket(admit_rate, burst=self.admit_burst)
                    if admit_rate is not None
                    else None
                ),
            )
            for name in tenants
        }
        if journal_limit < 1:
            raise ConfigError(f"journal_limit must be >= 1, got {journal_limit}")
        if drain_window <= 0:
            raise ConfigError(f"drain_window must be > 0, got {drain_window}")
        self.drain_window = drain_window
        self._host = host
        self._port = port
        self._lock = threading.Lock()
        # Drain state: handlers register in-flight work via
        # begin_request/end_request; close() flips ``_draining`` (new
        # POSTs answer 503) and waits on ``_idle`` until the in-flight
        # count hits zero or the window expires.
        self._draining = False
        self._inflight = 0
        self._idle = threading.Condition(self._lock)
        # Bounded: the journal keeps the most recent requests for tests
        # and operators; lifetime totals live in the counters below so
        # a long-running server never grows without bound.
        self.journal: Deque[ServedRequest] = deque(maxlen=journal_limit)
        self._requests_total = 0
        self._store_usage_cache: Optional[Tuple[float, Tuple[int, int]]] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = time.monotonic()

    @classmethod
    def for_use_case(
        cls,
        name_or_case: "str | UseCase",
        tenants: Sequence[str],
        config: Optional[RageConfig] = None,
        llm: Optional[LanguageModel] = None,
        **kwargs,
    ) -> "RageServer":
        """Serve one of the built-in demo datasets.

        Mirrors :meth:`RageSession.for_use_case`: the deterministic
        simulated model is the default unless the config names a remote
        spec; the case's canonical query becomes the ``/ask`` default.
        """
        case = (
            load_use_case(name_or_case)
            if isinstance(name_or_case, str)
            else name_or_case
        )
        config = config or RageConfig(k=case.k)
        if llm is None and config.providers is not None:
            # A pool's simulated fallback member must know this use
            # case's facts; build the chain here with them in hand.
            llm = build_model_chain(config, knowledge=case.knowledge)
        elif llm is None and config.model is None:
            llm = SimulatedLLM(knowledge=case.knowledge)
        rage = Rage.from_corpus(case.corpus, llm, config=config)
        kwargs.setdefault("default_query", case.query)
        return cls(rage, tenants, **kwargs)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "RageServer":
        """Bind and serve on a daemon thread; returns ``self``."""
        assert self._httpd is None, "server already started"
        httpd = ThreadingHTTPServer((self._host, self._port), _Handler)
        httpd.daemon_threads = True
        httpd.rage_server = self  # handlers reach back through the server
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="rage-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def join(self, timeout: Optional[float] = None) -> None:
        """Block the calling thread while the server runs (CLI mode).

        Returns when the serving thread stops (:meth:`close`) or the
        timeout elapses; a ``KeyboardInterrupt`` propagates to the
        caller, which is how ``rage serve`` shuts down on Ctrl-C.
        """
        assert self._thread is not None, "server not started"
        self._thread.join(timeout)

    def close(self) -> None:
        """Gracefully drain, stop serving, and flush store counters.

        Ordering matters: admission stops *first* (new POSTs answer
        503), in-flight handlers get up to ``drain_window`` seconds to
        finish, and only then does the listener stop and the store meta
        hit disk — so counters persisted at shutdown include every
        request a client saw complete.
        """
        if self._httpd is not None:
            self.drain(self.drain_window)
            self._httpd.shutdown()
            if self._thread is not None:
                self._thread.join(timeout=5.0)
                self._httpd.server_close()
            self._httpd = None
            self._thread = None
        if self.rage.store is not None:
            self.rage.store.persist_stats()

    def drain(self, window: Optional[float] = None) -> bool:
        """Stop admitting POSTs and wait for in-flight work to finish.

        Returns ``True`` when the server went idle within ``window``
        seconds (default: the configured ``drain_window``), ``False``
        if the bound expired with handlers still running — shutdown
        proceeds regardless; the bound exists so a hung model can't
        wedge it.
        """
        bound = window if window is not None else self.drain_window
        deadline = time.monotonic() + bound
        # ``_idle`` shares ``_lock``, so holding the lock is holding the
        # condition; wait() releases it while parked.
        with self._lock:
            self._draining = True
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(timeout=remaining)
            return True

    def begin_request(self) -> bool:
        """Register an in-flight POST; ``False`` once draining."""
        with self._lock:
            if self._draining:
                return False
            self._inflight += 1
            return True

    def end_request(self) -> None:
        """Unregister an in-flight POST; wakes a waiting :meth:`drain`."""
        with self._lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()

    def __enter__(self) -> "RageServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def base_url(self) -> str:
        """``http://host:port`` once started."""
        assert self._httpd is not None, "server not started"
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    # -- request handling (called from handler threads) --------------------

    def tenant(self, name: str) -> Optional[Tenant]:
        """The named tenant, or ``None``."""
        return self._tenants.get(name)

    def tenant_names(self) -> List[str]:
        """Configured tenant names, sorted."""
        return sorted(self._tenants)

    def admit(self, tenant: Tenant) -> Tuple[bool, float]:
        """Per-tenant admission decision: ``(admitted, retry_after)``.

        Uses the bucket's non-queueing :meth:`TokenBucket.try_acquire`,
        so a rejected request's reservation is refunded — the 429 path
        consumes no capacity (the reservation-leak bugfix this server
        flushed out).
        """
        if tenant.bucket is None:
            with self._lock:
                tenant.admitted += 1
            return True, 0.0
        admitted, wait = tenant.bucket.try_acquire()
        with self._lock:
            if admitted:
                tenant.admitted += 1
            else:
                tenant.rejected += 1
        return admitted, wait

    def handle_ask(self, tenant: Tenant, body: Mapping[str, object]) -> Dict:
        """Pose (or re-pose) the tenant's question; the /ask body."""
        query = body.get("query", self.default_query)
        if not isinstance(query, str) or not query:
            raise ConfigError(
                "no query: pass one in the body or configure a default"
            )
        k = body.get("k")
        if k is not None and (
            isinstance(k, bool) or not isinstance(k, int) or k < 1
        ):
            raise ConfigError(f"k must be a positive integer, got {k!r}")
        # Answer from *this* pose's committed triple, not a fresh
        # state() read: under concurrent asks on one tenant the session
        # may already hold a later request's state, and this response
        # must describe the question its own client sent.
        posed_query, context, answer = tenant.session.pose_state(query, k=k)
        return ask_payload(tenant.name, posed_query, context, answer)

    def handle_explain(self, tenant: Tenant, body: Mapping[str, object]) -> Dict:
        """Full explanation report for the tenant's posed question."""
        sample_size = body.get("sample_size")
        if sample_size is not None and (
            isinstance(sample_size, bool) or not isinstance(sample_size, int)
        ):
            raise ConfigError(
                f"sample_size must be an integer, got {sample_size!r}"
            )
        report = tenant.session.report(sample_size=sample_size)
        return report_payload(report)

    # -- observability -----------------------------------------------------

    def _router(self) -> Optional[RouterLLM]:
        """The engine's router, unwrapped from the cache, or ``None``."""
        llm = self.rage.llm
        inner = llm.inner if isinstance(llm, CachingLLM) else llm
        return inner if isinstance(inner, RouterLLM) else None

    def health_payload(self) -> Dict:
        """The ``GET /healthz`` body — readiness, not just liveness.

        ``status`` is one of ``ok`` / ``degraded`` (some provider's
        breaker open, detail says which) / ``unhealthy`` (no provider
        available) / ``draining`` (shutdown in progress).  The handler
        maps the last two to 503.
        """
        with self._lock:
            draining = self._draining
        payload: Dict[str, object] = {
            "status": "ok",
            "tenants": len(self._tenants),
            "uptime_seconds": round(time.monotonic() - self._started, 3),
        }
        router = self._router()
        if router is not None:
            providers = [
                {
                    "name": stats["name"],
                    "state": stats["state"],
                    "available": stats["available"],
                }
                for stats in router.provider_stats()
            ]
            payload["providers"] = providers
            open_names = [
                p["name"] for p in providers if p["state"] != "closed"
            ]
            if not any(p["available"] for p in providers):
                payload["status"] = "unhealthy"
                payload["detail"] = "no provider available"
            elif open_names:
                payload["status"] = "degraded"
                payload["detail"] = (
                    f"breaker open for {', '.join(open_names)}"
                )
        if draining:
            payload["status"] = "draining"
            payload["detail"] = "shutting down; not admitting requests"
        return payload

    def metrics_payload(self) -> Dict:
        """The ``GET /metrics`` body (schema is part of the API)."""
        llm = self.rage.llm
        cache = llm if isinstance(llm, CachingLLM) else None
        inner = cache.inner if cache is not None else llm
        store = self.rage.store
        backend = self.rage.backend
        with self._lock:
            admission = {
                tenant.name: {
                    "admitted": tenant.admitted,
                    "rejected": tenant.rejected,
                    "rate": self.admit_rate,
                    "burst": self.admit_burst,
                }
                for tenant in self._tenants.values()
            }
            requests_served = self._requests_total
        payload: Dict[str, object] = {
            "server": {
                "tenants": self.tenant_names(),
                "requests": requests_served,
                "uptime_seconds": round(time.monotonic() - self._started, 3),
            },
            "admission": admission,
            "backend": {
                "name": backend.name,
                "capacity": backend.capacity,
                "batches": backend.stats.batches,
                "prompts": backend.stats.prompts,
                "max_active": backend.stats.max_active,
            },
            "cache": (
                {
                    "hits": cache.stats.hits,
                    "misses": cache.stats.misses,
                    "disk_hits": cache.stats.disk_hits,
                    "hit_rate": cache.stats.hit_rate,
                }
                if cache is not None
                else None
            ),
            "coalescing": {
                "single_flight": (
                    {
                        "enabled": True,
                        "inflight_keys": cache.flights.inflight(),
                        "flights": cache.flights.stats.flights,
                        "waiters_served": cache.flights.stats.coalesced,
                        "failures": cache.flights.stats.failures,
                    }
                    if cache is not None and cache.flights is not None
                    else {"enabled": False}
                ),
                "window": (
                    {
                        "enabled": True,
                        "window_ms": backend.window_ms,
                        "submissions": backend.window_stats.submissions,
                        "windows_flushed": backend.window_stats.windows,
                        "merged_windows": backend.window_stats.merged_windows,
                        "mean_flush_size": backend.window_stats.mean_flush_size,
                        "max_flush": backend.window_stats.max_flush,
                        "refunded": backend.window_stats.refunded,
                    }
                    if isinstance(backend, CoalescingBackend)
                    else {"enabled": False}
                ),
            },
            "retrieval": self._retrieval_metrics(),
            "store": None,
            "remote": None,
            "router": None,
        }
        if store is not None:
            entries, nbytes = self._store_usage(store)
            payload["store"] = {
                "root": str(store.root),
                "entries": entries,
                "bytes": nbytes,
                "hits": store.stats.hits,
                "misses": store.stats.misses,
                "writes": store.stats.writes,
                "evictions": store.stats.evictions,
                "corrupt": store.stats.corrupt,
                "write_errors": store.stats.write_errors,
            }
        if isinstance(inner, RemoteLLM):
            transport = inner.client.stats
            payload["remote"] = {
                "model": inner.name,
                "usage": {
                    "calls": inner.usage.calls,
                    "prompt_tokens": inner.usage.prompt_tokens,
                    "completion_tokens": inner.usage.completion_tokens,
                    "total_tokens": inner.usage.total_tokens,
                },
                "transport": {
                    "requests": transport.requests,
                    "retries": transport.retries,
                    "throttle_waits": transport.throttle_waits,
                    "backoff_seconds": transport.backoff_seconds,
                },
                "cost": inner.usage_cost(),
            }
        if isinstance(inner, RouterLLM):
            payload["router"] = {
                "providers": inner.provider_stats(),
                "requests": inner.stats.requests,
                "failovers": inner.stats.failovers,
                "hedges_fired": inner.stats.hedges_fired,
                "hedges_won": inner.stats.hedges_won,
                "exhausted": inner.stats.exhausted,
                "cost": inner.usage_cost(),
            }
        return payload

    def _retrieval_metrics(self) -> Dict:
        """The ``/metrics`` retrieval block: which index backs the
        engine, its collection statistics, and — for the persistent
        index — the incremental-indexing and search counters."""
        from ..retrieval.sqlindex import SqliteIndex

        index = self.rage.index
        config = self.rage.config
        stats = index.stats
        payload: Dict[str, object] = {
            "backend": "sqlite" if isinstance(index, SqliteIndex) else "memory",
            "mode": config.retrieval_mode,
            "fusion": (
                (config.fusion or "minmax")
                if config.retrieval_mode == "hybrid"
                else None
            ),
            "documents": stats.num_documents,
            "vocabulary": stats.vocabulary_size,
            "total_terms": stats.total_terms,
        }
        if isinstance(index, SqliteIndex):
            with index._lock:
                counters = dict(index.counters)
            payload["path"] = str(index.path)
            payload["bytes"] = index.size_bytes()
            payload["counters"] = counters
        return payload

    def _store_usage(self, store) -> Tuple[int, int]:
        """``store.usage()`` with a short TTL: polled /metrics must not
        re-walk the whole store directory on every scrape."""
        now = time.monotonic()
        with self._lock:
            cached = self._store_usage_cache
            if cached is not None and now - cached[0] < STORE_USAGE_TTL:
                return cached[1]
        usage = store.usage()  # the walk happens outside the lock
        with self._lock:
            self._store_usage_cache = (time.monotonic(), usage)
        return usage

    # -- journal -----------------------------------------------------------

    def _journal_append(self, entry: ServedRequest) -> None:
        with self._lock:
            self.journal.append(entry)
            self._requests_total += 1

    def request_count(self, tenant: Optional[str] = None) -> int:
        """Requests served: the lifetime total, or one tenant's count
        within the (bounded) journal."""
        with self._lock:
            if tenant is None:
                return self._requests_total
            return sum(1 for entry in self.journal if entry.tenant == tenant)

    def statuses(self, tenant: Optional[str] = None) -> List[int]:
        """Status codes served, in order, optionally for one tenant."""
        with self._lock:
            return [
                entry.status
                for entry in self.journal
                if tenant is None or entry.tenant == tenant
            ]

    def max_admitted_per_window(
        self, tenant: str, window: float = 1.0
    ) -> int:
        """Highest count of admitted (2xx) requests for ``tenant`` in
        any sliding ``window`` — what the token-bucket contract bounds
        by ``burst + rate * window``."""
        with self._lock:
            times = sorted(
                entry.time
                for entry in self.journal
                if entry.tenant == tenant and 200 <= entry.status < 300
            )
        best = 0
        lo = 0
        for hi, stamp in enumerate(times):
            while stamp - times[lo] > window:
                lo += 1
            best = max(best, hi - lo + 1)
        return best
