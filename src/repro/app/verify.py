"""One-shot verification of every paper narrative claim.

``rage verify`` replays the three demonstration use cases and checks
each sentence-level claim from Section III of the paper against the
reproduction, printing a PASS/FAIL table.  This is the fastest way to
confirm an installation reproduces the paper (the full evidence lives
in tests/ and benchmarks/).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..core.counterfactual import SearchDirection
from ..core.engine import Rage, RageConfig
from ..core.evaluate import ContextEvaluator
from ..datasets.base import load_use_case
from ..llm.simulated import SimulatedLLM


@dataclass
class Check:
    """One verified claim."""

    use_case: str
    claim: str
    passed: bool
    detail: str = ""


def _engine(case) -> Rage:
    return Rage.from_corpus(
        case.corpus,
        SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(k=case.k, max_evaluations=4000),
    )


def _check(checks: List[Check], use_case: str, claim: str, fn: Callable[[], tuple]):
    try:
        passed, detail = fn()
    except Exception as error:  # noqa: BLE001 - verification must not abort
        passed, detail = False, f"error: {error}"
    checks.append(Check(use_case=use_case, claim=claim, passed=passed, detail=detail))


def verify_use_case_1() -> List[Check]:
    """Section III-B claims."""
    checks: List[Check] = []
    case = load_use_case("big_three")
    rage = _engine(case)
    context = rage.retrieve(case.query)

    _check(
        checks, "UC1", "full-context answer is 'Roger Federer'",
        lambda: (
            rage.ask(case.query, context=context).answer == "Roger Federer",
            rage.ask(case.query, context=context).answer,
        ),
    )
    _check(
        checks, "UC1", "match-wins document ranks first in Dq",
        lambda: (
            context.doc_ids()[0] == "bigthree-1-match-wins",
            " > ".join(context.doc_ids()),
        ),
    )

    def federer_rule():
        insights = rage.combination_insights(case.query, context=context)
        rule = insights.rule_for("Roger Federer")
        ok = rule is not None and rule.required_sources == ("bigthree-1-match-wins",)
        return ok, rule.describe() if rule else "no rule"

    _check(checks, "UC1", "rule: match-wins doc in every Federer combination", federer_rule)

    def top_down():
        result = rage.combination_counterfactual(case.query, context=context)
        ok = (
            result.found
            and result.counterfactual.changed_sources == ("bigthree-1-match-wins",)
            and result.counterfactual.new_answer == "Novak Djokovic"
        )
        return ok, f"{result.num_evaluations} LLM calls"

    _check(checks, "UC1", "removing the first document flips to Djokovic", top_down)

    def permutation():
        result = rage.permutation_counterfactual(case.query, context=context)
        ok = (
            result.found
            and result.counterfactual.perturbation.order.index("bigthree-1-match-wins") == 1
            and result.counterfactual.new_answer == "Novak Djokovic"
        )
        tau = result.counterfactual.tau if result.found else float("nan")
        return ok, f"tau={tau:.3f}"

    _check(checks, "UC1", "moving it to position 2 flips to Djokovic", permutation)
    return checks


def verify_use_case_2() -> List[Check]:
    """Section III-C claims."""
    checks: List[Check] = []
    case = load_use_case("us_open")
    rage = _engine(case)
    context = rage.retrieve(case.query)

    _check(
        checks, "UC2", "full-context answer is 'Coco Gauff'",
        lambda: (
            rage.ask(case.query, context=context).answer == "Coco Gauff",
            rage.ask(case.query, context=context).answer,
        ),
    )
    _check(
        checks, "UC2", "the 2023 document is last in the context",
        lambda: (context.doc_ids()[-1] == "usopen-2023", " > ".join(context.doc_ids())),
    )

    def provenance():
        result = rage.combination_counterfactual(case.query, context=context)
        ok = result.found and "usopen-2023" in result.counterfactual.changed_sources
        return ok, f"removed: {result.counterfactual.changed_sources}" if result.found else "not found"

    _check(checks, "UC2", "the last document is the answer's provenance", provenance)

    def swiatek_flip():
        result = rage.permutation_counterfactual(case.query, context=context)
        ok = result.found and result.counterfactual.new_answer == "Iga Swiatek"
        if ok:
            position = result.counterfactual.perturbation.order.index("usopen-2023")
            ok = 0 < position < context.k - 1
            return ok, f"2023 doc at position {position + 1}"
        return ok, "not found"

    _check(checks, "UC2", "moving the last doc inward yields 'Iga Swiatek'", swiatek_flip)
    return checks


def verify_use_case_3() -> List[Check]:
    """Section III-D claims."""
    checks: List[Check] = []
    case = load_use_case("player_of_the_year")
    rage = _engine(case)
    context = rage.retrieve(case.query)

    _check(
        checks, "UC3", "full-context answer is 5",
        lambda: (
            rage.ask(case.query, context=context).answer == "5",
            rage.ask(case.query, context=context).answer,
        ),
    )

    def citations():
        result = rage.combination_counterfactual(
            case.query, context=context, direction=SearchDirection.BOTTOM_UP
        )
        expected = [
            "potya-2011", "potya-2012", "potya-2014", "potya-2015", "potya-2018"
        ]
        ok = result.found and sorted(result.counterfactual.changed_sources) == expected
        return ok, f"{result.num_evaluations} LLM calls"

    _check(checks, "UC3", "bottom-up counterfactual cites the 5 Djokovic documents", citations)

    def stability():
        insights = rage.permutation_insights(case.query, context=context, sample_size=30)
        ok = insights.is_stable and insights.pie()[0].answer == "5" and not insights.rules
        return ok, f"{insights.total} orders sampled"

    _check(checks, "UC3", "permutation insights: stable answer, no rules", stability)

    def parametric():
        evaluator = ContextEvaluator(rage.llm, context)
        answer = evaluator.empty().answer
        return answer == "4", f"empty-context answer {answer!r}"

    _check(checks, "UC3", "parametric memory alone is wrong (returns 4)", parametric)
    return checks


def verify_all() -> List[Check]:
    """Run every use-case verification."""
    checks: List[Check] = []
    checks.extend(verify_use_case_1())
    checks.extend(verify_use_case_2())
    checks.extend(verify_use_case_3())
    return checks


def render_checks(checks: List[Check]) -> str:
    """PASS/FAIL table for the CLI."""
    lines = []
    width = max(len(check.claim) for check in checks)
    current = None
    for check in checks:
        if check.use_case != current:
            current = check.use_case
            lines.append(f"{current}:")
        status = "PASS" if check.passed else "FAIL"
        detail = f"  [{check.detail}]" if check.detail else ""
        lines.append(f"  [{status}] {check.claim.ljust(width)}{detail}")
    passed = sum(1 for check in checks if check.passed)
    lines.append(f"\n{passed}/{len(checks)} paper claims reproduced")
    return "\n".join(lines)
