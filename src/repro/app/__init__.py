"""Application layer: the ``rage`` CLI and the interactive session."""

from .session import RageSession

__all__ = ["RageSession"]
