"""Application layer: the ``rage`` CLI, the interactive session, and
the multi-tenant HTTP serving layer."""

from .session import RageSession

__all__ = ["RageSession", "RageServer", "report_payload"]


def __getattr__(name: str):
    # Lazy server exports (PEP 562): `import repro.app` must not drag
    # in http.server + the remote/transport chain for CLI commands and
    # sessions that never serve.
    if name in ("RageServer", "report_payload"):
        from . import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
