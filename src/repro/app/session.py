"""Interactive session object — the web-app flow without the web app.

The Dash UI keeps per-user state: the current question, its retrieved
context, and the explanations generated so far.  :class:`RageSession`
models that flow for scripts and the CLI: load a use case (or a custom
corpus), pose a question once, then request explanations against the
cached context without re-retrieving.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

from ..core.context import Context
from ..core.counterfactual import CombinationSearchResult, SearchDirection
from ..core.engine import Rage, RageConfig, RageReport, build_model_chain
from ..core.insights import CombinationInsights, PermutationInsights
from ..core.optimal import OptimalPermutation
from ..core.permutation_cf import PermutationSearchResult
from ..datasets.base import UseCase, load_use_case
from ..errors import ConfigError
from ..llm.base import LanguageModel
from ..llm.simulated import SimulatedLLM


class RageSession:
    """Stateful wrapper over :class:`repro.core.engine.Rage`."""

    def __init__(self, rage: Rage) -> None:
        self.rage = rage
        # (query, context, answer) always change together: every write
        # happens under this lock as one all-or-nothing assignment, and
        # every consumer snapshots under it, so two interleaved pose()
        # calls (concurrent server requests on one session) can never
        # pair one question with another question's context.
        self._lock = threading.Lock()
        self.query: Optional[str] = None
        self.context: Optional[Context] = None
        self.answer: Optional[str] = None

    @classmethod
    def for_use_case(
        cls,
        name_or_case: str | UseCase,
        config: Optional[RageConfig] = None,
        llm: Optional[LanguageModel] = None,
    ) -> "RageSession":
        """Start a session on one of the built-in demo datasets."""
        case = (
            load_use_case(name_or_case)
            if isinstance(name_or_case, str)
            else name_or_case
        )
        config = config or RageConfig(k=case.k)
        if llm is None and config.providers is not None:
            # A provider pool may include a simulated fallback member,
            # which must know this use case's facts — the engine can't
            # guess them, so the chain is built here with the knowledge
            # base in hand.
            llm = build_model_chain(config, knowledge=case.knowledge)
        elif llm is None and config.model is None:
            # No explicit model anywhere: the deterministic simulated
            # LLM is the demo default.  With a remote spec in the
            # config, llm stays None and the engine builds the adapter.
            llm = SimulatedLLM(knowledge=case.knowledge)
        session = cls(Rage.from_corpus(case.corpus, llm, config=config))
        session.pose(case.query)
        return session

    # -- the interaction flow ---------------------------------------------

    def pose(self, query: str) -> str:
        """Pose a question: retrieve the context and answer it.

        The retrieval and the answer are computed *before* any session
        state changes, then committed atomically: a failed ``ask``
        leaves the previous question fully intact (never a new query
        with a stale answer), and concurrent poses each install a
        consistent (query, context, answer) triple — last writer wins
        wholesale.
        """
        return self.pose_state(query)[2]

    def pose_state(
        self, query: str, k: Optional[int] = None
    ) -> Tuple[str, Context, str]:
        """:meth:`pose`, returning *this* pose's committed triple.

        ``k`` overrides the configured retrieval depth for this pose
        only (the HTTP server threads a per-request ``k`` through here).

        Under concurrent poses the session's current :meth:`state` may
        already belong to a later writer by the time this call returns;
        callers answering a specific request (the HTTP server) need the
        triple their own pose produced, not whatever is newest.
        """
        context = self.rage.retrieve(query, k=k)
        result = self.rage.ask(query, context=context)
        with self._lock:
            self.query = query
            self.context = context
            self.answer = result.answer
        return query, context, result.answer

    def state(self) -> Tuple[Optional[str], Optional[Context], Optional[str]]:
        """A consistent ``(query, context, answer)`` snapshot."""
        with self._lock:
            return self.query, self.context, self.answer

    def _require_question(self) -> Tuple[str, Context]:
        """Snapshot the posed (query, context) pair, atomically."""
        with self._lock:
            if self.query is None or self.context is None:
                raise ConfigError("pose a question first (RageSession.pose)")
            return self.query, self.context

    def combination_insights(
        self, sample_size: Optional[int] = None
    ) -> CombinationInsights:
        """Combination insights for the posed question."""
        query, context = self._require_question()
        return self.rage.combination_insights(
            query, context=context, sample_size=sample_size
        )

    def permutation_insights(
        self, sample_size: Optional[int] = None
    ) -> PermutationInsights:
        """Permutation insights for the posed question."""
        query, context = self._require_question()
        return self.rage.permutation_insights(
            query, context=context, sample_size=sample_size
        )

    def combination_counterfactual(
        self,
        direction: SearchDirection | str = SearchDirection.TOP_DOWN,
        target_answer: Optional[str] = None,
    ) -> CombinationSearchResult:
        """Combination counterfactual for the posed question."""
        query, context = self._require_question()
        return self.rage.combination_counterfactual(
            query, context=context, direction=direction, target_answer=target_answer
        )

    def permutation_counterfactual(
        self, target_answer: Optional[str] = None
    ) -> PermutationSearchResult:
        """Permutation counterfactual for the posed question."""
        query, context = self._require_question()
        return self.rage.permutation_counterfactual(
            query, context=context, target_answer=target_answer
        )

    def optimal_permutations(self, s: int = 5) -> List[OptimalPermutation]:
        """Optimal placements for the posed question."""
        query, context = self._require_question()
        return self.rage.optimal_permutations(query, context=context, s=s)

    def report(self, sample_size: Optional[int] = None) -> RageReport:
        """Full explanation bundle for the posed question."""
        query, context = self._require_question()
        return self.rage.explain(query, context=context, sample_size=sample_size)
