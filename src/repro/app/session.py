"""Interactive session object — the web-app flow without the web app.

The Dash UI keeps per-user state: the current question, its retrieved
context, and the explanations generated so far.  :class:`RageSession`
models that flow for scripts and the CLI: load a use case (or a custom
corpus), pose a question once, then request explanations against the
cached context without re-retrieving.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.context import Context
from ..core.counterfactual import CombinationSearchResult, SearchDirection
from ..core.engine import Rage, RageConfig, RageReport
from ..core.insights import CombinationInsights, PermutationInsights
from ..core.optimal import OptimalPermutation
from ..core.permutation_cf import PermutationSearchResult
from ..datasets.base import UseCase, load_use_case
from ..errors import ConfigError
from ..llm.base import LanguageModel
from ..llm.simulated import SimulatedLLM


class RageSession:
    """Stateful wrapper over :class:`repro.core.engine.Rage`."""

    def __init__(self, rage: Rage) -> None:
        self.rage = rage
        self.query: Optional[str] = None
        self.context: Optional[Context] = None
        self.answer: Optional[str] = None

    @classmethod
    def for_use_case(
        cls,
        name_or_case: str | UseCase,
        config: Optional[RageConfig] = None,
        llm: Optional[LanguageModel] = None,
    ) -> "RageSession":
        """Start a session on one of the built-in demo datasets."""
        case = (
            load_use_case(name_or_case)
            if isinstance(name_or_case, str)
            else name_or_case
        )
        config = config or RageConfig(k=case.k)
        if llm is None and config.model is None:
            # No explicit model anywhere: the deterministic simulated
            # LLM is the demo default.  With a remote spec in the
            # config, llm stays None and the engine builds the adapter.
            llm = SimulatedLLM(knowledge=case.knowledge)
        session = cls(Rage.from_corpus(case.corpus, llm, config=config))
        session.pose(case.query)
        return session

    # -- the interaction flow ---------------------------------------------

    def pose(self, query: str) -> str:
        """Pose a question: retrieve the context and answer it."""
        self.query = query
        self.context = self.rage.retrieve(query)
        result = self.rage.ask(query, context=self.context)
        self.answer = result.answer
        return result.answer

    def _require_question(self) -> str:
        if self.query is None or self.context is None:
            raise ConfigError("pose a question first (RageSession.pose)")
        return self.query

    def combination_insights(
        self, sample_size: Optional[int] = None
    ) -> CombinationInsights:
        """Combination insights for the posed question."""
        query = self._require_question()
        return self.rage.combination_insights(
            query, context=self.context, sample_size=sample_size
        )

    def permutation_insights(
        self, sample_size: Optional[int] = None
    ) -> PermutationInsights:
        """Permutation insights for the posed question."""
        query = self._require_question()
        return self.rage.permutation_insights(
            query, context=self.context, sample_size=sample_size
        )

    def combination_counterfactual(
        self,
        direction: SearchDirection | str = SearchDirection.TOP_DOWN,
        target_answer: Optional[str] = None,
    ) -> CombinationSearchResult:
        """Combination counterfactual for the posed question."""
        query = self._require_question()
        return self.rage.combination_counterfactual(
            query, context=self.context, direction=direction, target_answer=target_answer
        )

    def permutation_counterfactual(
        self, target_answer: Optional[str] = None
    ) -> PermutationSearchResult:
        """Permutation counterfactual for the posed question."""
        query = self._require_question()
        return self.rage.permutation_counterfactual(
            query, context=self.context, target_answer=target_answer
        )

    def optimal_permutations(self, s: int = 5) -> List[OptimalPermutation]:
        """Optimal placements for the posed question."""
        query = self._require_question()
        return self.rage.optimal_permutations(query, context=self.context, s=s)

    def report(self, sample_size: Optional[int] = None) -> RageReport:
        """Full explanation bundle for the posed question."""
        query = self._require_question()
        return self.rage.explain(query, context=self.context, sample_size=sample_size)
