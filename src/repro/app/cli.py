"""``rage`` — the command-line face of the reproduction.

Subcommands mirror the demo tool's panels:

    rage ask        --use-case big_three
    rage insights   --use-case big_three --mode combinations
    rage insights   --use-case us_open --mode permutations --sample 40
    rage counterfactual --use-case big_three --direction top_down
    rage counterfactual --use-case us_open --kind permutation
    rage optimal    --use-case big_three -s 5
    rage report     --use-case player_of_the_year --html report.html
    rage list

Each command prints the same artifacts the paper's UI displays (pie
chart, rules, tables, counterfactual sentences) as plain text; ``rage
report --html`` additionally writes the standalone HTML page.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..analysis.cli import add_lint_arguments, run_lint
from ..core.counterfactual import SearchDirection
from ..core.engine import RageConfig
from ..datasets.base import available_use_cases
from ..errors import RageError
from ..viz.ascii import (
    render_combination_counterfactual,
    render_combination_insights,
    render_optimal_permutations,
    render_permutation_counterfactual,
    render_permutation_insights,
)
from ..viz.html import write_report_html
from .session import RageSession


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rage",
        description="Counterfactual explanations for retrieval-augmented LLMs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--use-case",
            default="big_three",
            choices=available_use_cases(),
            help="built-in demo dataset",
        )
        p.add_argument("--query", default=None, help="override the canonical question")
        p.add_argument("--k", type=int, default=None, help="retrieval depth override")
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            help="thread-pool width for batched evaluation on backends "
            "without native batching (I/O-bound models only)",
        )
        p.add_argument(
            "--no-prune",
            action="store_true",
            help="disable answer-implication plan pruning (evaluate every "
            "perturbation with a real LLM call)",
        )
        p.add_argument(
            "--backend",
            default=None,
            metavar="SPEC",
            help="execution backend for evaluation batches: serial, "
            "threaded[:N] (thread pool) or asyncio[:N] (event loop, "
            "at most N calls in flight)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="persistent generation store: content-addressed disk cache "
            "shared across runs (a repeated report answers warm with zero "
            "real LLM calls)",
        )
        p.add_argument(
            "--model",
            default=None,
            metavar="SPEC",
            help="model to explain: 'simulated' (default; the deterministic "
            "demo model) or 'remote:<provider>:<model>' for an HTTP "
            "chat-completions endpoint (providers: openai, anthropic)",
        )
        p.add_argument(
            "--base-url",
            default=None,
            metavar="URL",
            help="remote endpoint root (default: the provider's public API); "
            "point at a local gateway or fake server for hermetic runs",
        )
        p.add_argument(
            "--api-key-env",
            default=None,
            metavar="VAR",
            help="name of the environment variable holding the remote API key "
            "(the key itself never appears on the command line)",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-call deadline: a hung prompt fails that prompt instead "
            "of stalling the batch (also the remote HTTP request timeout)",
        )
        p.add_argument(
            "--rate",
            type=float,
            default=None,
            metavar="RPS",
            help="remote rate limit in requests/second (token bucket shared "
            "across all concurrent calls)",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=None,
            metavar="N",
            help="additional attempts after a retryable remote fault "
            "(429/5xx/timeout/malformed body); default 3",
        )
        p.add_argument(
            "--provider",
            action="append",
            dest="providers",
            default=None,
            metavar="SPEC",
            help="add a provider to a failover pool (repeatable; order is "
            "priority): 'remote:<provider>:<model>[@<base_url>]' or "
            "'fallback:simulated'; mutually exclusive with --model",
        )
        p.add_argument(
            "--hedge",
            action="store_true",
            help="fire a hedged backup request on the next healthy provider "
            "when the primary exceeds the hedge delay (requires --provider)",
        )
        p.add_argument(
            "--hedge-delay",
            type=float,
            default=None,
            metavar="SECONDS",
            help="hedging trigger delay (default: the primary's observed "
            "p95 latency; requires --hedge)",
        )
        p.add_argument(
            "--breaker-threshold",
            type=int,
            default=None,
            metavar="N",
            help="consecutive transport failures before a provider's "
            "circuit breaker opens (default 5; requires --provider)",
        )
        p.add_argument(
            "--no-single-flight",
            action="store_true",
            help="disable single-flight coalescing of concurrent identical "
            "cache misses (restores the every-miss-dispatches path)",
        )
        p.add_argument(
            "--batch-window-ms",
            type=float,
            default=None,
            metavar="MS",
            help="cross-request micro-batch window: hold evaluation batches "
            "up to MS milliseconds and flush them merged as one native "
            "batch (default: off)",
        )
        p.add_argument(
            "--index-dir",
            default=None,
            metavar="DIR",
            help="persistent SQLite retrieval index: the corpus is synced "
            "incrementally (unchanged documents are never re-analyzed) and "
            "a warm restart serves queries without rebuilding",
        )
        p.add_argument(
            "--retrieval-mode",
            choices=("bm25", "dense", "hybrid"),
            default=None,
            help="context ranking: sparse bm25 (default), dense cosine, or "
            "hybrid fusion of both (dense/hybrid require --index-dir)",
        )
        p.add_argument(
            "--fusion",
            choices=("minmax", "rrf"),
            default=None,
            help="hybrid fusion strategy: min-max-normalized linear fusion "
            "or reciprocal-rank fusion (requires --retrieval-mode hybrid)",
        )
        p.add_argument(
            "--hybrid-alpha",
            type=float,
            default=None,
            metavar="A",
            help="sparse-side weight of the hybrid fusion, in [0, 1] "
            "(default 0.5; requires --retrieval-mode hybrid)",
        )

    p_ask = sub.add_parser("ask", help="retrieve a context and answer the question")
    add_common(p_ask)

    p_ins = sub.add_parser("insights", help="combination or permutation insights")
    add_common(p_ins)
    p_ins.add_argument(
        "--mode",
        choices=("combinations", "permutations"),
        default="combinations",
    )
    p_ins.add_argument("--sample", type=int, default=None, help="random sample size s")

    p_cf = sub.add_parser("counterfactual", help="search for a counterfactual")
    add_common(p_cf)
    p_cf.add_argument(
        "--kind", choices=("combination", "permutation"), default="combination"
    )
    p_cf.add_argument(
        "--direction",
        choices=tuple(d.value for d in SearchDirection),
        default=SearchDirection.TOP_DOWN.value,
    )
    p_cf.add_argument("--target", default=None, help="flip to this specific answer")

    p_opt = sub.add_parser("optimal", help="top-s optimal permutations")
    add_common(p_opt)
    p_opt.add_argument("-s", type=int, default=5, help="number of placements")

    p_sal = sub.add_parser(
        "salience", help="per-source influence and order stability"
    )
    add_common(p_sal)
    p_sal.add_argument("--answer", default=None, help="answer to contrast against")
    p_sal.add_argument("--sample", type=int, default=None, help="combination sample size")

    p_agr = sub.add_parser(
        "agreement", help="highlight source agreement and disagreement"
    )
    add_common(p_agr)

    p_rep = sub.add_parser("report", help="full explanation report")
    add_common(p_rep)
    p_rep.add_argument("--sample", type=int, default=None, help="insight sample size")
    p_rep.add_argument("--html", default=None, help="also write an HTML report here")
    p_rep.add_argument(
        "--markdown", default=None, help="also write a Markdown report here"
    )
    p_rep.add_argument(
        "--stats",
        action="store_true",
        help="print LLM-call and prompt-cache statistics after the report",
    )

    p_serve = sub.add_parser(
        "serve", help="serve ask/explain over HTTP for multiple tenants"
    )
    add_common(p_serve)
    p_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: loopback only)",
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port (0 picks an ephemeral port)",
    )
    p_serve.add_argument(
        "--tenants",
        default="default",
        metavar="NAMES",
        help="comma-separated tenant names; each gets a private session "
        "and admission bucket over the shared engine",
    )
    p_serve.add_argument(
        "--admit-rate",
        type=float,
        default=None,
        metavar="RPS",
        help="per-tenant admission rate (requests/second); exhausted "
        "tenants get 429 + Retry-After (default: unlimited)",
    )
    p_serve.add_argument(
        "--admit-burst",
        type=int,
        default=None,
        metavar="N",
        help="per-tenant admission burst (requires --admit-rate)",
    )

    p_index = sub.add_parser(
        "index", help="administer a persistent retrieval index"
    )
    p_index.add_argument(
        "action",
        choices=("build", "add", "update", "stats"),
        help="build: sync a use-case corpus into the index (incremental; "
        "unchanged documents are skipped); add/update: index one document "
        "given --doc-id and --text; stats: document/vocabulary counts and "
        "on-disk size",
    )
    p_index.add_argument(
        "--index-dir",
        required=True,
        metavar="DIR",
        help="the index directory (same value as ask/serve --index-dir)",
    )
    p_index.add_argument(
        "--use-case",
        default="big_three",
        choices=available_use_cases(),
        help="corpus to sync on build",
    )
    p_index.add_argument(
        "--dense",
        action="store_true",
        help="equip a newly created index with dense vectors "
        "(needed later for --retrieval-mode dense/hybrid)",
    )
    p_index.add_argument("--doc-id", default=None, help="document id for add/update")
    p_index.add_argument("--text", default=None, help="document text for add/update")
    p_index.add_argument("--title", default="", help="document title for add/update")

    p_cache = sub.add_parser(
        "cache", help="administer a persistent generation store"
    )
    p_cache.add_argument(
        "action",
        choices=("stats", "clear", "path"),
        help="stats: entries, bytes and lifetime hit rate; "
        "clear: delete every entry; path: print the store directory",
    )
    p_cache.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help="the store directory (same value as report --cache-dir)",
    )

    sub.add_parser("list", help="list the built-in use cases")
    sub.add_parser(
        "verify", help="re-check every paper narrative claim (PASS/FAIL table)"
    )

    p_lint = sub.add_parser(
        "lint",
        help="run the project-native static analysis suite",
    )
    add_lint_arguments(p_lint)
    return parser


def _config_overrides(args: argparse.Namespace, case) -> dict:
    """Translate common CLI flags into :class:`RageConfig` overrides."""
    overrides = dict(k=case.k)
    if args.k is not None:
        overrides["k"] = args.k
    if getattr(args, "workers", None) is not None:
        overrides["batch_workers"] = args.workers
    if getattr(args, "no_prune", False):
        overrides["plan_pruning"] = False
    if getattr(args, "backend", None) is not None:
        overrides["backend"] = args.backend
    if getattr(args, "cache_dir", None) is not None:
        overrides["cache_dir"] = args.cache_dir
    model_spec = getattr(args, "model", None)
    if model_spec is not None and model_spec != "simulated":
        overrides["model"] = model_spec
    if getattr(args, "base_url", None) is not None:
        overrides["base_url"] = args.base_url
    if getattr(args, "api_key_env", None) is not None:
        overrides["api_key_env"] = args.api_key_env
    if getattr(args, "timeout", None) is not None:
        overrides["request_timeout"] = args.timeout
    if getattr(args, "rate", None) is not None:
        overrides["rate_limit"] = args.rate
    if getattr(args, "retries", None) is not None:
        overrides["retries"] = args.retries
    if getattr(args, "providers", None) is not None:
        overrides["providers"] = tuple(args.providers)
    if getattr(args, "hedge", False):
        overrides["hedge"] = True
    if getattr(args, "hedge_delay", None) is not None:
        overrides["hedge_delay"] = args.hedge_delay
    if getattr(args, "breaker_threshold", None) is not None:
        overrides["breaker_threshold"] = args.breaker_threshold
    if getattr(args, "no_single_flight", False):
        overrides["single_flight"] = False
    if getattr(args, "batch_window_ms", None) is not None:
        overrides["batch_window_ms"] = args.batch_window_ms
    if getattr(args, "index_dir", None) is not None:
        overrides["index_dir"] = args.index_dir
    if getattr(args, "retrieval_mode", None) is not None:
        overrides["retrieval_mode"] = args.retrieval_mode
    if getattr(args, "fusion", None) is not None:
        overrides["fusion"] = args.fusion
    if getattr(args, "hybrid_alpha", None) is not None:
        overrides["hybrid_alpha"] = args.hybrid_alpha
    return overrides


def _session(args: argparse.Namespace) -> RageSession:
    from ..datasets.base import load_use_case

    case = load_use_case(args.use_case)
    config = RageConfig(**_config_overrides(args, case))
    session = RageSession.for_use_case(case, config=config)
    if args.query:
        session.pose(args.query)
    return session


def _serve_command(args: argparse.Namespace) -> int:
    """``rage serve``: the multi-tenant ask/explain HTTP service."""
    import signal
    import threading

    from ..datasets.base import load_use_case
    from .server import RageServer

    case = load_use_case(args.use_case)
    config = RageConfig(**_config_overrides(args, case))
    tenants = [name.strip() for name in args.tenants.split(",") if name.strip()]
    server = RageServer.for_use_case(
        case,
        tenants,
        config=config,
        admit_rate=args.admit_rate,
        admit_burst=args.admit_burst,
        default_query=args.query or case.query,
        host=args.host,
        port=args.port,
    )
    server.start()
    # SIGTERM (the supervisor's stop signal) takes the same graceful
    # path as Ctrl-C: raise KeyboardInterrupt in the main thread so the
    # finally-block drains in-flight requests before the socket closes.
    # Signals only deliver to the main thread; tests drive this function
    # from workers, where registration would raise.
    previous_handler = None
    in_main_thread = threading.current_thread() is threading.main_thread()
    if in_main_thread:

        def _on_sigterm(signum, frame):
            raise KeyboardInterrupt

        previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        admission = (
            f"{args.admit_rate}/s burst {server.admit_burst}"
            if args.admit_rate is not None
            else "unlimited"
        )
        print(f"rage serve: {server.base_url}")
        print(f"tenants:    {', '.join(server.tenant_names())} ({admission})")
        print("endpoints:  POST /ask  POST /explain  GET /metrics  GET /healthz")
        sys.stdout.flush()
        server.join()
    except KeyboardInterrupt:
        print("shutting down (draining in-flight requests)")
    finally:
        if in_main_thread:
            signal.signal(signal.SIGTERM, previous_handler)
        server.close()
    return 0


def _index_command(args: argparse.Namespace) -> int:
    """``rage index {build,add,update,stats} --index-dir DIR``."""
    from pathlib import Path

    from ..datasets.base import load_use_case
    from ..retrieval import DB_NAME, Document, open_index

    root = Path(args.index_dir).expanduser()
    if args.action == "stats":
        # Inspection must not create the index it was asked to inspect
        # (a typo'd --index-dir should be flagged, not materialized).
        if not (root / DB_NAME).is_file():
            print(f"error: no index database at {root / DB_NAME}", file=sys.stderr)
            return 2
        with open_index(root) as index:
            stats = index.stats
            dense = "yes" if index.embedder is not None else "no"
            print(f"Index:      {index.path}")
            print(f"Documents:  {stats.num_documents}")
            print(f"Vocabulary: {stats.vocabulary_size}")
            print(f"Terms:      {stats.total_terms}")
            print(f"Dense:      {dense}")
            print(f"Bytes:      {index.size_bytes()}")
        return 0
    if args.action == "build":
        case = load_use_case(args.use_case)
        with open_index(root, dense=args.dense) as index:
            outcome = index.sync(case.corpus, remove_missing=True)
        print(
            f"synced {args.use_case} into {root}: "
            f"{outcome['added']} added, {outcome['updated']} updated, "
            f"{outcome['unchanged']} unchanged, {outcome['removed']} removed"
        )
        return 0
    # add / update index one explicit document.
    if args.doc_id is None or args.text is None:
        print(
            f"error: rage index {args.action} requires --doc-id and --text",
            file=sys.stderr,
        )
        return 2
    doc = Document(doc_id=args.doc_id, text=args.text, title=args.title)
    with open_index(root) as index:
        outcome = index.add(doc) if args.action == "add" else index.update(doc)
    print(f"{doc.doc_id}: {outcome}")
    return 0


def _cache_command(args: argparse.Namespace) -> int:
    """``rage cache {stats,clear,path} --cache-dir DIR``."""
    from pathlib import Path

    from ..llm.store import PromptStore

    root = Path(args.cache_dir).expanduser()
    if args.action == "path":
        print(root)
        return 0
    # Inspection must not create the directory it was asked to inspect
    # (a typo'd --cache-dir should be flagged, not materialized).
    if not root.is_dir():
        print(f"error: no store directory at {root}", file=sys.stderr)
        return 2
    store = PromptStore(root)
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} entries from {store.root}")
        return 0
    meta = store.read_meta()
    lookups = meta.get("hits", 0) + meta.get("misses", 0)
    hit_rate = meta.get("hits", 0) / lookups if lookups else 0.0
    entries, nbytes = store.usage()
    print(f"Store:    {store.root}")
    print(f"Entries:  {entries}")
    print(f"Bytes:    {nbytes}")
    print(
        f"Lifetime: {meta.get('hits', 0)} hits / {meta.get('misses', 0)} misses "
        f"(hit rate {hit_rate:.2f}), {meta.get('writes', 0)} writes, "
        f"{meta.get('evictions', 0)} evictions, "
        f"{meta.get('corrupt', 0)} corrupt entries dropped"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit status."""
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except RageError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        # Filesystem failures (an unwritable --cache-dir, a vanished
        # store) follow the same exit-2 contract as config errors.
        print(f"error: {error}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        for name in available_use_cases():
            print(name)
        return 0

    if args.command == "verify":
        from .verify import render_checks, verify_all

        checks = verify_all()
        print(render_checks(checks))
        return 0 if all(check.passed for check in checks) else 1

    if args.command == "lint":
        return run_lint(args)

    if args.command == "cache":
        return _cache_command(args)

    if args.command == "index":
        return _index_command(args)

    if args.command == "serve":
        return _serve_command(args)

    session = _session(args)
    try:
        return _session_dispatch(args, session)
    finally:
        # Whatever the command, fold this session's disk-store traffic
        # into the lifetime counters `rage cache stats` reports.
        if session.rage.store is not None:
            session.rage.store.persist_stats()


def _session_dispatch(args: argparse.Namespace, session: RageSession) -> int:
    assert session.context is not None

    if args.command == "ask":
        print(f"Question: {session.query}")
        print(f"Context:  {' > '.join(session.context.doc_ids())}")
        print(f"Answer:   {session.answer}")
        return 0

    if args.command == "insights":
        if args.mode == "combinations":
            print(render_combination_insights(session.combination_insights(args.sample)))
        else:
            print(render_permutation_insights(session.permutation_insights(args.sample)))
        return 0

    if args.command == "counterfactual":
        if args.kind == "combination":
            result = session.combination_counterfactual(
                direction=args.direction, target_answer=args.target
            )
            print(render_combination_counterfactual(result))
        else:
            result = session.permutation_counterfactual(target_answer=args.target)
            print(render_permutation_counterfactual(result))
        return 0

    if args.command == "optimal":
        print(render_optimal_permutations(session.optimal_permutations(s=args.s)))
        return 0

    if args.command == "agreement":
        from ..core.agreement import analyze_agreement, render_agreement

        report = analyze_agreement(session.context)
        print(f"Context: {' > '.join(session.context.doc_ids())}")
        print()
        print(render_agreement(report))
        return 0

    if args.command == "salience":
        scores = session.rage.source_salience(
            session.query,
            context=session.context,
            answer=args.answer,
            sample_size=args.sample,
        )
        print(f"Source salience for answer {scores[0].answer!r}:")
        from ..viz.ascii import render_table

        rows = [
            (
                s.doc_id,
                f"{s.present_rate:.2f}",
                f"{s.absent_rate:.2f}",
                f"{s.contrast:+.2f}",
            )
            for s in scores
        ]
        print(render_table(("source", "P(ans|present)", "P(ans|absent)", "contrast"), rows))
        sample = 50 if session.context.k > 5 else None
        stability = session.rage.order_stability(
            session.query, context=session.context, sample_size=sample
        )
        flip = "none found" if stability.flip_tau is None else f"tau={stability.flip_tau:.3f}"
        print(
            f"\nOrder stability: {stability.stable_fraction * 100:.1f}% of "
            f"{stability.num_permutations} orders keep the answer "
            f"(most similar flip: {flip})"
        )
        return 0

    if args.command == "report":
        report = session.report(sample_size=args.sample)
        print(f"Question: {report.query}")
        print(f"Answer:   {report.answer}")
        print()
        print(render_combination_insights(report.combination_insights))
        print()
        if report.permutation_insights is not None:
            print(render_permutation_insights(report.permutation_insights))
            print()
        print(render_combination_counterfactual(report.top_down))
        print(render_combination_counterfactual(report.bottom_up))
        if report.permutation_counterfactual is not None:
            print(render_permutation_counterfactual(report.permutation_counterfactual))
        if report.stability is not None:
            stability = report.stability
            flip = (
                "none found"
                if stability.flip_tau is None
                else f"tau={stability.flip_tau:.3f}"
            )
            print(
                f"\nOrder stability: {stability.stable_fraction * 100:.1f}% of "
                f"{stability.num_permutations} sampled orders keep the answer "
                f"(most similar flip: {flip})"
            )
        if report.optimal:
            print()
            print("Optimal permutations:")
            print(render_optimal_permutations(report.optimal))
        if args.html:
            write_report_html(report, args.html)
            print(f"\nHTML report written to {args.html}")
        if args.markdown:
            from ..viz.markdown import write_report_markdown

            write_report_markdown(report, args.markdown)
            print(f"\nMarkdown report written to {args.markdown}")
        if args.stats:
            from ..llm.cache import CachingLLM

            print(f"\nEvaluation stats: {report.llm_calls} LLM calls")
            print(f"Backend: {session.rage.backend.name}")
            if report.plan_stats is not None:
                stats = report.plan_stats
                print(
                    f"Plan: {stats.requested} requested, "
                    f"{stats.dispatched} dispatched, "
                    f"{stats.implied} implied, {stats.pruned} pruned"
                )
            llm = session.rage.llm
            if isinstance(llm, CachingLLM):
                stats = llm.stats
                print(
                    f"Prompt cache: {stats.hits} hits / {stats.misses} misses "
                    f"(hit rate {stats.hit_rate:.2f}); "
                    f"{stats.batches} batches covering {stats.batched_prompts} "
                    f"prompts, {stats.batched_misses} reached the model"
                )
                if llm.flights is not None:
                    flights = llm.flights.stats
                    print(
                        f"Single-flight: {flights.flights} flights led, "
                        f"{flights.coalesced} waiters served, "
                        f"{flights.failures} failures"
                    )
            from ..exec.coalesce import CoalescingBackend

            backend = session.rage.backend
            if isinstance(backend, CoalescingBackend):
                window = backend.window_stats
                print(
                    f"Batch window ({backend.window_ms:g} ms): "
                    f"{window.windows} windows flushed "
                    f"({window.merged_windows} merged), "
                    f"mean flush size {window.mean_flush_size:.1f}, "
                    f"max {window.max_flush}, {window.refunded} refunded"
                )
            inner = llm.inner if isinstance(llm, CachingLLM) else llm
            from ..llm.remote import RemoteLLM
            from ..llm.router import RouterLLM

            if isinstance(inner, (RemoteLLM, RouterLLM)):
                for line in inner.usage_lines():
                    print(line)
            store = session.rage.store
            if store is not None:
                cold = store.stats.writes
                warm = store.stats.hits
                if warm and cold:
                    run = "mixed"
                elif warm:
                    run = "warm"
                else:
                    run = "cold"
                entries, nbytes = store.usage()
                print(
                    f"Disk store ({run} run): {store.stats.hits} hits served "
                    f"from {store.root}, {cold} entries written; "
                    f"{entries} entries, {nbytes} bytes on disk"
                )
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
