"""Perturbation evaluation: one place where prompts meet the LLM.

Every explanation algorithm reduces to "render this ordered subset of
sources into a prompt, ask the LLM, normalize the answer".  The
:class:`ContextEvaluator` centralizes that step, counts LLM calls (the
unit the pruning benchmarks measure), and memoizes by ordered id tuple
so re-visited perturbations are free.

:meth:`ContextEvaluator.evaluate_many` is the batched entry point: it
deduplicates the requested orderings, consults the memo, and submits
only the misses — as a single batch — through an
:class:`~repro.exec.ExecutionBackend`, so batch execution policy
(native batching, thread pools, asyncio) is decided in one place and
every caller — evaluation plans, lattice probe rounds, candidate
scans, counterfactual searches — inherits it without knowing.
``llm_calls`` counts *misses only*, whichever entry point triggered
them, making it the paper's LLM-call metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..exec import ExecutionBackend, make_backend
from ..llm.base import GenerationResult, LanguageModel
from ..llm.prompts import DEFAULT_PROMPT_BUILDER, PromptBuilder
from ..textproc import normalize_answer
from .context import Context


@dataclass(frozen=True)
class Evaluation:
    """One evaluated perturbation."""

    ordered_doc_ids: Tuple[str, ...]
    answer: str
    normalized_answer: str


class ContextEvaluator:
    """Evaluate orderings of (subsets of) a context against an LLM.

    Parameters
    ----------
    llm:
        The language model (or caching wrapper) to evaluate against.
    context:
        The retrieved context whose perturbations are evaluated.
    prompt_builder:
        Prompt renderer; defaults to the paper's template.
    batch_workers:
        Optional thread-pool width for :meth:`evaluate_many` when the
        model has no native ``generate_batch`` — useful for I/O-bound
        backends (remote APIs), pointless for compute-bound ones.
        Shorthand for ``backend=ThreadedBackend(batch_workers)``;
        ignored when ``backend`` is given explicitly.
    backend:
        The :class:`~repro.exec.ExecutionBackend` every miss batch is
        submitted through; ``None`` resolves the historical default
        (threaded when ``batch_workers`` is set, else serial).
    """

    def __init__(
        self,
        llm: LanguageModel,
        context: Context,
        prompt_builder: Optional[PromptBuilder] = None,
        batch_workers: Optional[int] = None,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        self.llm = llm
        self.context = context
        self.prompt_builder = prompt_builder or DEFAULT_PROMPT_BUILDER
        self.batch_workers = batch_workers
        self.backend = backend if backend is not None else make_backend(
            None, batch_workers=batch_workers
        )
        self._memo: Dict[Tuple[str, ...], Evaluation] = {}
        self._llm_calls = 0

    @property
    def llm_calls(self) -> int:
        """Number of distinct LLM invocations made so far."""
        return self._llm_calls

    @property
    def memo_size(self) -> int:
        """Number of distinct orderings memoized so far."""
        return len(self._memo)

    def is_memoized(self, ordered_doc_ids: Sequence[str]) -> bool:
        """True when evaluating this ordering would be free (memo hit)."""
        return tuple(ordered_doc_ids) in self._memo

    def evaluate(self, ordered_doc_ids: Sequence[str]) -> Evaluation:
        """Answer for the given ordered source ids (memoized)."""
        key = tuple(ordered_doc_ids)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._generate(key)
        return self._memoize(key, result)

    def evaluate_many(
        self, orderings: Sequence[Sequence[str]]
    ) -> List[Evaluation]:
        """Evaluate many orderings, batching the memo misses.

        Duplicate orderings and memo hits cost nothing; the distinct
        misses are rendered into prompts and submitted as one batch
        through the execution backend.  Results align with
        ``orderings`` (one evaluation per entry, in input order), and
        every result is memoized for later single :meth:`evaluate`
        calls.
        """
        keys = [tuple(ordering) for ordering in orderings]
        miss_order: List[Tuple[str, ...]] = []
        seen: set = set()
        for key in keys:
            if key not in self._memo and key not in seen:
                seen.add(key)
                miss_order.append(key)
        if miss_order:
            prompts = [
                self.prompt_builder.build(
                    self.context.query, self.context.texts_for(key)
                )
                for key in miss_order
            ]
            self._llm_calls += len(miss_order)
            results = self.backend.run(self.llm, prompts)
            for key, result in zip(miss_order, results):
                self._memoize(key, result)
        return [self._memo[key] for key in keys]

    def generation(self, ordered_doc_ids: Sequence[str]) -> GenerationResult:
        """Full generation result (fresh call; used for attention traces)."""
        return self._generate(tuple(ordered_doc_ids))

    def prime(
        self, ordered_doc_ids: Sequence[str], result: GenerationResult
    ) -> Evaluation:
        """Memoize an externally produced generation for an ordering.

        Lets a caller that already paid for a full generation (e.g. the
        engine's ``ask``, which needs the attention trace) seed the memo
        so later ``evaluate`` calls on the same ordering are free.
        """
        return self._memoize(tuple(ordered_doc_ids), result)

    def _generate(self, ordered_doc_ids: Tuple[str, ...]) -> GenerationResult:
        texts = self.context.texts_for(ordered_doc_ids)
        prompt = self.prompt_builder.build(self.context.query, texts)
        self._llm_calls += 1
        return self.llm.generate(prompt)

    def _memoize(
        self, key: Tuple[str, ...], result: GenerationResult
    ) -> Evaluation:
        evaluation = Evaluation(
            ordered_doc_ids=key,
            answer=result.answer,
            normalized_answer=normalize_answer(result.answer),
        )
        self._memo[key] = evaluation
        return evaluation

    # -- canonical evaluations -------------------------------------------

    def original(self) -> Evaluation:
        """The unperturbed full-context evaluation."""
        return self.evaluate(self.context.doc_ids())

    def empty(self) -> Evaluation:
        """The empty-context (parametric knowledge only) evaluation."""
        return self.evaluate(())


#: Ceiling for the adaptive chunk policy (see :func:`scan_candidates`).
MAX_ADAPTIVE_BATCH = 64


def scan_candidates(
    evaluator: ContextEvaluator,
    candidates: Iterable[Tuple[Tuple[str, ...], Any]],
    match: Callable[[Any, Evaluation], Optional[Any]],
    max_evaluations: int,
    batch_size: int = 1,
    *,
    lattice: Optional["AnswerLattice"] = None,
    flips: Optional[Callable[[str], bool]] = None,
    near: Optional[Callable[[Evaluation], bool]] = None,
    adaptive: bool = False,
) -> Tuple[Optional[Any], int, bool]:
    """Budgeted, batched, in-order scan over evaluation candidates.

    The shared engine of both sequential counterfactual searches:
    ``candidates`` yields ``(ordering, payload)`` pairs in priority
    order; ``match(payload, evaluation)`` is invoked once per evaluated
    candidate *in candidate order* (record trails there) and the first
    non-``None`` return stops the scan.

    Budget semantics: ``max_evaluations`` bounds *real* LLM calls —
    memo hits are free.  Un-memoized candidates accumulate into chunks
    of ``batch_size`` and are dispatched through
    :meth:`ContextEvaluator.evaluate_many`; ``batch_size=1`` reproduces
    strictly sequential evaluation (memoized candidates additionally
    resolve immediately while nothing fresh is pending, preserving
    exact sequential stopping).  With larger chunks, members evaluated
    after an in-chunk hit are still charged.

    Lattice pruning: with an active
    :class:`~repro.core.lattice.AnswerLattice` and a ``flips``
    predicate over normalized answers, un-memoized combination
    candidates whose known (implied) answer cannot flip are skipped for
    free, and an *implied flip* is never trusted — the candidate is
    evaluated for real (verify-on-hit), so a found counterfactual is
    always backed by a genuine LLM answer and stays exactly minimal
    wherever implication is sound.  Full-context candidates additionally
    feed the lattice's order-stability evidence.

    Adaptive chunking (``adaptive=True``): the chunk grows
    geometrically from ``batch_size`` up to :data:`MAX_ADAPTIVE_BATCH`
    while flushes stay cold, and resets to ``batch_size`` on a
    *near-hit* — a failed implied-flip verification, or any evaluation
    the optional ``near`` predicate flags (e.g. an answer change that
    missed the target) — so batched backends see few large batches far
    from the flip and precise small ones close to it.

    Returns ``(hit, real_llm_calls, budget_exhausted)`` where
    ``budget_exhausted`` is only set when a fresh candidate was left
    unevaluated and nothing pending matched.
    """
    start_calls = evaluator.llm_calls

    def spent() -> int:
        return evaluator.llm_calls - start_calls

    pending: List[Tuple[Tuple[str, ...], Any]] = []
    pending_fresh = 0
    hit: Optional[Any] = None
    budget_exhausted = False
    chunk_size = batch_size
    verifying: set = set()

    def flush() -> Optional[Any]:
        nonlocal pending, pending_fresh, chunk_size
        batch, pending, pending_fresh = pending, [], 0
        if not batch:
            return None
        evaluations = evaluator.evaluate_many([ordering for ordering, _ in batch])
        near_hit = False
        found: Optional[Any] = None
        for (ordering, payload), evaluation in zip(batch, evaluations):
            if lattice is not None:
                lattice.record(ordering, evaluation.answer, evaluation.normalized_answer)
                if ordering in verifying:
                    if flips is not None and flips(evaluation.normalized_answer):
                        lattice.stats.verified += 1
                    else:
                        near_hit = True  # implication promised a flip; it lied
            if found is None:
                found = match(payload, evaluation)
            if near is not None and near(evaluation):
                near_hit = True
        if adaptive:
            chunk_size = (
                batch_size
                if near_hit
                else min(max(chunk_size * 2, batch_size), MAX_ADAPTIVE_BATCH)
            )
        return found

    for ordering, payload in candidates:
        fresh = not evaluator.is_memoized(ordering)
        verify_now = False
        if fresh and lattice is not None and flips is not None:
            mask = lattice.mask_for(ordering)
            entry = lattice.lookup(mask) if mask is not None else None
            if entry is not None:
                if not flips(entry.normalized_answer):
                    # Implied (or lattice-recorded) answer cannot flip:
                    # skip without spending budget.
                    lattice.stats.skipped_candidates += 1
                    continue
                if entry.inferred:
                    verifying.add(tuple(ordering))  # verify-on-hit
                    verify_now = True
        if fresh and spent() + pending_fresh >= max_evaluations:
            hit = flush()
            if hit is None:
                budget_exhausted = True
            break
        pending.append((ordering, payload))
        if fresh:
            pending_fresh += 1
        # Flush when the chunk is full — or for free when everything
        # pending is memoized, preserving exact sequential stopping —
        # or immediately on an implied flip, so verify-on-hit costs the
        # one real call it promises instead of waiting out a grown
        # adaptive chunk.
        if (
            pending_fresh >= chunk_size
            or (not fresh and pending_fresh == 0)
            or verify_now
        ):
            hit = flush()
            if hit is not None:
                break
    else:
        hit = flush()
    return hit, spent(), budget_exhausted
