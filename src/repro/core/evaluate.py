"""Perturbation evaluation: one place where prompts meet the LLM.

Every explanation algorithm reduces to "render this ordered subset of
sources into a prompt, ask the LLM, normalize the answer".  The
:class:`ContextEvaluator` centralizes that step, counts LLM calls (the
unit the pruning benchmarks measure), and memoizes by ordered id tuple
so re-visited perturbations are free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..llm.base import GenerationResult, LanguageModel
from ..llm.prompts import DEFAULT_PROMPT_BUILDER, PromptBuilder
from ..textproc import normalize_answer
from .context import Context


@dataclass(frozen=True)
class Evaluation:
    """One evaluated perturbation."""

    ordered_doc_ids: Tuple[str, ...]
    answer: str
    normalized_answer: str


class ContextEvaluator:
    """Evaluate orderings of (subsets of) a context against an LLM."""

    def __init__(
        self,
        llm: LanguageModel,
        context: Context,
        prompt_builder: Optional[PromptBuilder] = None,
    ) -> None:
        self.llm = llm
        self.context = context
        self.prompt_builder = prompt_builder or DEFAULT_PROMPT_BUILDER
        self._memo: Dict[Tuple[str, ...], Evaluation] = {}
        self._llm_calls = 0

    @property
    def llm_calls(self) -> int:
        """Number of distinct LLM invocations made so far."""
        return self._llm_calls

    def evaluate(self, ordered_doc_ids: Sequence[str]) -> Evaluation:
        """Answer for the given ordered source ids (memoized)."""
        key = tuple(ordered_doc_ids)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._generate(key)
        evaluation = Evaluation(
            ordered_doc_ids=key,
            answer=result.answer,
            normalized_answer=normalize_answer(result.answer),
        )
        self._memo[key] = evaluation
        return evaluation

    def generation(self, ordered_doc_ids: Sequence[str]) -> GenerationResult:
        """Full generation result (fresh call; used for attention traces)."""
        return self._generate(tuple(ordered_doc_ids))

    def _generate(self, ordered_doc_ids: Tuple[str, ...]) -> GenerationResult:
        texts = self.context.texts_for(ordered_doc_ids)
        prompt = self.prompt_builder.build(self.context.query, texts)
        self._llm_calls += 1
        return self.llm.generate(prompt)

    # -- canonical evaluations -------------------------------------------

    def original(self) -> Evaluation:
        """The unperturbed full-context evaluation."""
        return self.evaluate(self.context.doc_ids())

    def empty(self) -> Evaluation:
        """The empty-context (parametric knowledge only) evaluation."""
        return self.evaluate(())
