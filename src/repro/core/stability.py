"""Quantitative salience and stability metrics.

The paper's contribution statement promises both *provenance* and
*salience*: "Our tool deduces provenance and salience for external
knowledge sources used during RAG", and says permutation explanations
"quantify the stability of the LLM's answer with respect to the order
of the context sources".  The rules and counterfactuals are the
qualitative face of those claims; this module provides the quantitative
one:

* :func:`source_salience` — per-source influence on a given answer,
  estimated from the evaluated combinations: the difference between the
  answer's frequency when the source is present and when it is absent
  (a presence/absence contrast in [-1, 1]).
* :func:`answer_entropy` — Shannon entropy of the answer distribution
  over perturbations (0 = one answer everywhere; higher = more
  ambiguous, the Use Case 1 situation).
* :func:`order_stability` — the fraction of evaluated permutations that
  keep the original answer, plus the Kendall tau of the most similar
  flip (1.0-stable contexts have no flip at all).
* :func:`positional_sensitivity` — per-position answer diversity across
  permutations: which context slots matter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..combinatorics.kendall import kendall_tau
from ..errors import ConfigError
from ..textproc import normalize_answer
from .context import CombinationPerturbation, PermutationPerturbation
from .evaluate import ContextEvaluator
from .insights import CombinationInsights, PermutationInsights


@dataclass(frozen=True)
class SalienceScore:
    """Influence of one source on one answer.

    Attributes
    ----------
    doc_id:
        The source.
    answer:
        The (display-form) answer the contrast is computed for.
    present_rate:
        P(answer | source in combination) over the evaluated sample.
    absent_rate:
        P(answer | source not in combination).
    contrast:
        ``present_rate - absent_rate`` in [-1, 1]; large positive values
        mean the source pulls the LLM toward the answer, negative values
        mean it pulls away.
    support:
        (combinations with the source, combinations without it).
    """

    doc_id: str
    answer: str
    present_rate: float
    absent_rate: float
    support: Tuple[int, int]

    @property
    def contrast(self) -> float:
        """The presence/absence influence contrast."""
        return self.present_rate - self.absent_rate


def source_salience(
    insights: CombinationInsights,
    answer: Optional[str] = None,
) -> List[SalienceScore]:
    """Per-source influence contrasts from a combination analysis.

    ``answer`` defaults to the most frequent answer in the analysis.
    Scores are sorted by descending contrast (ties by doc id).
    """
    if insights.total == 0:
        raise ConfigError("insights contain no evaluated combinations")
    pie = insights.pie()
    target_display = answer if answer is not None else pie[0].answer
    target = normalize_answer(target_display)
    if target not in insights.groups:
        raise ConfigError(f"answer {target_display!r} never occurred in the analysis")

    all_doc_ids: List[str] = []
    seen: set = set()
    combos: List[Tuple[CombinationPerturbation, bool]] = []
    for key, group in insights.groups.items():
        hit = key == target
        for perturbation in group:
            combos.append((perturbation, hit))
            for doc_id in perturbation.kept:
                if doc_id not in seen:
                    seen.add(doc_id)
                    all_doc_ids.append(doc_id)

    scores: List[SalienceScore] = []
    for doc_id in all_doc_ids:
        with_hits = with_total = without_hits = without_total = 0
        for perturbation, hit in combos:
            if doc_id in perturbation.kept:
                with_total += 1
                with_hits += hit
            else:
                without_total += 1
                without_hits += hit
        present_rate = with_hits / with_total if with_total else 0.0
        absent_rate = without_hits / without_total if without_total else 0.0
        scores.append(
            SalienceScore(
                doc_id=doc_id,
                answer=target_display,
                present_rate=present_rate,
                absent_rate=absent_rate,
                support=(with_total, without_total),
            )
        )
    scores.sort(key=lambda s: (-s.contrast, s.doc_id))
    return scores


def answer_entropy(insights: CombinationInsights | PermutationInsights) -> float:
    """Shannon entropy (bits) of the answer distribution.

    0.0 means every perturbation produced the same answer; log2(n) means
    n equally likely answers — the quantitative version of "ambiguous
    answers" from Use Case 1.
    """
    total = insights.total
    if total == 0:
        raise ConfigError("insights contain no evaluated perturbations")
    entropy = 0.0
    for group in insights.groups.values():
        p = len(group) / total
        entropy -= p * math.log2(p)
    return entropy


@dataclass(frozen=True)
class OrderStability:
    """Order-stability summary for one context.

    Attributes
    ----------
    stable_fraction:
        Fraction of evaluated permutations preserving the original
        answer (1.0 = fully order-stable, the Use Case 3 situation).
    flip_tau:
        Kendall tau of the most similar evaluated flip, or ``None``
        when no evaluated permutation changed the answer.  High values
        mean even near-original orders flip (fragile); low values mean
        only drastic reorderings flip (robust).
    num_permutations:
        Sample size behind the estimate.
    """

    stable_fraction: float
    flip_tau: Optional[float]
    num_permutations: int

    @property
    def is_stable(self) -> bool:
        """True when no evaluated permutation changed the answer."""
        return self.flip_tau is None


def order_stability(
    evaluator: ContextEvaluator,
    perturbations: Sequence[PermutationPerturbation],
) -> OrderStability:
    """Evaluate permutations (one batch, memo-aware) and summarize
    order stability."""
    if not perturbations:
        raise ConfigError("no permutations supplied")
    context = evaluator.context
    baseline = evaluator.original().normalized_answer
    reference = context.doc_ids()
    stable = 0
    best_flip_tau: Optional[float] = None
    evaluations = evaluator.evaluate_many(
        [perturbation.apply(context) for perturbation in perturbations]
    )
    for perturbation, evaluation in zip(perturbations, evaluations):
        if evaluation.normalized_answer == baseline:
            stable += 1
            continue
        tau = kendall_tau(reference, perturbation.order)
        if best_flip_tau is None or tau > best_flip_tau:
            best_flip_tau = tau
    return OrderStability(
        stable_fraction=stable / len(perturbations),
        flip_tau=best_flip_tau,
        num_permutations=len(perturbations),
    )


def positional_sensitivity(insights: PermutationInsights) -> Dict[int, float]:
    """Per-position answer diversity across the analyzed permutations.

    For each context position p, groups the permutations by the source
    occupying p and measures how much the answer distribution varies
    across those groups (normalized mutual-information-style score in
    [0, 1]; 0 = the occupant of p never matters).
    """
    perms: List[Tuple[PermutationPerturbation, str]] = []
    for key, group in insights.groups.items():
        for perturbation in group:
            perms.append((perturbation, key))
    if not perms:
        raise ConfigError("insights contain no evaluated permutations")
    k = len(perms[0][0].order)
    total = len(perms)

    def entropy(counts: Dict[str, int]) -> float:
        n = sum(counts.values())
        value = 0.0
        for count in counts.values():
            p = count / n
            value -= p * math.log2(p)
        return value

    overall_counts: Dict[str, int] = {}
    for _, answer_key in perms:
        overall_counts[answer_key] = overall_counts.get(answer_key, 0) + 1
    h_answer = entropy(overall_counts)

    sensitivity: Dict[int, float] = {}
    for position in range(k):
        by_occupant: Dict[str, Dict[str, int]] = {}
        for perturbation, answer_key in perms:
            occupant = perturbation.order[position]
            counts = by_occupant.setdefault(occupant, {})
            counts[answer_key] = counts.get(answer_key, 0) + 1
        conditional = sum(
            (sum(counts.values()) / total) * entropy(counts)
            for counts in by_occupant.values()
        )
        mutual_information = max(0.0, h_answer - conditional)
        sensitivity[position] = (
            mutual_information / h_answer if h_answer > 0 else 0.0
        )
    return sensitivity
