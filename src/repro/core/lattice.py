"""Answer-implication lattice: infer perturbation answers without the LLM.

The paper's contribution #2 is "inference pruning strategies to reduce
the space of possible counterfactual explanations".  PR 1's
:class:`~repro.core.plan.EvaluationPlan` made every enumerable
perturbation *cheap to batch*, but still paid one real LLM call per
distinct combination — the full ``2^k`` even when already-evaluated
combinations logically determine most remaining answers.

This module closes that gap with an :class:`AnswerLattice`: a
bitmask-indexed record of every *evaluated* combination of one context
(subsets encoded with the helpers shared with
:func:`repro.combinatorics.combinations.sample_combinations`) that can
*imply* answers for unevaluated combinations via monotone sandwich
bounds:

    A candidate kept-set ``S`` takes answer ``x`` when evaluated
    kept-sets ``A ⊆ S ⊆ B`` both answered ``x`` and no evaluated
    kept-set inside the interval ``[A, B]`` answered anything else.

Confirmed :class:`~repro.core.insights.CombinationRule` intervals
(required sources present, excluded sources absent) are the same
mechanism from the other direction: evaluating a rule interval's bottom
(``kept = required``) and top (``kept = context − excluded``) plants
exactly the sandwich witnesses that unlock every combination between
them.

Soundness
---------
Sandwich implication is *exact* whenever the model's answer is a
monotone function of the evidence set — order-insensitive aggregation
such as the paper's counting questions (Use Case 3), where adding a
source can only add evidence.  Position-weighted voting (superlative
questions under a V-shaped attention prior) is **not** monotone: the
same sources reweighted by a different subset size can flip the vote.
The lattice therefore guards itself instead of trusting the caller:

* **Order-stability gate** — implication stays disabled until at least
  :data:`MIN_ORDER_EVIDENCE` distinct full-context orderings have been
  observed to produce one single answer.  Position-sensitive contexts
  (whose sampled permutations disagree) never activate implication.
* **Empty-set exclusion** — the empty combination answers from
  parametric knowledge, not from context evidence, so it is never used
  as a sandwich witness (it is the one provably non-monotone point even
  for counting models).
* **Interval contradiction check** — a witness pair is rejected when
  any evaluated combination inside its interval produced a different
  answer, and ambiguous candidates (witness pairs for two different
  answers) are never implied.
* **Conflict tracking** — a real evaluation that contradicts a
  committed implication increments ``stats.conflicts``, permanently
  disables further implication for the context, and lets the caller
  (:meth:`EvaluationPlan.execute's <repro.core.plan.EvaluationPlan>`
  probe round) roll every uncommitted implication back.

Callers that know their model is monotone (or are running a benchmark
against one) can pass ``assume_order_insensitive=True`` to skip the
stability gate; the contradiction machinery stays active regardless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..combinatorics.combinations import mask_combination
from ..errors import ConfigError
from .context import Context

#: Distinct full-context orderings that must agree before the
#: order-stability gate opens (identity included).
MIN_ORDER_EVIDENCE = 2


@dataclass(frozen=True)
class LatticeEntry:
    """One known (evaluated or implied) combination answer."""

    mask: int
    answer: str
    normalized_answer: str
    inferred: bool

    @property
    def size(self) -> int:
        """Number of kept sources."""
        return bin(self.mask).count("1")


@dataclass
class LatticeStats:
    """Implication accounting for reports and benchmarks.

    Attributes
    ----------
    recorded:
        Real evaluations recorded.
    implied:
        Implications committed (answers produced without an LLM call).
    verified:
        Implied flips confirmed by a real evaluation (verify-on-hit).
    conflicts:
        Real evaluations that contradicted a committed implication.
    skipped_candidates:
        Search candidates skipped because their implied answer could
        not flip the baseline.
    """

    recorded: int = 0
    implied: int = 0
    verified: int = 0
    conflicts: int = 0
    skipped_candidates: int = 0


class AnswerLattice:
    """Bitmask-indexed answers over one context's combination lattice.

    The lattice only understands *combination-like* orderings: ordered
    doc-id sequences that keep a subset of the context in context order
    (exactly what :class:`~repro.core.context.CombinationPerturbation`
    renders).  Permutations hash to the same kept-set but answer
    differently, so :meth:`mask_for` refuses them and full-context
    orderings instead feed the order-stability gate via
    :meth:`observe_order`.
    """

    def __init__(
        self, context: Context, assume_order_insensitive: bool = False
    ) -> None:
        self.context = context
        self.doc_ids: Tuple[str, ...] = context.doc_ids()
        self.k = len(self.doc_ids)
        self.full_mask = (1 << self.k) - 1
        self.assume_order_insensitive = assume_order_insensitive
        self.stats = LatticeStats()
        self._positions: Dict[str, int] = {
            doc_id: index for index, doc_id in enumerate(self.doc_ids)
        }
        self._recorded: Dict[int, LatticeEntry] = {}
        self._inferred: Dict[int, LatticeEntry] = {}
        self._by_answer: Dict[str, List[int]] = {}
        self._order_answers: set = set()
        self._orders_observed: set = set()
        self._coherent = True
        self._check_consistency = False

    # -- encoding ---------------------------------------------------------

    def encode(self, kept: Sequence[str]) -> int:
        """Bitmask for a kept-set (membership-checked)."""
        mask = 0
        for doc_id in kept:
            position = self._positions.get(doc_id)
            if position is None:
                raise ConfigError(f"{doc_id!r} is not in the context")
            mask |= 1 << position
        return mask

    def decode(self, mask: int) -> Tuple[str, ...]:
        """Kept doc ids for a mask, in context order."""
        return mask_combination(self.doc_ids, mask)

    def mask_for(self, ordering: Sequence[str]) -> Optional[int]:
        """Mask of an ordering, or ``None`` when it is not a
        combination (out-of-context ids, duplicates, or sources not in
        context-relative order)."""
        mask = 0
        last = -1
        for doc_id in ordering:
            position = self._positions.get(doc_id)
            if position is None or position <= last:
                return None
            last = position
            mask |= 1 << position
        return mask

    # -- evidence ---------------------------------------------------------

    def record(self, ordering: Sequence[str], answer: str, normalized: str) -> None:
        """Record a real evaluation (no-op for non-combination orders).

        Full-context orderings — the identity combination included —
        also count as order-stability evidence.  A real answer that
        contradicts a committed implication replaces it, bumps
        ``stats.conflicts`` and permanently disables implication.
        """
        if len(ordering) == self.k:
            self.observe_order(ordering, normalized)
        mask = self.mask_for(ordering)
        if mask is None:
            return
        known = self._recorded.get(mask)
        if known is not None:
            return
        committed = self._inferred.pop(mask, None)
        if committed is not None and committed.normalized_answer != normalized:
            self.stats.conflicts += 1
            self._coherent = False
        elif self._check_consistency and self.inference_active:
            # Once implications have been committed, every real answer
            # doubles as a consistency probe: if the lattice would have
            # implied something else for this mask, the model is not
            # monotone here and every implication is suspect.
            would_imply = self.implied(mask)
            if (
                would_imply is not None
                and would_imply.normalized_answer != normalized
            ):
                self.stats.conflicts += 1
                self._coherent = False
        entry = LatticeEntry(
            mask=mask, answer=answer, normalized_answer=normalized, inferred=False
        )
        self._recorded[mask] = entry
        self._by_answer.setdefault(normalized, []).append(mask)
        self.stats.recorded += 1

    def observe_order(self, ordering: Sequence[str], normalized: str) -> None:
        """Feed one full-context ordering's answer to the stability gate."""
        if len(ordering) != self.k or set(ordering) != set(self.doc_ids):
            return
        self._orders_observed.add(tuple(ordering))
        self._order_answers.add(normalized)

    # -- implication ------------------------------------------------------

    @property
    def coherent(self) -> bool:
        """False once any real evaluation contradicted an implication."""
        return self._coherent

    @property
    def order_sensitive(self) -> Optional[bool]:
        """Observed order sensitivity (``None`` before any evidence)."""
        if not self._order_answers:
            return None
        return len(self._order_answers) > 1

    @property
    def inference_active(self) -> bool:
        """True when the lattice is currently willing to imply answers."""
        if not self._coherent:
            return False
        if self.assume_order_insensitive:
            return True
        return (
            len(self._orders_observed) >= MIN_ORDER_EVIDENCE
            and len(self._order_answers) == 1
        )

    def known(self, mask: int) -> Optional[LatticeEntry]:
        """The recorded or committed entry for a mask, if any.

        Committed implications are only served while the lattice is
        still willing to infer: once a conflict proved the model
        non-monotone (or late order evidence closed the stability
        gate), stale implications stop being consumed — a search must
        not keep free-skipping on answers the lattice has already
        learned to distrust.
        """
        entry = self._recorded.get(mask)
        if entry is not None:
            return entry
        if not self.inference_active:
            return None
        return self._inferred.get(mask)

    def evaluated(self, mask: int) -> bool:
        """True when the mask has a *real* (non-implied) answer."""
        return mask in self._recorded

    def implied(self, mask: int) -> Optional[LatticeEntry]:
        """Sandwich-implied entry for an unevaluated mask, or ``None``.

        Requires an evaluated non-empty subset witness and an evaluated
        superset witness sharing one answer, with no contradicting
        evaluation inside the tightest such interval, and no witness
        pair for any other answer.  Does not commit; see :meth:`lookup`.
        """
        if not self.inference_active:
            return None
        if mask in self._recorded:
            return self._recorded[mask]
        if mask == 0:
            return None
        winner: Optional[str] = None
        witnesses: Optional[Tuple[int, int]] = None
        for normalized, masks in self._by_answer.items():
            low = high = None
            for m in masks:
                if m == mask:
                    continue
                if m and m & mask == m:
                    if low is None or bin(m).count("1") > bin(low).count("1"):
                        low = m
                elif m | mask == m:
                    if high is None or bin(m).count("1") < bin(high).count("1"):
                        high = m
            if low is not None and high is not None:
                if winner is not None:
                    return None  # ambiguous: two answers both sandwich S
                winner = normalized
                witnesses = (low, high)
        if winner is None or witnesses is None:
            return None
        low, high = witnesses
        for m, entry in self._recorded.items():
            if (
                entry.normalized_answer != winner
                and m
                and low & m == low
                and m & high == m
            ):
                return None  # a contradicting evaluation sits inside [low, high]
        # Implication guarantees the *normalized* answer; the display
        # surface is the low witness's (a model whose surface forms vary
        # within one normalized answer would need a real call to know
        # the exact string it would have produced).
        display = self._recorded[low].answer
        return LatticeEntry(
            mask=mask, answer=display, normalized_answer=winner, inferred=True
        )

    def conflicting_recorded_face(self, mask: int, normalized: str) -> bool:
        """True when an evaluated immediate face of ``mask`` (drop one
        member) answered something other than ``normalized``.

        Used by the plan's probe round to spot *suspicious* small
        implications.  A non-monotone model that slipped past the
        stability gate typically betrays itself one step below the
        implied set — one strong source flipping a pair or triple —
        whereas for monotone aggregation a *distant* subset answering
        differently (less evidence, smaller answer) is perfectly
        normal, so only faces are checked.
        """
        bits = mask
        while bits:
            bit = bits & -bits
            bits ^= bit
            face = self._recorded.get(mask & ~bit)
            if (
                face is not None
                and face.mask != 0
                and face.normalized_answer != normalized
            ):
                return True
        return False

    def lookup(self, mask: int, commit: bool = True) -> Optional[LatticeEntry]:
        """Known entry, or a fresh implication (committed by default)."""
        entry = self.known(mask)
        if entry is not None:
            return entry
        entry = self.implied(mask)
        if entry is not None and commit:
            self.commit(entry)
        return entry

    def commit(self, entry: LatticeEntry) -> None:
        """Commit an implied entry so later lookups reuse it.

        The first commit arms record-time consistency checking: from
        here on, real evaluations that disagree with what the lattice
        would imply count as conflicts.
        """
        if entry.mask in self._recorded or entry.mask in self._inferred:
            return
        self._inferred[entry.mask] = entry
        self.stats.implied += 1
        self._check_consistency = True

    def uncommit_inferred(self) -> List[int]:
        """Drop every committed implication (conflict rollback).

        Returns the dropped masks so the caller can evaluate them for
        real; used by the plan's probe round when a probe contradicts.
        """
        dropped = sorted(self._inferred)
        self._inferred.clear()
        return dropped

    # -- group views ------------------------------------------------------

    @property
    def recorded_count(self) -> int:
        """Number of real evaluations recorded."""
        return len(self._recorded)

    @property
    def inferred_count(self) -> int:
        """Number of currently committed implications."""
        return len(self._inferred)

    def answer_groups(self) -> Tuple[Dict[str, List[Tuple[str, ...]]], Dict[str, str]]:
        """Evaluated non-empty kept-sets grouped by normalized answer.

        Returns ``(groups, display_answers)`` in the shape
        :func:`repro.core.insights.derive_combination_rules` consumes;
        the empty combination is excluded (its answer is parametric, not
        combination evidence).
        """
        groups: Dict[str, List[Tuple[str, ...]]] = {}
        display: Dict[str, str] = {}
        for mask in sorted(self._recorded):
            if mask == 0:
                continue
            entry = self._recorded[mask]
            groups.setdefault(entry.normalized_answer, []).append(self.decode(mask))
            display.setdefault(entry.normalized_answer, entry.answer)
        return groups, display
