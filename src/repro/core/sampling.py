"""Perturbation selection for the insight analyses.

    "To obtain a set of combinations, RAGE considers all combinations of
    the retrieved sources Dq, or draws a fixed-size random sample of s
    combinations. ... Users may again choose to analyze all
    permutations, or a fixed-size random sample of s permutations."

Permutation sampling uses Fisher–Yates (O(ks) total) rather than the
naive enumerate-then-sample O(k!) — the paper's efficiency contribution,
benchmarked in E5.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..combinatorics.combinations import all_combinations, sample_combinations
from ..combinatorics.permutations import all_permutations, sample_permutations
from ..errors import ConfigError
from .context import CombinationPerturbation, Context, PermutationPerturbation


def select_combinations(
    context: Context,
    sample_size: Optional[int] = None,
    seed: int = 0,
    include_empty: bool = False,
    include_full: bool = True,
) -> List[CombinationPerturbation]:
    """All combinations, or a uniform random sample of ``sample_size``.

    ``sample_size=None`` enumerates everything (size-major order).
    """
    doc_ids = context.doc_ids()
    if sample_size is None:
        kept_sets = list(all_combinations(doc_ids, include_empty, include_full))
    else:
        if sample_size <= 0:
            raise ConfigError(f"sample_size must be positive, got {sample_size}")
        kept_sets = sample_combinations(
            doc_ids,
            sample_size,
            random.Random(seed),
            include_empty=include_empty,
            include_full=include_full,
        )
    return [CombinationPerturbation(kept=kept) for kept in kept_sets]


def select_permutations(
    context: Context,
    sample_size: Optional[int] = None,
    seed: int = 0,
    include_identity: bool = True,
) -> List[PermutationPerturbation]:
    """All permutations, or ``sample_size`` Fisher–Yates draws.

    Exhaustive selection refuses absurd contexts (k > 8) the same way
    the permutation search does; sampling has no such limit.  With
    ``include_identity=False`` the sampled path always returns exactly
    ``sample_size`` permutations (capped by k! - 1): the identity is
    rejected during the draw, never filtered out afterwards.
    """
    doc_ids = context.doc_ids()
    if sample_size is None:
        if context.k > 8:
            raise ConfigError(
                f"enumerating all {context.k}! permutations is intractable; "
                "pass sample_size"
            )
        orders: List[Tuple[str, ...]] = list(all_permutations(doc_ids))
        if not include_identity:
            orders = [order for order in orders if order != doc_ids]
    else:
        if sample_size <= 0:
            raise ConfigError(f"sample_size must be positive, got {sample_size}")
        # Excluding the identity rejects it *during* the draw: filtering
        # it out afterwards would silently return sample_size - 1
        # permutations whenever the identity happened to be drawn.
        orders = sample_permutations(
            doc_ids,
            sample_size,
            random.Random(seed),
            exclude=() if include_identity else (doc_ids,),
        )
    return [PermutationPerturbation(order=order) for order in orders]
