"""Relative relevance scores ``S(q, d, Dq)`` — the paper's two methods.

    "To estimate the relative relevance of a source d in Dq, the user
    can select from two scoring methods S. In the first method, we
    aggregate the LLM's attention values ... In the second method, we
    sum the relevance scores produced by the retrieval model."

Scores order equal-size combinations in the counterfactual search and
weight sources in the optimal-permutation assignment.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Optional, Protocol

from ..attention.aggregate import aggregate_by_source, normalize_scores
from ..errors import ConfigError
from ..llm.base import LanguageModel
from ..llm.prompts import PromptBuilder
from .context import Context
from .evaluate import ContextEvaluator


class RelevanceMethod(str, Enum):
    """Which signal estimates source relevance."""

    ATTENTION = "attention"
    RETRIEVAL = "retrieval"


class RelevanceScorer(Protocol):
    """Produces per-source relevance estimates for a context."""

    def scores(self, context: Context) -> Dict[str, float]:
        """doc_id -> relative relevance."""
        ...


class RetrievalRelevance:
    """Relevance = the retrieval model's scores (BM25 by default)."""

    def scores(self, context: Context) -> Dict[str, float]:
        return context.retrieval_scores()


class AttentionRelevance:
    """Relevance = LLM attention summed over layers, heads and tokens.

    Runs one full-context generation and aggregates its attention trace
    per source.  Models that expose no attention are a configuration
    error — fall back to :class:`RetrievalRelevance` for those.
    """

    def __init__(
        self,
        llm: LanguageModel,
        prompt_builder: Optional[PromptBuilder] = None,
        normalize: bool = True,
    ) -> None:
        self.llm = llm
        self.prompt_builder = prompt_builder or PromptBuilder()
        self.normalize = normalize

    def scores(self, context: Context) -> Dict[str, float]:
        evaluator = ContextEvaluator(self.llm, context, self.prompt_builder)
        result = evaluator.generation(context.doc_ids())
        if result.attention is None:
            raise ConfigError(
                f"model {self.llm.name!r} exposes no attention; "
                "use RelevanceMethod.RETRIEVAL"
            )
        scores = aggregate_by_source(result.attention, context.doc_ids())
        return normalize_scores(scores) if self.normalize else scores


def make_scorer(
    method: RelevanceMethod | str,
    llm: Optional[LanguageModel] = None,
    prompt_builder: Optional[PromptBuilder] = None,
) -> RelevanceScorer:
    """Factory for the paper's two scoring methods."""
    method = RelevanceMethod(method)
    if method is RelevanceMethod.RETRIEVAL:
        return RetrievalRelevance()
    if llm is None:
        raise ConfigError("attention-based relevance needs the LLM")
    return AttentionRelevance(llm, prompt_builder)
