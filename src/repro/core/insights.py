"""Combination and permutation insights: distribution, table, rules.

The analyses behind RAGE's pie chart and answer table:

    "After analyzing the answers, RAGE renders a table that groups
    combinations by answer, along with a pie chart illustrating the
    proportion of each answer across all combinations.  A rule is
    determined for each answer, when applicable, identifying sources
    that appeared in all combinations leading to this answer."

and for permutations:

    "For each answer, we determine a rule that identifies any context
    positions for which all permutations leading to this answer shared
    the same source."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .context import CombinationPerturbation, Context, PermutationPerturbation
from .evaluate import ContextEvaluator
from .lattice import AnswerLattice


@dataclass(frozen=True)
class AnswerSlice:
    """One pie-chart slice: an answer and its share of perturbations."""

    answer: str
    count: int
    fraction: float


@dataclass(frozen=True)
class CombinationRule:
    """Presence/absence pattern shared by an answer's combinations.

    ``required_sources`` is the paper's rule: sources "that appeared in
    all combinations leading to this answer".  ``excluded_sources`` is a
    reproduction extension: sources absent from *every* such combination
    (while present in at least one combination that produced a different
    answer) — the complementary signal, e.g. "the LLM only answers
    Djokovic when the match-wins document is missing".
    """

    answer: str
    required_sources: Tuple[str, ...]
    excluded_sources: Tuple[str, ...] = ()

    def describe(self) -> str:
        """Human-readable rule sentence."""
        parts = []
        if self.required_sources:
            parts.append(
                f"every combination answering {self.answer!r} included: "
                + ", ".join(self.required_sources)
            )
        if self.excluded_sources:
            parts.append(
                f"every combination answering {self.answer!r} excluded: "
                + ", ".join(self.excluded_sources)
            )
        return "; ".join(parts)


@dataclass(frozen=True)
class PermutationRule:
    """Context positions pinned to one source across an answer's perms."""

    answer: str
    fixed_positions: Tuple[Tuple[int, str], ...]  # (position, doc_id)

    def describe(self) -> str:
        """Human-readable rule sentence."""
        parts = ", ".join(
            f"position {position + 1} = {doc_id}"
            for position, doc_id in self.fixed_positions
        )
        return f"every permutation answering {self.answer!r} had: {parts}"


@dataclass
class CombinationInsights:
    """The full combination analysis for one context."""

    query: str
    groups: Dict[str, List[CombinationPerturbation]]
    display_answers: Dict[str, str]
    rules: List[CombinationRule]
    num_evaluations: int

    @property
    def total(self) -> int:
        """Number of perturbations analyzed."""
        return sum(len(combos) for combos in self.groups.values())

    def pie(self) -> List[AnswerSlice]:
        """Answer distribution, largest slice first."""
        total = self.total or 1
        slices = [
            AnswerSlice(
                answer=self.display_answers[key],
                count=len(combos),
                fraction=len(combos) / total,
            )
            for key, combos in self.groups.items()
        ]
        slices.sort(key=lambda s: (-s.count, s.answer))
        return slices

    def answer_table(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """(answer, kept sources) rows, grouped by answer."""
        rows: List[Tuple[str, Tuple[str, ...]]] = []
        for key, combos in sorted(
            self.groups.items(), key=lambda item: (-len(item[1]), item[0])
        ):
            for combo in combos:
                rows.append((self.display_answers[key], combo.kept))
        return rows

    def rule_for(self, answer: str) -> Optional[CombinationRule]:
        """The rule covering ``answer`` (normalized match), if any."""
        from ..textproc import normalize_answer

        wanted = normalize_answer(answer)
        for rule in self.rules:
            if normalize_answer(rule.answer) == wanted:
                return rule
        return None


@dataclass
class PermutationInsights:
    """The full permutation analysis for one context."""

    query: str
    groups: Dict[str, List[PermutationPerturbation]]
    display_answers: Dict[str, str]
    rules: List[PermutationRule]
    num_evaluations: int

    @property
    def total(self) -> int:
        """Number of perturbations analyzed."""
        return sum(len(perms) for perms in self.groups.values())

    def pie(self) -> List[AnswerSlice]:
        """Answer distribution, largest slice first."""
        total = self.total or 1
        slices = [
            AnswerSlice(
                answer=self.display_answers[key],
                count=len(perms),
                fraction=len(perms) / total,
            )
            for key, perms in self.groups.items()
        ]
        slices.sort(key=lambda s: (-s.count, s.answer))
        return slices

    @property
    def is_stable(self) -> bool:
        """True when every analyzed permutation produced one answer."""
        return len(self.groups) <= 1


def derive_combination_rules(
    context_ids: Sequence[str],
    groups: Dict[str, Sequence[Tuple[str, ...]]],
    display_answers: Dict[str, str],
) -> List[CombinationRule]:
    """Presence/absence rules from kept-sets grouped by answer.

    Shared by :func:`analyze_combinations` and the staged
    :meth:`~repro.core.plan.EvaluationPlan.execute` pruning (which
    derives rules from the seed round to pick implication intervals).

    Per-group unions are precomputed once, so the absence rule costs
    O(groups · combos) rather than re-unioning every other group per
    group (O(groups² · combos)): a source absent from this group's
    union is "kept elsewhere" exactly when it appears in the union of
    *all* groups.
    """
    unions: Dict[str, set] = {}
    union_all: set = set()
    required_by_key: Dict[str, set] = {}
    for key, kept_sets in groups.items():
        union: set = set()
        required = set(kept_sets[0]) if kept_sets else set()
        for kept in kept_sets:
            members = set(kept)
            required &= members
            union |= members
        unions[key] = union
        required_by_key[key] = required
        union_all |= union
    rules: List[CombinationRule] = []
    for key in groups:
        required = required_by_key[key]
        # Absence rule: never kept for this answer, but kept somewhere
        # else in the analysis (otherwise absence carries no signal).
        excluded = (set(context_ids) - unions[key]) & union_all
        if required or excluded:
            rules.append(
                CombinationRule(
                    answer=display_answers[key],
                    required_sources=tuple(d for d in context_ids if d in required),
                    excluded_sources=tuple(d for d in context_ids if d in excluded),
                )
            )
    return rules


def analyze_combinations(
    evaluator: ContextEvaluator,
    perturbations: Sequence[CombinationPerturbation],
    lattice: Optional[AnswerLattice] = None,
) -> CombinationInsights:
    """Evaluate the combinations and build distribution + rules.

    When an :class:`~repro.core.lattice.AnswerLattice` is supplied (the
    pruned ``explain()`` path), combinations whose answers the lattice
    already knows — evaluated earlier, or *implied* by the staged plan —
    are grouped without touching the LLM, and fresh evaluations are
    recorded back so later searches can reuse them.
    ``num_evaluations`` keeps counting real LLM calls only.
    """
    groups: Dict[str, List[CombinationPerturbation]] = {}
    display: Dict[str, str] = {}
    before = evaluator.llm_calls
    orderings = [
        perturbation.apply(evaluator.context) for perturbation in perturbations
    ]
    answers: List[Optional[Tuple[str, str]]] = [None] * len(orderings)
    misses: List[int] = []
    if lattice is not None:
        for index, ordering in enumerate(orderings):
            if evaluator.is_memoized(ordering):
                misses.append(index)  # free memo hit; resolve via evaluator
                continue
            mask = lattice.mask_for(ordering)
            entry = lattice.lookup(mask) if mask is not None else None
            if entry is not None:
                answers[index] = (entry.answer, entry.normalized_answer)
            else:
                misses.append(index)
    else:
        misses = list(range(len(orderings)))
    if misses:
        evaluations = evaluator.evaluate_many([orderings[i] for i in misses])
        for index, evaluation in zip(misses, evaluations):
            answers[index] = (evaluation.answer, evaluation.normalized_answer)
            if lattice is not None:
                lattice.record(
                    orderings[index], evaluation.answer, evaluation.normalized_answer
                )
    for perturbation, resolved in zip(perturbations, answers):
        assert resolved is not None
        answer, key = resolved
        groups.setdefault(key, []).append(perturbation)
        display.setdefault(key, answer)
    rules = derive_combination_rules(
        evaluator.context.doc_ids(),
        {key: [combo.kept for combo in combos] for key, combos in groups.items()},
        display,
    )
    return CombinationInsights(
        query=evaluator.context.query,
        groups=groups,
        display_answers=display,
        rules=rules,
        num_evaluations=evaluator.llm_calls - before,
    )


def analyze_permutations(
    evaluator: ContextEvaluator,
    perturbations: Sequence[PermutationPerturbation],
) -> PermutationInsights:
    """Evaluate the permutations and build distribution + rules."""
    groups: Dict[str, List[PermutationPerturbation]] = {}
    display: Dict[str, str] = {}
    before = evaluator.llm_calls
    evaluations = evaluator.evaluate_many(
        [perturbation.apply(evaluator.context) for perturbation in perturbations]
    )
    for perturbation, evaluation in zip(perturbations, evaluations):
        key = evaluation.normalized_answer
        groups.setdefault(key, []).append(perturbation)
        display.setdefault(key, evaluation.answer)
    rules: List[PermutationRule] = []
    k = evaluator.context.k
    for key, perms in groups.items():
        fixed: List[Tuple[int, str]] = []
        for position in range(k):
            sources_at = {perm.order[position] for perm in perms}
            if len(sources_at) == 1:
                fixed.append((position, next(iter(sources_at))))
        # A rule that pins every position to a single permutation carries
        # no generalization; the paper emits rules "when applicable".
        if fixed and not (len(perms) == 1 and len(fixed) == k):
            rules.append(
                PermutationRule(answer=display[key], fixed_positions=tuple(fixed))
            )
    return PermutationInsights(
        query=evaluator.context.query,
        groups=groups,
        display_answers=display,
        rules=rules,
        num_evaluations=evaluator.llm_calls - before,
    )
