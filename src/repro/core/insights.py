"""Combination and permutation insights: distribution, table, rules.

The analyses behind RAGE's pie chart and answer table:

    "After analyzing the answers, RAGE renders a table that groups
    combinations by answer, along with a pie chart illustrating the
    proportion of each answer across all combinations.  A rule is
    determined for each answer, when applicable, identifying sources
    that appeared in all combinations leading to this answer."

and for permutations:

    "For each answer, we determine a rule that identifies any context
    positions for which all permutations leading to this answer shared
    the same source."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .context import CombinationPerturbation, Context, PermutationPerturbation
from .evaluate import ContextEvaluator


@dataclass(frozen=True)
class AnswerSlice:
    """One pie-chart slice: an answer and its share of perturbations."""

    answer: str
    count: int
    fraction: float


@dataclass(frozen=True)
class CombinationRule:
    """Presence/absence pattern shared by an answer's combinations.

    ``required_sources`` is the paper's rule: sources "that appeared in
    all combinations leading to this answer".  ``excluded_sources`` is a
    reproduction extension: sources absent from *every* such combination
    (while present in at least one combination that produced a different
    answer) — the complementary signal, e.g. "the LLM only answers
    Djokovic when the match-wins document is missing".
    """

    answer: str
    required_sources: Tuple[str, ...]
    excluded_sources: Tuple[str, ...] = ()

    def describe(self) -> str:
        """Human-readable rule sentence."""
        parts = []
        if self.required_sources:
            parts.append(
                f"every combination answering {self.answer!r} included: "
                + ", ".join(self.required_sources)
            )
        if self.excluded_sources:
            parts.append(
                f"every combination answering {self.answer!r} excluded: "
                + ", ".join(self.excluded_sources)
            )
        return "; ".join(parts)


@dataclass(frozen=True)
class PermutationRule:
    """Context positions pinned to one source across an answer's perms."""

    answer: str
    fixed_positions: Tuple[Tuple[int, str], ...]  # (position, doc_id)

    def describe(self) -> str:
        """Human-readable rule sentence."""
        parts = ", ".join(
            f"position {position + 1} = {doc_id}"
            for position, doc_id in self.fixed_positions
        )
        return f"every permutation answering {self.answer!r} had: {parts}"


@dataclass
class CombinationInsights:
    """The full combination analysis for one context."""

    query: str
    groups: Dict[str, List[CombinationPerturbation]]
    display_answers: Dict[str, str]
    rules: List[CombinationRule]
    num_evaluations: int

    @property
    def total(self) -> int:
        """Number of perturbations analyzed."""
        return sum(len(combos) for combos in self.groups.values())

    def pie(self) -> List[AnswerSlice]:
        """Answer distribution, largest slice first."""
        total = self.total or 1
        slices = [
            AnswerSlice(
                answer=self.display_answers[key],
                count=len(combos),
                fraction=len(combos) / total,
            )
            for key, combos in self.groups.items()
        ]
        slices.sort(key=lambda s: (-s.count, s.answer))
        return slices

    def answer_table(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """(answer, kept sources) rows, grouped by answer."""
        rows: List[Tuple[str, Tuple[str, ...]]] = []
        for key, combos in sorted(
            self.groups.items(), key=lambda item: (-len(item[1]), item[0])
        ):
            for combo in combos:
                rows.append((self.display_answers[key], combo.kept))
        return rows

    def rule_for(self, answer: str) -> Optional[CombinationRule]:
        """The rule covering ``answer`` (normalized match), if any."""
        from ..textproc import normalize_answer

        wanted = normalize_answer(answer)
        for rule in self.rules:
            if normalize_answer(rule.answer) == wanted:
                return rule
        return None


@dataclass
class PermutationInsights:
    """The full permutation analysis for one context."""

    query: str
    groups: Dict[str, List[PermutationPerturbation]]
    display_answers: Dict[str, str]
    rules: List[PermutationRule]
    num_evaluations: int

    @property
    def total(self) -> int:
        """Number of perturbations analyzed."""
        return sum(len(perms) for perms in self.groups.values())

    def pie(self) -> List[AnswerSlice]:
        """Answer distribution, largest slice first."""
        total = self.total or 1
        slices = [
            AnswerSlice(
                answer=self.display_answers[key],
                count=len(perms),
                fraction=len(perms) / total,
            )
            for key, perms in self.groups.items()
        ]
        slices.sort(key=lambda s: (-s.count, s.answer))
        return slices

    @property
    def is_stable(self) -> bool:
        """True when every analyzed permutation produced one answer."""
        return len(self.groups) <= 1


def analyze_combinations(
    evaluator: ContextEvaluator,
    perturbations: Sequence[CombinationPerturbation],
) -> CombinationInsights:
    """Evaluate the combinations and build distribution + rules."""
    groups: Dict[str, List[CombinationPerturbation]] = {}
    display: Dict[str, str] = {}
    before = evaluator.llm_calls
    evaluations = evaluator.evaluate_many(
        [perturbation.apply(evaluator.context) for perturbation in perturbations]
    )
    for perturbation, evaluation in zip(perturbations, evaluations):
        key = evaluation.normalized_answer
        groups.setdefault(key, []).append(perturbation)
        display.setdefault(key, evaluation.answer)
    rules: List[CombinationRule] = []
    context_ids = evaluator.context.doc_ids()
    for key, combos in groups.items():
        required = set(combos[0].kept)
        union: set = set()
        for combo in combos:
            required &= set(combo.kept)
            union |= set(combo.kept)
        # Absence rule: never kept for this answer, but kept somewhere
        # else in the analysis (otherwise absence carries no signal).
        kept_elsewhere: set = set()
        for other_key, other_combos in groups.items():
            if other_key == key:
                continue
            for combo in other_combos:
                kept_elsewhere |= set(combo.kept)
        excluded = (set(context_ids) - union) & kept_elsewhere
        if required or excluded:
            rules.append(
                CombinationRule(
                    answer=display[key],
                    required_sources=tuple(d for d in context_ids if d in required),
                    excluded_sources=tuple(d for d in context_ids if d in excluded),
                )
            )
    return CombinationInsights(
        query=evaluator.context.query,
        groups=groups,
        display_answers=display,
        rules=rules,
        num_evaluations=evaluator.llm_calls - before,
    )


def analyze_permutations(
    evaluator: ContextEvaluator,
    perturbations: Sequence[PermutationPerturbation],
) -> PermutationInsights:
    """Evaluate the permutations and build distribution + rules."""
    groups: Dict[str, List[PermutationPerturbation]] = {}
    display: Dict[str, str] = {}
    before = evaluator.llm_calls
    evaluations = evaluator.evaluate_many(
        [perturbation.apply(evaluator.context) for perturbation in perturbations]
    )
    for perturbation, evaluation in zip(perturbations, evaluations):
        key = evaluation.normalized_answer
        groups.setdefault(key, []).append(perturbation)
        display.setdefault(key, evaluation.answer)
    rules: List[PermutationRule] = []
    k = evaluator.context.k
    for key, perms in groups.items():
        fixed: List[Tuple[int, str]] = []
        for position in range(k):
            sources_at = {perm.order[position] for perm in perms}
            if len(sources_at) == 1:
                fixed.append((position, next(iter(sources_at))))
        # A rule that pins every position to a single permutation carries
        # no generalization; the paper emits rules "when applicable".
        if fixed and not (len(perms) == 1 and len(fixed) == k):
            rules.append(
                PermutationRule(answer=display[key], fixed_positions=tuple(fixed))
            )
    return PermutationInsights(
        query=evaluator.context.query,
        groups=groups,
        display_answers=display,
        rules=rules,
        num_evaluations=evaluator.llm_calls - before,
    )
