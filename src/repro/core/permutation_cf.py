"""Permutation counterfactual search — order-stability explanations.

    "RAGE searches for the most similar source permutation (with respect
    to their given order) such that the LLM responds with a different
    answer. ... Our algorithm generates all length-k permutations ...
    then computes Kendall's Tau rank correlation coefficient for each
    permutation ... the permutations are subsequently sorted and
    evaluated in decreasing order of similarity."

A found counterfactual therefore maximizes Kendall's tau among all
answer-changing permutations (subject to the evaluation budget), which
"quantifies the stability of the LLM's answer with respect to the order
of the context sources".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..combinatorics.kendall import kendall_tau
from ..combinatorics.permutations import all_permutations
from ..errors import SearchBudgetError
from ..textproc import normalize_answer
from .context import Context, PermutationPerturbation
from .evaluate import ContextEvaluator, scan_candidates
from .lattice import AnswerLattice

#: Enumerating k! permutations is the paper's algorithm; above this k we
#: refuse and ask the caller to sample instead (8! = 40320 evaluations).
MAX_EXHAUSTIVE_K = 8


@dataclass(frozen=True)
class PermutationCounterfactual:
    """A found permutation counterfactual."""

    perturbation: PermutationPerturbation
    tau: float
    baseline_answer: str
    new_answer: str
    moved_sources: Tuple[str, ...]


@dataclass
class PermutationSearchResult:
    """Outcome of one permutation counterfactual search."""

    baseline_answer: str
    target_answer: Optional[str]
    counterfactual: Optional[PermutationCounterfactual]
    num_evaluations: int
    budget_exhausted: bool
    trail: List[Tuple[Tuple[str, ...], float, str]] = field(default_factory=list)

    @property
    def found(self) -> bool:
        """True when an answer-changing permutation was found."""
        return self.counterfactual is not None


def ranked_permutations(context: Context) -> List[Tuple[Tuple[str, ...], float]]:
    """All non-identity permutations with tau, most-similar first.

    Ties in tau keep lexicographic-by-position order (stable sort over
    the lexicographic generator), so e.g. the adjacent transposition of
    positions (0, 1) is tried before that of (1, 2).
    """
    reference = context.doc_ids()
    candidates = [
        (perm, kendall_tau(reference, perm))
        for perm in all_permutations(reference)
        if perm != reference
    ]
    candidates.sort(key=lambda item: -item[1])
    return candidates


def lazy_ranked_permutations(context: Context):
    """Decreasing-tau candidate stream without materializing k! orders.

    Extension beyond the paper's generate-all-then-sort: uses the
    inversion-vector enumeration in
    :mod:`repro.combinatorics.inversions`, so a budgeted search over a
    large context only constructs the orders it actually evaluates.
    Equal-tau tie-break order differs from :func:`ranked_permutations`
    (lexicographic inversion vectors instead of lexicographic
    positions); the found flip's tau is identical.
    """
    from ..combinatorics.inversions import permutations_by_tau

    return permutations_by_tau(context.doc_ids(), include_identity=False)


def search_permutation_counterfactual(
    evaluator: ContextEvaluator,
    target_answer: Optional[str] = None,
    max_evaluations: int = 1000,
    keep_trail: bool = False,
    lazy: Optional[bool] = None,
    batch_size: int = 1,
    lattice: Optional[AnswerLattice] = None,
    adaptive: bool = False,
) -> PermutationSearchResult:
    """Find the most-similar answer-changing permutation.

    For ``k <= MAX_EXHAUSTIVE_K`` the paper's algorithm is used
    verbatim (generate all k!, sort by decreasing tau).  Larger contexts
    switch to the lazy decreasing-tau generator, bounded by
    ``max_evaluations``.  Pass ``lazy=True``/``False`` to force a mode.

    ``max_evaluations`` bounds *real* LLM calls: orders the (possibly
    shared) evaluator has already memoized — e.g. from a permutation
    insight analysis over the same context — are free, matching the
    paper's LLM-call semantics.  ``batch_size`` chunks un-memoized
    candidates into batched LLM calls (default 1 = the paper's strictly
    sequential evaluation; larger values may charge a few evaluations
    past the flip in exchange for batched-backend throughput), and
    ``adaptive=True`` grows the chunk geometrically while no flip
    appears (reset on a near-hit) for batched backends.  A ``lattice``
    cannot imply permutation answers (orderings beyond context-order
    subsets are outside the combination lattice) but every evaluated
    permutation feeds its order-stability evidence.

    Raises
    ------
    SearchBudgetError
        On a non-positive budget or batch size, or when ``lazy=False``
        is forced for a context beyond the exhaustive cap.
    """
    if max_evaluations <= 0:
        raise SearchBudgetError(f"max_evaluations must be positive, got {max_evaluations}")
    if batch_size < 1:
        raise SearchBudgetError(f"batch_size must be >= 1, got {batch_size}")
    context = evaluator.context
    if lazy is None:
        lazy = context.k > MAX_EXHAUSTIVE_K
    if not lazy and context.k > MAX_EXHAUSTIVE_K:
        raise SearchBudgetError(
            f"exhaustive permutation search over k={context.k} would enumerate "
            f"{math.factorial(context.k)} orders; cap is k={MAX_EXHAUSTIVE_K} "
            "(lazy mode or sampled permutation insights handle larger contexts)"
        )
    baseline = evaluator.original()
    target_norm = normalize_answer(target_answer) if target_answer is not None else None
    result = PermutationSearchResult(
        baseline_answer=baseline.answer,
        target_answer=target_answer,
        counterfactual=None,
        num_evaluations=0,
        budget_exhausted=False,
    )
    candidates = lazy_ranked_permutations(context) if lazy else ranked_permutations(context)

    # Budget = real LLM calls from here on (the baseline is the caller's
    # shared cost; memo hits are free).  scan_candidates owns the
    # chunking/accounting shared with the combination search.
    def match(payload, evaluation):
        order, tau = payload
        if keep_trail:
            result.trail.append((order, tau, evaluation.answer))
        changed = evaluation.normalized_answer != baseline.normalized_answer
        hits_target = (
            target_norm is None or evaluation.normalized_answer == target_norm
        )
        if not (changed and hits_target):
            return None
        perturbation = PermutationPerturbation(order=order)
        return PermutationCounterfactual(
            perturbation=perturbation,
            tau=tau,
            baseline_answer=baseline.answer,
            new_answer=evaluation.answer,
            moved_sources=tuple(perturbation.moved_sources(context)),
        )

    result.counterfactual, result.num_evaluations, result.budget_exhausted = (
        scan_candidates(
            evaluator,
            ((order, (order, tau)) for order, tau in candidates),
            match,
            max_evaluations,
            batch_size,
            lattice=lattice,
            # Near-hit (adaptive chunk reset): an answer change that
            # missed the target answer.
            near=(
                (
                    lambda evaluation: evaluation.normalized_answer
                    != baseline.normalized_answer
                    and evaluation.normalized_answer != target_norm
                )
                if target_norm is not None
                else None
            ),
            adaptive=adaptive,
        )
    )
    return result
