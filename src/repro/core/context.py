"""Contexts and perturbations — the objects RAGE searches over.

A :class:`Context` is the ranked sequence of sources ``Dq`` handed to
the LLM for one question.  The two perturbation kinds mirror the paper:

* :class:`CombinationPerturbation` — keep a subset of the sources (in
  their original relative order); "combinations elucidate how the
  presence of sources affects the LLM's predicted answer".
* :class:`PermutationPerturbation` — keep all sources but reorder them;
  "permutations elucidate the effect of their order".

Both are immutable value objects that validate themselves against the
context they apply to, and both resolve to the ordered document-id
sequence that the prompt builder renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PerturbationError
from ..retrieval.document import Document
from ..retrieval.searcher import RetrievalResult


@dataclass(frozen=True)
class ContextSource:
    """One source in the context: document plus its retrieval score."""

    document: Document
    retrieval_score: float = 0.0

    @property
    def doc_id(self) -> str:
        """The underlying document id."""
        return self.document.doc_id


@dataclass(frozen=True)
class Context:
    """The ranked context ``Dq`` for a query.

    Sources are ordered by retrieval rank; all perturbations reference
    sources by document id.
    """

    query: str
    sources: Tuple[ContextSource, ...]
    _positions: Dict[str, int] = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        positions: Dict[str, int] = {}
        for position, source in enumerate(self.sources):
            if source.doc_id in positions:
                raise PerturbationError(f"duplicate source {source.doc_id!r} in context")
            positions[source.doc_id] = position
        object.__setattr__(self, "_positions", positions)

    @classmethod
    def from_retrieval(cls, result: RetrievalResult) -> "Context":
        """Build a context from a retrieval result."""
        return cls(
            query=result.query,
            sources=tuple(
                ContextSource(document=s.document, retrieval_score=s.score)
                for s in result.sources
            ),
        )

    @classmethod
    def from_documents(
        cls,
        query: str,
        documents: Sequence[Document],
        scores: Optional[Sequence[float]] = None,
    ) -> "Context":
        """Build a context from an explicit document list."""
        if scores is None:
            scores = [0.0] * len(documents)
        if len(scores) != len(documents):
            raise PerturbationError("scores must align with documents")
        return cls(
            query=query,
            sources=tuple(
                ContextSource(document=doc, retrieval_score=score)
                for doc, score in zip(documents, scores)
            ),
        )

    # -- accessors -------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of sources."""
        return len(self.sources)

    def doc_ids(self) -> Tuple[str, ...]:
        """Document ids in context order."""
        return tuple(source.doc_id for source in self.sources)

    def texts(self) -> List[str]:
        """Source texts in context order."""
        return [source.document.text for source in self.sources]

    def retrieval_scores(self) -> Dict[str, float]:
        """doc_id -> retrieval score."""
        return {source.doc_id: source.retrieval_score for source in self.sources}

    def position_of(self, doc_id: str) -> int:
        """Context position (0-based) of a source."""
        try:
            return self._positions[doc_id]
        except KeyError:
            raise PerturbationError(f"source {doc_id!r} not in context") from None

    def document(self, doc_id: str) -> Document:
        """The document carried by a source."""
        return self.sources[self.position_of(doc_id)].document

    def texts_for(self, ordered_doc_ids: Sequence[str]) -> List[str]:
        """Source texts for an explicit id ordering."""
        return [self.document(doc_id).text for doc_id in ordered_doc_ids]

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._positions


@dataclass(frozen=True)
class CombinationPerturbation:
    """Keep only ``kept`` sources, in their original relative order."""

    kept: Tuple[str, ...]

    def validate(self, context: Context) -> None:
        """Check membership, uniqueness, and original-order invariant."""
        if len(set(self.kept)) != len(self.kept):
            raise PerturbationError("combination repeats a source")
        positions = [context.position_of(doc_id) for doc_id in self.kept]
        if positions != sorted(positions):
            raise PerturbationError(
                "combination must preserve the context's relative order"
            )

    def apply(self, context: Context) -> Tuple[str, ...]:
        """Ordered doc ids after the perturbation."""
        self.validate(context)
        return self.kept

    def removed(self, context: Context) -> Tuple[str, ...]:
        """The complementary removed set (context order)."""
        kept = set(self.kept)
        return tuple(doc_id for doc_id in context.doc_ids() if doc_id not in kept)

    @property
    def size(self) -> int:
        """Number of sources kept."""
        return len(self.kept)

    @classmethod
    def from_removal(
        cls, context: Context, removed: Sequence[str]
    ) -> "CombinationPerturbation":
        """Build the perturbation that removes exactly ``removed``."""
        removed_set = set(removed)
        for doc_id in removed_set:
            context.position_of(doc_id)  # membership check
        kept = tuple(d for d in context.doc_ids() if d not in removed_set)
        return cls(kept=kept)


@dataclass(frozen=True)
class PermutationPerturbation:
    """Reorder all context sources to ``order``."""

    order: Tuple[str, ...]

    def validate(self, context: Context) -> None:
        """The order must be a permutation of the full context."""
        if sorted(self.order) != sorted(context.doc_ids()):
            raise PerturbationError(
                "permutation must contain exactly the context's sources"
            )

    def apply(self, context: Context) -> Tuple[str, ...]:
        """Ordered doc ids after the perturbation."""
        self.validate(context)
        return self.order

    def is_identity(self, context: Context) -> bool:
        """True when the order equals the context order."""
        return self.order == context.doc_ids()

    def moved_sources(self, context: Context) -> List[str]:
        """Sources whose position changed (context order)."""
        return [
            doc_id
            for position, doc_id in enumerate(self.order)
            if context.position_of(doc_id) != position
        ]
