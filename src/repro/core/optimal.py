"""Optimal permutations: counteracting the "lost in the middle" bias.

    "Given a distribution of the expected attention paid to each
    position, this 'lost in the middle' bias can be counteracted by
    positioning important sources in high-attention positions. ...
    Optimal permutations aim to maximize both the relevance and
    attention of their constituent sources. ... we propose an efficient
    solution by formulating this problem as an instance of the
    assignment problem ... a variant that seeks the s assignments with
    minimal cost ... the algorithm proposed by Chegireddy and Hamacher
    ... allows us to calculate the s optimal permutations in O(sk^3)."

The benefit of placing source ``d`` at position ``p`` is
``relevance(d) x expected_attention(p)``; the top-s orderings of total
benefit are exactly the s-best assignments of the negated benefit
matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..attention.positional import PositionPrior, position_weights
from ..combinatorics.kbest import (
    kbest_assignments_ch,
    kbest_assignments_murty,
)
from ..errors import ConfigError
from .context import Context, PermutationPerturbation


@dataclass(frozen=True)
class OptimalPermutation:
    """One of the top-s placements."""

    rank: int
    perturbation: PermutationPerturbation
    score: float

    @property
    def order(self) -> Tuple[str, ...]:
        """Document ids, best-placement order."""
        return self.perturbation.order


def benefit_matrix(
    context: Context,
    relevance_scores: Dict[str, float],
    attention_weights: Sequence[float],
) -> List[List[float]]:
    """``B[i][j] = relevance(source_i) x attention(position_j)``."""
    doc_ids = context.doc_ids()
    if len(attention_weights) != len(doc_ids):
        raise ConfigError("attention weights must match the context size")
    return [
        [relevance_scores.get(doc_id, 0.0) * weight for weight in attention_weights]
        for doc_id in doc_ids
    ]


def optimal_permutations(
    context: Context,
    relevance_scores: Dict[str, float],
    s: int = 5,
    prior: PositionPrior | str = PositionPrior.V_SHAPED,
    depth: float = 0.8,
    attention_weights: Optional[Sequence[float]] = None,
    method: str = "ch",
) -> List[OptimalPermutation]:
    """The s orderings maximizing total relevance x attention.

    Parameters
    ----------
    context:
        The retrieved context to re-order.
    relevance_scores:
        ``S(q, d, Dq)`` per source — attention- or retrieval-based.
    s:
        Number of top placements to return.
    prior, depth:
        The expected positional attention distribution (the paper's
        user-calibrated "predefined V-shaped distribution").
    attention_weights:
        Explicit per-position weights; overrides ``prior``/``depth``.
    method:
        ``"ch"`` (Chegireddy–Hamacher, O(sk^3)) or ``"murty"``.
    """
    if s <= 0:
        raise ConfigError(f"s must be positive, got {s}")
    if context.k == 0:
        raise ConfigError("cannot order an empty context")
    if attention_weights is None:
        attention_weights = position_weights(prior, context.k, depth=depth)
    benefits = benefit_matrix(context, relevance_scores, attention_weights)
    costs = [[-value for value in row] for row in benefits]
    if method == "ch":
        ranked = kbest_assignments_ch(costs, s)
    elif method == "murty":
        ranked = kbest_assignments_murty(costs, s)
    else:
        raise ConfigError(f"unknown method {method!r}; use 'ch' or 'murty'")
    doc_ids = context.doc_ids()
    results: List[OptimalPermutation] = []
    for solution in ranked:
        order: List[Optional[str]] = [None] * context.k
        for source_index, position in enumerate(solution.assignment):
            order[position] = doc_ids[source_index]
        assert all(doc_id is not None for doc_id in order)
        results.append(
            OptimalPermutation(
                rank=solution.rank,
                perturbation=PermutationPerturbation(order=tuple(order)),  # type: ignore[arg-type]
                score=-solution.cost,
            )
        )
    return results


def naive_optimal_permutations(
    context: Context,
    relevance_scores: Dict[str, float],
    s: int,
    attention_weights: Sequence[float],
) -> List[OptimalPermutation]:
    """The O(k!) baseline: score every permutation, sort, take s.

    Kept for benchmark E6 and the cross-check tests; never used by the
    engine.
    """
    import itertools

    doc_ids = context.doc_ids()
    scored = []
    for order in itertools.permutations(doc_ids):
        total = sum(
            relevance_scores.get(doc_id, 0.0) * attention_weights[position]
            for position, doc_id in enumerate(order)
        )
        scored.append((total, order))
    scored.sort(key=lambda item: (-item[0], item[1]))
    return [
        OptimalPermutation(
            rank=rank,
            perturbation=PermutationPerturbation(order=order),
            score=total,
        )
        for rank, (total, order) in enumerate(scored[:s], start=1)
    ]
