"""RAGE core: contexts, perturbations, counterfactual searches,
insights, optimal permutations, answer-implication pruning, and the
engine facade.

:mod:`~repro.core.lattice` holds the answer-implication subsystem: a
bitmask-indexed :class:`AnswerLattice` that records every evaluated
combination and implies answers for unevaluated ones via monotone
sandwich bounds between confirmed rule intervals.  The staged
:class:`EvaluationPlan` prunes implied combinations from its batches,
and the counterfactual searches skip candidates whose implied answer
cannot flip (verifying implied flips with one real call).  Implication
self-gates on observed order stability and rolls back on conflicts, so
position-sensitive (non-monotone) models keep their exact unpruned
behavior.
"""

from .agreement import (
    AgreementReport,
    ClaimMatch,
    PairVerdict,
    SourcePairReport,
    analyze_agreement,
    render_agreement,
)
from .context import (
    CombinationPerturbation,
    Context,
    ContextSource,
    PermutationPerturbation,
)
from .counterfactual import (
    CombinationCounterfactual,
    CombinationSearchResult,
    SearchDirection,
    search_combination_counterfactual,
)
from .engine import AskResult, Rage, RageConfig, RageReport
from .greedy import greedy_combination_counterfactual
from .evaluate import ContextEvaluator, Evaluation
from .insights import (
    AnswerSlice,
    CombinationInsights,
    CombinationRule,
    PermutationInsights,
    PermutationRule,
    analyze_combinations,
    analyze_permutations,
    derive_combination_rules,
)
from .lattice import AnswerLattice, LatticeEntry, LatticeStats
from .optimal import (
    OptimalPermutation,
    benefit_matrix,
    naive_optimal_permutations,
    optimal_permutations,
)
from .permutation_cf import (
    MAX_EXHAUSTIVE_K,
    PermutationCounterfactual,
    PermutationSearchResult,
    ranked_permutations,
    search_permutation_counterfactual,
)
from .plan import EvaluationPlan, PlanStats
from .sampling import select_combinations, select_permutations
from .stability import (
    OrderStability,
    SalienceScore,
    answer_entropy,
    order_stability,
    positional_sensitivity,
    source_salience,
)
from .scoring import (
    AttentionRelevance,
    RelevanceMethod,
    RelevanceScorer,
    RetrievalRelevance,
    make_scorer,
)

__all__ = [
    "AgreementReport",
    "ClaimMatch",
    "PairVerdict",
    "SourcePairReport",
    "analyze_agreement",
    "render_agreement",
    "CombinationPerturbation",
    "Context",
    "ContextSource",
    "PermutationPerturbation",
    "CombinationCounterfactual",
    "CombinationSearchResult",
    "SearchDirection",
    "search_combination_counterfactual",
    "AskResult",
    "Rage",
    "RageConfig",
    "RageReport",
    "greedy_combination_counterfactual",
    "ContextEvaluator",
    "Evaluation",
    "AnswerSlice",
    "CombinationInsights",
    "CombinationRule",
    "PermutationInsights",
    "PermutationRule",
    "analyze_combinations",
    "analyze_permutations",
    "derive_combination_rules",
    "AnswerLattice",
    "LatticeEntry",
    "LatticeStats",
    "OptimalPermutation",
    "benefit_matrix",
    "naive_optimal_permutations",
    "optimal_permutations",
    "MAX_EXHAUSTIVE_K",
    "PermutationCounterfactual",
    "PermutationSearchResult",
    "ranked_permutations",
    "search_permutation_counterfactual",
    "EvaluationPlan",
    "PlanStats",
    "select_combinations",
    "select_permutations",
    "OrderStability",
    "SalienceScore",
    "answer_entropy",
    "order_stability",
    "positional_sensitivity",
    "source_salience",
    "AttentionRelevance",
    "RelevanceMethod",
    "RelevanceScorer",
    "RetrievalRelevance",
    "make_scorer",
]
