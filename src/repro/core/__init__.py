"""RAGE core: contexts, perturbations, counterfactual searches,
insights, optimal permutations, and the engine facade.
"""

from .agreement import (
    AgreementReport,
    ClaimMatch,
    PairVerdict,
    SourcePairReport,
    analyze_agreement,
    render_agreement,
)
from .context import (
    CombinationPerturbation,
    Context,
    ContextSource,
    PermutationPerturbation,
)
from .counterfactual import (
    CombinationCounterfactual,
    CombinationSearchResult,
    SearchDirection,
    search_combination_counterfactual,
)
from .engine import AskResult, Rage, RageConfig, RageReport
from .greedy import greedy_combination_counterfactual
from .evaluate import ContextEvaluator, Evaluation
from .insights import (
    AnswerSlice,
    CombinationInsights,
    CombinationRule,
    PermutationInsights,
    PermutationRule,
    analyze_combinations,
    analyze_permutations,
)
from .optimal import (
    OptimalPermutation,
    benefit_matrix,
    naive_optimal_permutations,
    optimal_permutations,
)
from .permutation_cf import (
    MAX_EXHAUSTIVE_K,
    PermutationCounterfactual,
    PermutationSearchResult,
    ranked_permutations,
    search_permutation_counterfactual,
)
from .plan import EvaluationPlan, PlanStats
from .sampling import select_combinations, select_permutations
from .stability import (
    OrderStability,
    SalienceScore,
    answer_entropy,
    order_stability,
    positional_sensitivity,
    source_salience,
)
from .scoring import (
    AttentionRelevance,
    RelevanceMethod,
    RelevanceScorer,
    RetrievalRelevance,
    make_scorer,
)

__all__ = [
    "AgreementReport",
    "ClaimMatch",
    "PairVerdict",
    "SourcePairReport",
    "analyze_agreement",
    "render_agreement",
    "CombinationPerturbation",
    "Context",
    "ContextSource",
    "PermutationPerturbation",
    "CombinationCounterfactual",
    "CombinationSearchResult",
    "SearchDirection",
    "search_combination_counterfactual",
    "AskResult",
    "Rage",
    "RageConfig",
    "RageReport",
    "greedy_combination_counterfactual",
    "ContextEvaluator",
    "Evaluation",
    "AnswerSlice",
    "CombinationInsights",
    "CombinationRule",
    "PermutationInsights",
    "PermutationRule",
    "analyze_combinations",
    "analyze_permutations",
    "OptimalPermutation",
    "benefit_matrix",
    "naive_optimal_permutations",
    "optimal_permutations",
    "MAX_EXHAUSTIVE_K",
    "PermutationCounterfactual",
    "PermutationSearchResult",
    "ranked_permutations",
    "search_permutation_counterfactual",
    "EvaluationPlan",
    "PlanStats",
    "select_combinations",
    "select_permutations",
    "OrderStability",
    "SalienceScore",
    "answer_entropy",
    "order_stability",
    "positional_sensitivity",
    "source_salience",
    "AttentionRelevance",
    "RelevanceMethod",
    "RelevanceScorer",
    "RetrievalRelevance",
    "make_scorer",
]
