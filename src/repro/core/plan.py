"""Shared batched evaluation plans for multi-explanation reports.

A full RAGE report (``Rage.explain``) runs half a dozen sub-explanations
— combination and permutation insights, two combination counterfactual
directions, the permutation counterfactual, and order stability — and
every one of them reduces to evaluating perturbations of the *same*
context.  Run independently, each builds its own
:class:`~repro.core.evaluate.ContextEvaluator`, so the memo is discarded
between analyses and shared work (the full-context baseline, the
empty-context baseline, every subset the counterfactual search re-visits
after the insight analysis already answered it) is paid for repeatedly,
one serial prompt at a time.

An :class:`EvaluationPlan` inverts that: one evaluator (one memo, one
LLM-call counter) is shared across the whole report, and every
*enumerable* perturbation set is registered up front and dispatched as a
single deduplicated batch (:meth:`EvaluationPlan.execute`) before the
sequential searches run.  The searches then walk their candidate lists
almost entirely through memo hits, and only genuinely novel orderings
(e.g. deep subsets beyond a sampled insight set) reach the LLM.

The plan is deliberately dumb about *what* to evaluate — callers decide;
it owns deduplication, batching, and accounting.  Typical use::

    evaluator = ContextEvaluator(llm, context)
    plan = EvaluationPlan(evaluator)
    plan.add([context.doc_ids(), ()])          # both baselines
    plan.add_perturbations(combination_set)    # insight analyses
    plan.add_perturbations(permutation_set)
    stats = plan.execute()                     # one batch to the LLM
    # ... run analyses/searches against the shared, warm evaluator
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .evaluate import ContextEvaluator


@dataclass(frozen=True)
class PlanStats:
    """Outcome of one :meth:`EvaluationPlan.execute` flush.

    Attributes
    ----------
    requested:
        Orderings registered since the previous flush (duplicates
        included — what naive per-analysis evaluation would have paid).
    dispatched:
        Distinct, un-memoized orderings actually sent to the LLM.
    """

    requested: int
    dispatched: int

    @property
    def saved(self) -> int:
        """Evaluations avoided by deduplication and the shared memo."""
        return self.requested - self.dispatched


class EvaluationPlan:
    """Collects orderings, then evaluates the distinct misses as one batch.

    The plan wraps — never owns — a :class:`ContextEvaluator`: callers
    keep using the evaluator directly after (or between) flushes, and
    everything the plan evaluated is visible through the evaluator's
    memo.  ``add``/``add_perturbations`` are cheap (set insertion);
    nothing reaches the LLM until :meth:`execute`.
    """

    def __init__(self, evaluator: ContextEvaluator) -> None:
        self.evaluator = evaluator
        self._pending: List[Tuple[str, ...]] = []
        self._pending_keys: set = set()
        self._requested = 0

    @property
    def pending(self) -> int:
        """Distinct orderings queued for the next :meth:`execute`."""
        return len(self._pending)

    def add(self, orderings: Sequence[Sequence[str]]) -> "EvaluationPlan":
        """Register explicit orderings (ordered doc-id sequences)."""
        for ordering in orderings:
            self._requested += 1
            key = tuple(ordering)
            if key in self._pending_keys or self.evaluator.is_memoized(key):
                continue
            self._pending_keys.add(key)
            self._pending.append(key)
        return self

    def add_perturbations(self, perturbations: Sequence) -> "EvaluationPlan":
        """Register perturbations (combination or permutation) by
        resolving each against the evaluator's context."""
        context = self.evaluator.context
        return self.add([p.apply(context) for p in perturbations])

    def add_baselines(self) -> "EvaluationPlan":
        """Register the full-context and empty-context evaluations."""
        return self.add([self.evaluator.context.doc_ids(), ()])

    def execute(self) -> PlanStats:
        """Evaluate every pending ordering as one deduplicated batch."""
        requested = self._requested
        pending = self._pending
        self._pending = []
        self._pending_keys = set()
        self._requested = 0
        before = self.evaluator.llm_calls
        if pending:
            self.evaluator.evaluate_many(pending)
        return PlanStats(
            requested=requested,
            dispatched=self.evaluator.llm_calls - before,
        )
