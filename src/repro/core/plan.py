"""Shared batched evaluation plans for multi-explanation reports.

A full RAGE report (``Rage.explain``) runs half a dozen sub-explanations
— combination and permutation insights, two combination counterfactual
directions, the permutation counterfactual, and order stability — and
every one of them reduces to evaluating perturbations of the *same*
context.  Run independently, each builds its own
:class:`~repro.core.evaluate.ContextEvaluator`, so the memo is discarded
between analyses and shared work (the full-context baseline, the
empty-context baseline, every subset the counterfactual search re-visits
after the insight analysis already answered it) is paid for repeatedly,
one serial prompt at a time.

An :class:`EvaluationPlan` inverts that: one evaluator (one memo, one
LLM-call counter) is shared across the whole report, and every
*enumerable* perturbation set is registered up front and dispatched as a
single deduplicated batch (:meth:`EvaluationPlan.execute`) before the
sequential searches run.  The searches then walk their candidate lists
almost entirely through memo hits, and only genuinely novel orderings
(e.g. deep subsets beyond a sampled insight set) reach the LLM.

Staged pruning
--------------
With an :class:`~repro.core.lattice.AnswerLattice` attached, ``execute``
goes further than batching: it runs *staged*.  A relevance-ordered seed
round (order evidence plus the pending structural anchors — the empty
set, the full set, singletons and co-singletons) is evaluated first;
answer rules are derived from the seed via the
:func:`~repro.core.insights.derive_combination_rules` machinery and
their pending interval boundaries confirmed; then implication rounds
alternate with survivor flushes drawn from both ends of the size order
(small subsets for cheap safety evidence, maximal subsets as the high
witnesses that unlock the middle), pruning every combination the
lattice can imply — with a deterministic probe round guarding against
non-monotone models — until only genuine survivors remain.
``PlanStats`` reports the ``pruned`` count alongside the usual dedup
savings.

The plan is deliberately dumb about *what* to evaluate — callers decide;
it owns deduplication, batching, staging, and accounting.  Typical use::

    evaluator = ContextEvaluator(llm, context)
    plan = EvaluationPlan(evaluator, lattice=AnswerLattice(context))
    plan.add([context.doc_ids(), ()])          # both baselines
    plan.add_perturbations(combination_set)    # insight analyses
    plan.add_perturbations(permutation_set)
    stats = plan.execute()                     # staged batches + pruning
    # ... run analyses/searches against the shared, warm evaluator
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .evaluate import ContextEvaluator
from .insights import derive_combination_rules
from .lattice import AnswerLattice

#: Below this many pending combinations, staged pruning is not worth its
#: structural-anchor overhead and execute() falls back to one flat batch.
MIN_PRUNE_PENDING = 32

#: Maximum prune/flush rounds: each round implies what it can, then
#: flushes a chunk of survivors whose answers seed the next round.
PRUNE_ROUNDS = 4

#: One probe per this many implications is re-evaluated for real to
#: catch non-monotone models that slipped past the order-stability gate.
PROBE_STRIDE = 16

#: Implications for kept-sets this small are *all* probed: when a
#: non-monotone model slips past the stability gate, its wrong
#: implications concentrate at small subset sizes (one strong source
#: overriding a sandwich), so small sizes get exhaustive verification.
#: Size-major survivor flushing already evaluates most small subsets
#: for real — their answers poison bad implication intervals before
#: larger wrong implications can form — so this is a backstop.
PROBE_EXHAUSTIVE_SIZE = 3


@dataclass(frozen=True)
class PlanStats:
    """Outcome of one :meth:`EvaluationPlan.execute` flush.

    Attributes
    ----------
    requested:
        Orderings registered since the previous flush (duplicates
        included — what naive per-analysis evaluation would have paid).
    dispatched:
        Distinct, un-memoized orderings actually sent to the LLM.
    implied:
        Pending combinations whose answers the lattice implied at some
        point during the flush (probed ones included).
    pruned:
        Pending combinations that never reached the LLM at all — the
        implication savings net of verification probes.
    """

    requested: int
    dispatched: int
    implied: int = 0
    pruned: int = 0

    @property
    def saved(self) -> int:
        """Evaluations avoided by dedup, the shared memo, and pruning."""
        return self.requested - self.dispatched


class EvaluationPlan:
    """Collects orderings, then evaluates the distinct misses as one batch.

    The plan wraps — never owns — a :class:`ContextEvaluator`: callers
    keep using the evaluator directly after (or between) flushes, and
    everything the plan evaluated is visible through the evaluator's
    memo.  ``add``/``add_perturbations`` are cheap (set insertion);
    nothing reaches the LLM until :meth:`execute`.

    Pass an :class:`~repro.core.lattice.AnswerLattice` to enable staged
    pruning (see the module docstring); without one, ``execute`` is the
    single flat deduplicated batch of PR 1.
    """

    def __init__(
        self,
        evaluator: ContextEvaluator,
        lattice: Optional[AnswerLattice] = None,
    ) -> None:
        self.evaluator = evaluator
        self.lattice = lattice
        self._pending: List[Tuple[str, ...]] = []
        self._pending_keys: set = set()
        self._requested = 0

    @property
    def pending(self) -> int:
        """Distinct orderings queued for the next :meth:`execute`."""
        return len(self._pending)

    def add(self, orderings: Sequence[Sequence[str]]) -> "EvaluationPlan":
        """Register explicit orderings (ordered doc-id sequences)."""
        for ordering in orderings:
            self._requested += 1
            key = tuple(ordering)
            if key in self._pending_keys or self.evaluator.is_memoized(key):
                continue
            self._pending_keys.add(key)
            self._pending.append(key)
        return self

    def add_perturbations(self, perturbations: Sequence) -> "EvaluationPlan":
        """Register perturbations (combination or permutation) by
        resolving each against the evaluator's context."""
        context = self.evaluator.context
        return self.add([p.apply(context) for p in perturbations])

    def add_baselines(self) -> "EvaluationPlan":
        """Register the full-context and empty-context evaluations."""
        return self.add([self.evaluator.context.doc_ids(), ()])

    def execute(
        self, relevance_scores: Optional[Dict[str, float]] = None
    ) -> PlanStats:
        """Evaluate every pending ordering, pruning implied answers.

        Without a lattice this is one deduplicated batch.  With one, the
        staged flow described in the module docstring runs; pruned
        combinations end up *committed* in the lattice (so
        :func:`~repro.core.insights.analyze_combinations` and the
        counterfactual searches can consume their implied answers)
        while everything evaluated for real lands in the evaluator's
        memo as before.  ``relevance_scores`` orders the seed round and
        survivor flushes (most relevant first); ``None`` falls back to
        a deterministic size-major order.
        """
        requested = self._requested
        pending = self._pending
        self._pending = []
        self._pending_keys = set()
        self._requested = 0
        before = self.evaluator.llm_calls
        implied = pruned = 0
        if pending:
            if self.lattice is None:
                self.evaluator.evaluate_many(pending)
            else:
                implied, pruned = self._execute_staged(pending, relevance_scores)
        return PlanStats(
            requested=requested,
            dispatched=self.evaluator.llm_calls - before,
            implied=implied,
            pruned=pruned,
        )

    # -- staged execution --------------------------------------------------

    def _evaluate_round(self, keys: Sequence[Tuple[str, ...]]) -> None:
        """Evaluate one batch and feed every result to the lattice."""
        if not keys:
            return
        assert self.lattice is not None
        evaluations = self.evaluator.evaluate_many(keys)
        for key, evaluation in zip(keys, evaluations):
            self.lattice.record(key, evaluation.answer, evaluation.normalized_answer)

    def _execute_staged(
        self,
        pending: List[Tuple[str, ...]],
        relevance_scores: Optional[Dict[str, float]],
    ) -> Tuple[int, int]:
        """Seed round → rules → implication rounds → survivor flushes.

        Returns ``(implied, pruned)``.  Exactness posture: answers are
        only implied while the lattice's order-stability gate holds,
        every implication is interval-checked, a deterministic probe
        round re-evaluates a slice of the implied set, and any conflict
        rolls *all* implications back to real evaluations — so a
        non-monotone model degrades to the unpruned flat batch instead
        of producing wrong groups.
        """
        lattice = self.lattice
        assert lattice is not None
        maskable: Dict[int, Tuple[str, ...]] = {}
        rest: List[Tuple[str, ...]] = []
        for key in pending:
            mask = lattice.mask_for(key)
            if mask is None or mask in maskable:
                rest.append(key)
            else:
                maskable[mask] = key
        if len(maskable) < MIN_PRUNE_PENDING:
            self._evaluate_round(pending)
            return 0, 0

        def relevance(mask: int) -> float:
            if relevance_scores is None:
                return 0.0
            return sum(
                relevance_scores.get(doc_id, 0.0)
                for doc_id in lattice.decode(mask)
            )

        # Round 1 — order evidence (permutations and baselines) plus the
        # structural anchors already pending: empty, full, singletons,
        # co-singletons.  Anchors are what give later sandwich
        # implications their witnesses; order evidence opens (or keeps
        # shut) the lattice's stability gate.
        anchors = {0, lattice.full_mask}
        for position in range(lattice.k):
            anchors.add(1 << position)
            anchors.add(lattice.full_mask & ~(1 << position))
        seed = [mask for mask in maskable if mask in anchors]
        seed.sort(key=lambda mask: (bin(mask).count("1"), -relevance(mask), mask))
        self._evaluate_round(rest + [maskable[mask] for mask in seed])
        # Survivors flush smallest-first: small subsets are cheap to
        # evaluate, are exactly where non-monotone models deviate from
        # the sandwich (one strong source dominating a pair), and their
        # real answers both poison bad implication intervals and serve
        # as the low witnesses that unlock the large combinations —
        # which fat rule intervals then imply wholesale.
        remaining = sorted(
            (mask for mask in maskable if not lattice.evaluated(mask)),
            key=lambda mask: (bin(mask).count("1"), -relevance(mask), mask),
        )

        if not lattice.inference_active:
            self._evaluate_round([maskable[mask] for mask in remaining])
            return 0, 0

        # Confirm rule intervals: evaluating an interval's bottom
        # (kept = required) and top (kept = context − excluded) plants
        # the sandwich witnesses that unlock everything between them.
        # Only *pending* boundaries are bought — every staged
        # evaluation then stays inside the pending set, which makes
        # "a pruned run never costs more calls than the unpruned one"
        # structural, even when a conflict rolls every implication back.
        groups, display = lattice.answer_groups()
        boundary: List[int] = []
        for rule in derive_combination_rules(lattice.doc_ids, groups, display):
            bottom = lattice.encode(rule.required_sources)
            top = lattice.full_mask & ~lattice.encode(rule.excluded_sources)
            for end in (bottom, top):
                if (
                    end != 0
                    and end in maskable
                    and not lattice.evaluated(end)
                    and end not in boundary
                ):
                    boundary.append(end)
        self._evaluate_round([maskable[mask] for mask in boundary])
        remaining = [mask for mask in remaining if not lattice.evaluated(mask)]

        # Implication rounds: imply what the evidence covers, flush a
        # size-major chunk of survivors, let the fresh answers widen the
        # next round's coverage.
        implied_masks: List[int] = []
        conflicts_before = lattice.stats.conflicts
        for round_index in range(PRUNE_ROUNDS):
            survivors: List[int] = []
            for mask in remaining:
                entry = lattice.implied(mask)
                if entry is not None:
                    lattice.commit(entry)
                    implied_masks.append(mask)
                else:
                    survivors.append(mask)
            if not survivors and round_index < PRUNE_ROUNDS - 1:
                break
            if round_index == PRUNE_ROUNDS - 1:
                chunk, remaining = survivors, []
            else:
                # Half the chunk from the small end (cheap safety
                # evidence), half from the large end: maximal survivors
                # are the missing *high* witnesses — once evaluated,
                # they unlock sandwich implications for the middle of
                # their answer's interval in the next round.
                size = max(2 * lattice.k, len(survivors) // 4)
                low = (size + 1) // 2
                high = size - low
                chunk = survivors[:low] + (survivors[-high:] if high else [])
                remaining = survivors[low : len(survivors) - high]
            self._evaluate_round([maskable[mask] for mask in chunk])
            if not remaining:
                break

        # Probe round: deterministically re-evaluate a slice of the
        # implied set — every *suspicious* small implication (one whose
        # recorded subsets do not unanimously support the implied
        # answer: the signature of a non-monotone model slipping past
        # the stability gate), plus one in PROBE_STRIDE of the rest.
        # On a monotone model probes simply confirm; any conflict rolls
        # every implication back to a real evaluation.
        suspicious = []
        trusted = []
        for mask in implied_masks:
            entry = lattice.known(mask)
            if (
                entry is not None
                and entry.inferred
                and bin(mask).count("1") <= PROBE_EXHAUSTIVE_SIZE
                and lattice.conflicting_recorded_face(
                    mask, entry.normalized_answer
                )
            ):
                suspicious.append(mask)
            else:
                trusted.append(mask)
        probes = suspicious + trusted[::PROBE_STRIDE]
        self._evaluate_round([maskable[mask] for mask in probes])
        if lattice.stats.conflicts > conflicts_before:
            rolled_back = lattice.uncommit_inferred()
            self._evaluate_round(
                [maskable[mask] for mask in rolled_back if mask in maskable]
            )
            return len(implied_masks), 0
        return len(implied_masks), len(implied_masks) - len(probes)
