"""Source agreement and disagreement analysis.

Section III-A of the paper: "Knowledge sources may differ in terms of
their consistency.  Our tool can identify consistent and inconsistent
sources. ... RAGE will highlight source agreement and disagreement."

The analysis compares the claims extracted from each pair of context
sources:

* **agreement** — both sources assert the same fact (same entity for
  the same dated event, or the same entity for the same superlative
  topic);
* **conflict** — the sources assert *different* entities for the same
  slot (the same dated event year, or the same superlative topic);
* otherwise the pair is **independent** (no overlapping slots).

Slots are matched on claim years plus topical term overlap, the same
machinery the simulated LLM uses, so the report reflects exactly the
evidence structure the model adjudicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..llm.extraction import Claim, ClaimExtractor, ClaimKind
from ..textproc import Tokenizer
from .context import Context


class PairVerdict(str, Enum):
    """Relationship between two sources' claims."""

    AGREE = "agree"
    CONFLICT = "conflict"
    INDEPENDENT = "independent"


@dataclass(frozen=True)
class ClaimMatch:
    """One compared claim pair backing a verdict."""

    left: Claim
    right: Claim
    verdict: PairVerdict

    def describe(self) -> str:
        """Human-readable sentence for reports."""
        slot = f"({self.left.year})" if self.left.year is not None else "(superlative)"
        if self.verdict is PairVerdict.AGREE:
            return f"both assert {self.left.entity!r} {slot}"
        return f"{self.left.entity!r} vs {self.right.entity!r} {slot}"


@dataclass(frozen=True)
class SourcePairReport:
    """Verdict for one source pair with its supporting claim matches."""

    left_doc_id: str
    right_doc_id: str
    verdict: PairVerdict
    matches: Tuple[ClaimMatch, ...] = ()


@dataclass
class AgreementReport:
    """The full pairwise analysis of a context."""

    pairs: List[SourcePairReport] = field(default_factory=list)

    def conflicts(self) -> List[SourcePairReport]:
        """Pairs with at least one conflicting claim."""
        return [pair for pair in self.pairs if pair.verdict is PairVerdict.CONFLICT]

    def agreements(self) -> List[SourcePairReport]:
        """Pairs that agree (and never conflict)."""
        return [pair for pair in self.pairs if pair.verdict is PairVerdict.AGREE]

    def inconsistent_sources(self) -> List[str]:
        """Doc ids involved in any conflict, sorted."""
        involved = set()
        for pair in self.conflicts():
            involved.add(pair.left_doc_id)
            involved.add(pair.right_doc_id)
        return sorted(involved)

    @property
    def is_consistent(self) -> bool:
        """True when no pair of sources conflicts."""
        return not self.conflicts()


# Stemmed terms shared by nearly every claim sentence regardless of
# topic (claim verbs, intent triggers); never counted as slot overlap.
_GENERIC_TERMS = frozenset(
    {
        "won", "win", "winner", "captur", "claim", "went", "champion",
        "best", "greatest", "top", "finest", "consid", "wide", "often",
        "gener", "regard", "rank", "first", "lead",
    }
)


def _slot_overlap(left: Claim, right: Claim, shared_terms_required: int = 1) -> bool:
    """Do two claims address the same slot (event/topic)?

    Requires shared *content* terms: entity names, claim verbs, intent
    triggers and bare numbers (years, stat values) do not count.
    """
    shared = left.terms & right.terms
    entity_terms = set()
    for claim in (left, right):
        entity_terms.update(claim.entity_key.split())
    content = {
        term
        for term in shared - entity_terms - _GENERIC_TERMS
        if not term.isdigit()
    }
    return len(content) >= shared_terms_required


def _compare(left: Claim, right: Claim) -> Optional[PairVerdict]:
    """Verdict for one claim pair, or None when slots do not align."""
    if left.kind is ClaimKind.AWARD and right.kind is ClaimKind.AWARD:
        if left.year is None or right.year is None or left.year != right.year:
            return None
        if not _slot_overlap(left, right):
            return None
        return (
            PairVerdict.AGREE
            if left.entity_key == right.entity_key
            else PairVerdict.CONFLICT
        )
    superlative_kinds = (ClaimKind.SUPERLATIVE, ClaimKind.RANK_FIRST)
    if left.kind in superlative_kinds and right.kind in superlative_kinds:
        if not _slot_overlap(left, right):
            return None
        return (
            PairVerdict.AGREE
            if left.entity_key == right.entity_key
            else PairVerdict.CONFLICT
        )
    return None


def analyze_agreement(
    context: Context,
    extractor: Optional[ClaimExtractor] = None,
) -> AgreementReport:
    """Pairwise consistency analysis of a context's sources.

    A pair conflicts when *any* aligned claim pair conflicts (one
    contradiction outweighs any number of agreements); it agrees when it
    has agreements and no conflicts; otherwise it is independent.
    """
    extractor = extractor or ClaimExtractor(Tokenizer())
    claims: Dict[str, List[Claim]] = {
        source.doc_id: extractor.extract(source.document.text)
        for source in context.sources
    }
    report = AgreementReport()
    doc_ids = list(context.doc_ids())
    for i, left_id in enumerate(doc_ids):
        for right_id in doc_ids[i + 1 :]:
            matches: List[ClaimMatch] = []
            for left in claims[left_id]:
                for right in claims[right_id]:
                    verdict = _compare(left, right)
                    if verdict is not None:
                        matches.append(
                            ClaimMatch(left=left, right=right, verdict=verdict)
                        )
            if any(m.verdict is PairVerdict.CONFLICT for m in matches):
                verdict = PairVerdict.CONFLICT
            elif matches:
                verdict = PairVerdict.AGREE
            else:
                verdict = PairVerdict.INDEPENDENT
            report.pairs.append(
                SourcePairReport(
                    left_doc_id=left_id,
                    right_doc_id=right_id,
                    verdict=verdict,
                    matches=tuple(matches),
                )
            )
    return report


def render_agreement(report: AgreementReport) -> str:
    """Plain-text rendering for the CLI."""
    lines: List[str] = []
    conflicts = report.conflicts()
    agreements = report.agreements()
    if report.is_consistent:
        lines.append("All sources are mutually consistent.")
    else:
        lines.append(
            f"Inconsistent sources detected: {', '.join(report.inconsistent_sources())}"
        )
    if conflicts:
        lines.append("")
        lines.append("Disagreements:")
        lines.extend(_pair_lines(conflicts, PairVerdict.CONFLICT, "vs"))
    if agreements:
        lines.append("")
        lines.append("Agreements:")
        lines.extend(_pair_lines(agreements, PairVerdict.AGREE, "&"))
    return "\n".join(lines)


def _pair_lines(
    pairs: List[SourcePairReport], verdict: PairVerdict, joiner: str
) -> List[str]:
    """Deduplicated per-pair claim lines (a source asserting the same
    fact through two claim kinds yields one line)."""
    lines: List[str] = []
    for pair in pairs:
        seen: set = set()
        for match in pair.matches:
            if match.verdict is not verdict:
                continue
            description = match.describe()
            if description in seen:
                continue
            seen.add(description)
            lines.append(
                f"  {pair.left_doc_id} {joiner} {pair.right_doc_id}: {description}"
            )
    return lines
