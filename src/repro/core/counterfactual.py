"""Combination counterfactual search — RAGE's primary explanation.

    "A top-down counterfactual must remove a combination of sources
    (subset of Dq) to flip the full-context answer to a target answer.
    ... a bottom-up counterfactual must retain sources to flip the
    empty-context answer to the target answer."

The search "tests combinations in increasing order of subset size", and
within a size "in order of their estimated relevance ... the sum of the
relative relevance scores of all sources within the combination".  It
stops at the first flip or when the evaluation budget is exhausted, so
found counterfactuals are *minimal* in subset size by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..combinatorics.combinations import ordered_combinations
from ..errors import SearchBudgetError
from ..textproc import normalize_answer
from .context import CombinationPerturbation, Context
from .evaluate import ContextEvaluator, scan_candidates
from .lattice import AnswerLattice


class SearchDirection(str, Enum):
    """Which baseline the counterfactual flips."""

    TOP_DOWN = "top_down"
    BOTTOM_UP = "bottom_up"


@dataclass(frozen=True)
class CombinationCounterfactual:
    """A found combination counterfactual.

    For TOP_DOWN, ``changed_sources`` is the *removed* set (the citation
    reads "removing these sources changes the answer"); for BOTTOM_UP it
    is the *retained* set ("these sources suffice to reach the target").
    """

    direction: SearchDirection
    perturbation: CombinationPerturbation
    changed_sources: Tuple[str, ...]
    baseline_answer: str
    new_answer: str
    estimated_relevance: float

    @property
    def size(self) -> int:
        """Number of sources removed (top-down) / retained (bottom-up)."""
        return len(self.changed_sources)


@dataclass
class CombinationSearchResult:
    """Outcome of one counterfactual search."""

    direction: SearchDirection
    baseline_answer: str
    target_answer: Optional[str]
    counterfactual: Optional[CombinationCounterfactual]
    num_evaluations: int
    budget_exhausted: bool
    trail: List[Tuple[Tuple[str, ...], str]] = field(default_factory=list)

    @property
    def found(self) -> bool:
        """True when a counterfactual was found within budget."""
        return self.counterfactual is not None


def search_combination_counterfactual(
    evaluator: ContextEvaluator,
    relevance_scores: Dict[str, float],
    direction: SearchDirection | str = SearchDirection.TOP_DOWN,
    target_answer: Optional[str] = None,
    max_evaluations: int = 1000,
    keep_trail: bool = False,
    batch_size: int = 1,
    lattice: Optional[AnswerLattice] = None,
    adaptive: bool = False,
) -> CombinationSearchResult:
    """Find a minimal combination counterfactual.

    Parameters
    ----------
    evaluator:
        The context/LLM evaluation gateway.
    relevance_scores:
        ``S(q, d, Dq)`` per source (attention- or retrieval-based); used
        to order equal-size candidate combinations.
    direction:
        TOP_DOWN flips the full-context answer by removing sources;
        BOTTOM_UP flips the empty-context answer by retaining sources.
    target_answer:
        Specific answer to flip *to*.  ``None`` accepts any change for
        TOP_DOWN and defaults to the full-context answer for BOTTOM_UP
        (the paper's "citation" reading).
    max_evaluations:
        LLM-call budget for this search, in *real* LLM calls: candidates
        already memoized by the (possibly shared) evaluator are free,
        matching the paper's LLM-call semantics.
    keep_trail:
        Record every (candidate, answer) pair — used by the pruning
        benchmarks; off by default to save memory.
    batch_size:
        Number of un-memoized candidates evaluated per LLM batch.  The
        default of 1 reproduces the paper's strictly sequential search;
        larger values trade a few wasted evaluations past the flip for
        batched-backend throughput.  The reported ``num_evaluations``
        always counts every real call, including chunk members after
        the flip.
    lattice:
        Optional :class:`~repro.core.lattice.AnswerLattice`.  When its
        implication gate is open, candidates whose implied answer
        cannot flip are skipped without an LLM call and an implied flip
        is confirmed by one real evaluation (verify-on-hit) before it
        can be returned — a found counterfactual is always backed by a
        genuine answer.  Trail entries only cover evaluated candidates;
        implied skips never appear in it.
    adaptive:
        Grow the evaluation chunk geometrically while no flip (or
        implied flip) appears and reset it on a near-hit; see
        :func:`repro.core.evaluate.scan_candidates`.
    """
    if max_evaluations <= 0:
        raise SearchBudgetError(f"max_evaluations must be positive, got {max_evaluations}")
    if batch_size < 1:
        raise SearchBudgetError(f"batch_size must be >= 1, got {batch_size}")
    direction = SearchDirection(direction)
    context = evaluator.context
    doc_ids = list(context.doc_ids())

    if direction is SearchDirection.TOP_DOWN:
        baseline = evaluator.original()
    else:
        baseline = evaluator.empty()
        if target_answer is None:
            target_answer = evaluator.original().answer
    target_norm = normalize_answer(target_answer) if target_answer is not None else None

    result = CombinationSearchResult(
        direction=direction,
        baseline_answer=baseline.answer,
        target_answer=target_answer,
        counterfactual=None,
        num_evaluations=0,
        budget_exhausted=False,
    )

    # Candidate subsets: removed sets (top-down) or retained sets
    # (bottom-up), size-major, relevance-ordered within a size.  More
    # relevant sources are more likely to be answer-critical, so both
    # directions try high-relevance subsets first.
    candidates = ordered_combinations(
        doc_ids,
        scores=relevance_scores,
        min_size=1,
        max_size=len(doc_ids),
        descending=True,
    )

    # The budget counts real LLM calls only: the baselines above are the
    # caller's cost (they are shared across every explanation), and memo
    # hits — e.g. subsets a prior insight analysis already evaluated —
    # are free.  scan_candidates owns the chunking/accounting.
    def stream():
        for subset in candidates:
            if direction is SearchDirection.TOP_DOWN:
                perturbation = CombinationPerturbation.from_removal(context, subset)
            else:
                # Retained sets render in *context* order: candidate
                # tuples are only guaranteed context-ordered by the
                # default enumerator, and a relevance-ordered prompt
                # would conflate the combination effect with a
                # permutation effect.
                perturbation = CombinationPerturbation(
                    kept=tuple(sorted(subset, key=context.position_of))
                )
            yield perturbation.apply(context), (subset, perturbation)

    def match(payload, evaluation):
        subset, perturbation = payload
        if keep_trail:
            result.trail.append((subset, evaluation.answer))
        if not _flips(evaluation.normalized_answer, baseline, target_norm):
            return None
        return CombinationCounterfactual(
            direction=direction,
            perturbation=perturbation,
            changed_sources=perturbation.kept
            if direction is SearchDirection.BOTTOM_UP
            else subset,
            baseline_answer=baseline.answer,
            new_answer=evaluation.answer,
            estimated_relevance=sum(relevance_scores.get(d, 0.0) for d in subset),
        )

    result.counterfactual, result.num_evaluations, result.budget_exhausted = (
        scan_candidates(
            evaluator,
            stream(),
            match,
            max_evaluations,
            batch_size,
            lattice=lattice,
            flips=lambda normalized: _flips(normalized, baseline, target_norm),
            # Near-hit (adaptive chunk reset): an answer change that
            # missed the target.  Only meaningful top-down — bottom-up
            # candidates differ from the *empty-context* baseline almost
            # by definition, which would pin the chunk at its floor.
            near=(
                (
                    lambda evaluation: evaluation.normalized_answer
                    != baseline.normalized_answer
                    and evaluation.normalized_answer != target_norm
                )
                if target_norm is not None and direction is SearchDirection.TOP_DOWN
                else None
            ),
            adaptive=adaptive,
        )
    )
    return result


def _flips(candidate_norm: str, baseline, target_norm: Optional[str]) -> bool:
    if target_norm is not None:
        return candidate_norm == target_norm and candidate_norm != baseline.normalized_answer
    return candidate_norm != baseline.normalized_answer
