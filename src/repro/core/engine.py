"""The RAGE engine — the library's front door.

Wires together retrieval (index + BM25), the LLM (wrapped in a cache),
relevance scoring, and every explanation primitive behind one object,
mirroring the architecture of Figure 1: users pose a question, the
retrieval model builds the context, the LLM answers, and the
perturbation/counterfactual searches explain.

Typical use::

    from repro import Rage, RageConfig, SimulatedLLM
    from repro.datasets import load_use_case

    uc = load_use_case("big_three")
    rage = Rage.from_corpus(uc.corpus, SimulatedLLM(knowledge=uc.knowledge),
                            config=RageConfig(k=4))
    answered = rage.ask(uc.query)
    insights = rage.combination_insights(uc.query)
    flip = rage.combination_counterfactual(uc.query)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..attention.positional import PositionPrior
from ..errors import ConfigError
from ..llm.base import GenerationResult, LanguageModel
from ..llm.cache import CachingLLM
from ..llm.prompts import DEFAULT_PROMPT_BUILDER, PromptBuilder
from ..retrieval.bm25 import Scorer
from ..retrieval.document import Corpus, Document
from ..retrieval.index import InvertedIndex
from ..retrieval.searcher import Searcher
from .context import Context
from .counterfactual import (
    CombinationSearchResult,
    SearchDirection,
    search_combination_counterfactual,
)
from .evaluate import ContextEvaluator
from .insights import (
    CombinationInsights,
    PermutationInsights,
    analyze_combinations,
    analyze_permutations,
)
from .optimal import OptimalPermutation, optimal_permutations
from .permutation_cf import PermutationSearchResult, search_permutation_counterfactual
from .sampling import select_combinations, select_permutations
from .scoring import RelevanceMethod, make_scorer


@dataclass(frozen=True)
class RageConfig:
    """Engine configuration.

    Attributes
    ----------
    k:
        Retrieval depth (size of the context ``Dq``).
    relevance_method:
        Which ``S(q, d, Dq)`` orders combinations and weights optimal
        permutations: RETRIEVAL (BM25 scores) or ATTENTION (aggregated
        LLM attention).
    max_evaluations:
        LLM-call budget per counterfactual search.
    sample_size:
        Default perturbation sample size for the insight analyses;
        ``None`` analyzes all combinations / permutations.
    seed:
        Seed for perturbation sampling.
    expected_prior, expected_depth:
        The user-calibrated expected position-attention distribution
        used by optimal permutations.
    cache:
        Wrap the LLM in a prompt cache (recommended).
    """

    k: int = 10
    relevance_method: RelevanceMethod = RelevanceMethod.RETRIEVAL
    max_evaluations: int = 2000
    sample_size: Optional[int] = None
    seed: int = 0
    expected_prior: PositionPrior = PositionPrior.V_SHAPED
    expected_depth: float = 0.8
    cache: bool = True

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ConfigError(f"k must be positive, got {self.k}")
        if self.max_evaluations <= 0:
            raise ConfigError("max_evaluations must be positive")


@dataclass
class AskResult:
    """Answer to a plain (un-explained) question."""

    query: str
    answer: str
    context: Context
    generation: GenerationResult


@dataclass
class RageReport:
    """One-call bundle of every explanation for a question."""

    query: str
    answer: str
    context: Context
    combination_insights: CombinationInsights
    permutation_insights: Optional[PermutationInsights]
    top_down: CombinationSearchResult
    bottom_up: CombinationSearchResult
    permutation_counterfactual: Optional[PermutationSearchResult]
    optimal: List[OptimalPermutation] = field(default_factory=list)


class Rage:
    """Retrieval-Augmented Generation Explainer."""

    def __init__(
        self,
        index: InvertedIndex,
        llm: LanguageModel,
        config: Optional[RageConfig] = None,
        retrieval_scorer: Optional[Scorer] = None,
        prompt_builder: Optional[PromptBuilder] = None,
    ) -> None:
        self.config = config or RageConfig()
        self.index = index
        self.searcher = Searcher(index, scorer=retrieval_scorer)
        self.llm: LanguageModel = CachingLLM(llm) if self.config.cache else llm
        self.prompt_builder = prompt_builder or DEFAULT_PROMPT_BUILDER

    @classmethod
    def from_corpus(
        cls,
        corpus: Corpus | Sequence[Document],
        llm: LanguageModel,
        config: Optional[RageConfig] = None,
        retrieval_scorer: Optional[Scorer] = None,
    ) -> "Rage":
        """Index a corpus and build the engine in one step."""
        index = InvertedIndex.build(corpus)
        return cls(index, llm, config=config, retrieval_scorer=retrieval_scorer)

    # -- retrieval and answering ------------------------------------------

    def retrieve(self, query: str, k: Optional[int] = None) -> Context:
        """Build the context ``Dq`` for a query."""
        result = self.searcher.search(query, k=k or self.config.k)
        return Context.from_retrieval(result)

    def ask(self, query: str, context: Optional[Context] = None) -> AskResult:
        """Retrieve (unless given a context) and answer."""
        context = context or self.retrieve(query)
        evaluator = self._evaluator(context)
        generation = evaluator.generation(context.doc_ids())
        return AskResult(
            query=query,
            answer=generation.answer,
            context=context,
            generation=generation,
        )

    # -- explanations -------------------------------------------------------

    def relevance_scores(self, context: Context) -> Dict[str, float]:
        """``S(q, d, Dq)`` under the configured method."""
        scorer = make_scorer(
            self.config.relevance_method, llm=self.llm, prompt_builder=self.prompt_builder
        )
        return scorer.scores(context)

    def combination_insights(
        self,
        query: str,
        context: Optional[Context] = None,
        sample_size: Optional[int] = None,
        include_empty: bool = False,
    ) -> CombinationInsights:
        """Answer distribution, table and rules over combinations."""
        context = context or self.retrieve(query)
        evaluator = self._evaluator(context)
        perturbations = select_combinations(
            context,
            sample_size=sample_size if sample_size is not None else self.config.sample_size,
            seed=self.config.seed,
            include_empty=include_empty,
        )
        return analyze_combinations(evaluator, perturbations)

    def permutation_insights(
        self,
        query: str,
        context: Optional[Context] = None,
        sample_size: Optional[int] = None,
    ) -> PermutationInsights:
        """Answer distribution, table and rules over permutations."""
        context = context or self.retrieve(query)
        evaluator = self._evaluator(context)
        perturbations = select_permutations(
            context,
            sample_size=sample_size if sample_size is not None else self.config.sample_size,
            seed=self.config.seed,
        )
        return analyze_permutations(evaluator, perturbations)

    def combination_counterfactual(
        self,
        query: str,
        context: Optional[Context] = None,
        direction: SearchDirection | str = SearchDirection.TOP_DOWN,
        target_answer: Optional[str] = None,
        max_evaluations: Optional[int] = None,
    ) -> CombinationSearchResult:
        """Minimal source removal (top-down) or retention (bottom-up)
        that flips the answer."""
        context = context or self.retrieve(query)
        evaluator = self._evaluator(context)
        return search_combination_counterfactual(
            evaluator,
            relevance_scores=self.relevance_scores(context),
            direction=direction,
            target_answer=target_answer,
            max_evaluations=max_evaluations or self.config.max_evaluations,
        )

    def permutation_counterfactual(
        self,
        query: str,
        context: Optional[Context] = None,
        target_answer: Optional[str] = None,
        max_evaluations: Optional[int] = None,
    ) -> PermutationSearchResult:
        """Most-similar reordering (max Kendall tau) that flips the answer."""
        context = context or self.retrieve(query)
        evaluator = self._evaluator(context)
        return search_permutation_counterfactual(
            evaluator,
            target_answer=target_answer,
            max_evaluations=max_evaluations or self.config.max_evaluations,
        )

    def optimal_permutations(
        self,
        query: str,
        context: Optional[Context] = None,
        s: int = 5,
        method: str = "ch",
    ) -> List[OptimalPermutation]:
        """Top-s placements of sources into high-attention positions."""
        context = context or self.retrieve(query)
        return optimal_permutations(
            context,
            relevance_scores=self.relevance_scores(context),
            s=s,
            prior=self.config.expected_prior,
            depth=self.config.expected_depth,
            method=method,
        )

    def source_salience(
        self,
        query: str,
        context: Optional[Context] = None,
        answer: Optional[str] = None,
        sample_size: Optional[int] = None,
    ):
        """Per-source influence contrasts for an answer (defaults to the
        most frequent answer across the analyzed combinations)."""
        from .stability import source_salience

        context = context or self.retrieve(query)
        insights = self.combination_insights(
            query, context=context, sample_size=sample_size
        )
        return source_salience(insights, answer=answer)

    def order_stability(
        self,
        query: str,
        context: Optional[Context] = None,
        sample_size: Optional[int] = 50,
    ):
        """Order-stability summary over sampled permutations."""
        from .sampling import select_permutations
        from .stability import order_stability

        context = context or self.retrieve(query)
        evaluator = self._evaluator(context)
        perturbations = select_permutations(
            context, sample_size=sample_size, seed=self.config.seed
        )
        return order_stability(evaluator, perturbations)

    def explain(
        self,
        query: str,
        context: Optional[Context] = None,
        sample_size: Optional[int] = None,
        optimal_s: int = 3,
        wide_permutation_budget: int = 200,
    ) -> RageReport:
        """Everything at once (powers the CLI report command).

        Contexts wider than the exhaustive permutation cap run the lazy
        decreasing-tau counterfactual search under
        ``wide_permutation_budget`` LLM calls instead of skipping.
        """
        context = context or self.retrieve(query)
        answered = self.ask(query, context=context)
        combination = self.combination_insights(query, context=context, sample_size=sample_size)
        permutation: Optional[PermutationInsights] = None
        sample = sample_size if sample_size is not None else self.config.sample_size
        if context.k <= 8 or sample is not None:
            permutation = self.permutation_insights(query, context=context, sample_size=sample)
        if context.k <= 8:
            permutation_cf = self.permutation_counterfactual(query, context=context)
        else:
            permutation_cf = self.permutation_counterfactual(
                query,
                context=context,
                max_evaluations=min(wide_permutation_budget, self.config.max_evaluations),
            )
        return RageReport(
            query=query,
            answer=answered.answer,
            context=context,
            combination_insights=combination,
            permutation_insights=permutation,
            top_down=self.combination_counterfactual(
                query, context=context, direction=SearchDirection.TOP_DOWN
            ),
            bottom_up=self.combination_counterfactual(
                query, context=context, direction=SearchDirection.BOTTOM_UP
            ),
            permutation_counterfactual=permutation_cf,
            optimal=self.optimal_permutations(query, context=context, s=optimal_s),
        )

    # -- internals ---------------------------------------------------------

    def _evaluator(self, context: Context) -> ContextEvaluator:
        return ContextEvaluator(self.llm, context, self.prompt_builder)
