"""The RAGE engine — the library's front door.

Wires together retrieval (index + BM25), the LLM (wrapped in a cache),
relevance scoring, and every explanation primitive behind one object,
mirroring the architecture of Figure 1: users pose a question, the
retrieval model builds the context, the LLM answers, and the
perturbation/counterfactual searches explain.

Typical use::

    from repro import Rage, RageConfig, SimulatedLLM
    from repro.datasets import load_use_case

    uc = load_use_case("big_three")
    rage = Rage.from_corpus(uc.corpus, SimulatedLLM(knowledge=uc.knowledge),
                            config=RageConfig(k=4))
    answered = rage.ask(uc.query)
    insights = rage.combination_insights(uc.query)
    flip = rage.combination_counterfactual(uc.query)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..attention.positional import PositionPrior
from ..errors import ConfigError
from ..exec import (
    DEFAULT_THREAD_WORKERS,
    AsyncioBackend,
    CoalescingBackend,
    ExecutionBackend,
    ThreadedBackend,
    make_backend,
)
from ..llm.base import GenerationResult, LanguageModel
from ..llm.cache import CachingLLM
from ..llm.remote import RemoteLLM, parse_model_spec
from ..llm.router import (
    DEFAULT_BREAKER_COOLDOWN,
    DEFAULT_BREAKER_THRESHOLD,
    RouterLLM,
)
from ..llm.simulated import SimulatedLLM
from ..llm.store import PromptStore
from ..llm.prompts import DEFAULT_PROMPT_BUILDER, PromptBuilder
from ..llm.transport import DEFAULT_TIMEOUT, RetryPolicy
from ..retrieval.bm25 import Scorer
from ..retrieval.document import Corpus, Document
from ..retrieval.index import InvertedIndex
from ..retrieval.searcher import Searcher
from ..retrieval.sqlindex import (
    FUSION_STRATEGIES,
    RETRIEVAL_MODES,
    SqliteIndex,
    SqliteSearcher,
    make_retrieval_scorer,
    open_index,
)
from .context import Context
from .counterfactual import (
    CombinationSearchResult,
    SearchDirection,
    search_combination_counterfactual,
)
from .evaluate import ContextEvaluator
from .insights import (
    CombinationInsights,
    PermutationInsights,
    analyze_combinations,
    analyze_permutations,
)
from .optimal import OptimalPermutation, optimal_permutations
from .lattice import AnswerLattice
from .permutation_cf import PermutationSearchResult, search_permutation_counterfactual
from .plan import EvaluationPlan, PlanStats
from .sampling import select_combinations, select_permutations
from .scoring import RelevanceMethod, make_scorer
from .stability import OrderStability, order_stability as compute_order_stability


@dataclass(frozen=True)
class RageConfig:
    """Engine configuration.

    Attributes
    ----------
    k:
        Retrieval depth (size of the context ``Dq``).
    relevance_method:
        Which ``S(q, d, Dq)`` orders combinations and weights optimal
        permutations: RETRIEVAL (BM25 scores) or ATTENTION (aggregated
        LLM attention).
    max_evaluations:
        LLM-call budget per counterfactual search.
    sample_size:
        Default perturbation sample size for the insight analyses;
        ``None`` analyzes all combinations / permutations.
    seed:
        Seed for perturbation sampling.
    expected_prior, expected_depth:
        The user-calibrated expected position-attention distribution
        used by optimal permutations.
    cache:
        Wrap the LLM in a prompt cache (recommended).
    batch_workers:
        Thread-pool width for batched evaluation when the LLM has no
        native ``generate_batch`` (useful for I/O-bound remote
        backends); ``None`` keeps batch misses sequential.  Shorthand
        for ``backend="threaded:N"``.
    backend:
        Execution-backend spec for every evaluation batch: ``serial``
        (default), ``threaded[:N]`` (thread pool) or ``asyncio[:N]``
        (event loop driving the LLM's async contract, at most ``N``
        calls in flight).  See :mod:`repro.exec`.
    cache_dir:
        Directory for the content-addressed persistent generation
        store (:class:`~repro.llm.store.PromptStore`).  The prompt
        cache gains a write-through disk tier shared across processes:
        a re-run report answers warm with zero real LLM calls.
        Requires ``cache=True``.
    cache_max_bytes:
        LRU size cap for the persistent store; ``None`` = unbounded.
    single_flight:
        Coalesce concurrent cache misses on the same key onto one real
        LLM call (default on; see :mod:`repro.llm.coalesce`): the
        second simultaneous requester of a prompt awaits the first's
        in-flight result instead of dispatching its own.  The registry
        lives on the prompt-cache wrapper, so with ``cache=False``
        there is nothing to coalesce and the flag is inert.  ``False``
        restores the historical every-miss-dispatches path verbatim.
    batch_window_ms:
        Opt-in cross-request micro-batch window (milliseconds): hold
        the first evaluation batch submitted to the execution backend
        open for up to this long, merge every batch that arrives in
        the window — across requests and tenants — and flush them as
        one native batch (see :mod:`repro.exec.coalesce`).  ``None``
        (default) disables the window; it is a throughput/latency
        trade that pays off when the model rewards bigger batches.
    search_batch_size:
        Un-memoized candidates per LLM batch inside the sequential
        counterfactual searches.  1 (default) is the paper's strictly
        serial search; larger values trade a few evaluations past the
        flip for batched-backend throughput.
    plan_pruning:
        Let ``explain()`` attach an
        :class:`~repro.core.lattice.AnswerLattice` to its evaluation
        plan: combination answers that are implied by already-evaluated
        combinations (monotone sandwich bounds between confirmed
        answer-rule intervals) are pruned from the batch instead of
        paying an LLM call, and the counterfactual searches skip
        candidates whose implied answer cannot flip (implied flips are
        verified by one real evaluation).  Implication self-gates on
        observed order stability and rolls back on any conflict, so
        position-sensitive contexts degrade to the unpruned plan;
        ``rage report --no-prune`` and ``plan_pruning=False`` disable
        it outright.
    adaptive_search_batching:
        Grow the counterfactual searches' evaluation chunk
        geometrically (from ``search_batch_size``, reset on near-hits)
        while no flip appears — fewer, larger batches for real
        transformer backends.  Off by default: the paper's search is
        strictly sequential and adaptive chunks may charge a few extra
        evaluations past the flip.
    model:
        Optional model spec for engine-built models.  ``None`` (the
        default) means the caller hands :class:`Rage` an LLM instance;
        ``"remote:<provider>:<model>"`` (e.g.
        ``remote:openai:gpt-4o-mini``) makes the engine construct a
        :class:`~repro.llm.remote.RemoteLLM` from the transport fields
        below when no LLM is passed.
    base_url:
        Endpoint root for the remote model; ``None`` = the provider's
        public API.  Point it at a local gateway or fake server for
        hermetic runs.
    api_key_env:
        *Name* of the environment variable holding the API key (the
        key itself never lives in a config); unset variable =
        :class:`ConfigError` at engine construction.
    request_timeout:
        Per-call deadline in seconds, enforced at the innermost
        dispatch layer only (never stacked): for an engine-built
        remote model it is the per-HTTP-request timeout — each retry
        attempt gets its own deadline, so the retry policy stays
        reachable and total time is bounded by roughly
        ``(retries + 1) * request_timeout + retry_budget``; for local
        models it deadlines each dispatched call (through the cache
        wrapper when ``cache=True``, else at the backend) — note a
        model exposing only a native batch entry point is one call, so
        the bound covers its whole miss batch.  ``None`` keeps the
        historical wait-forever behavior for local models; remote
        models then use the transport default.
    rate_limit / rate_burst:
        Token-bucket throttle for the remote model (requests/second and
        burst), shared across all concurrent calls; ``None`` =
        unthrottled.
    retries:
        Additional attempts after a failed remote request (429,
        transient 5xx, timeout, malformed body); 0 = fail on first
        fault.
    retry_budget:
        Cap on cumulative backoff sleep per request, seconds.
    providers:
        Ordered provider-pool specs for a
        :class:`~repro.llm.router.RouterLLM` — each entry is
        ``remote:<provider>:<model>`` (optionally
        ``remote:<provider>:<model>@<base_url>`` to pin a
        per-provider endpoint) or ``fallback:simulated`` (the local
        deterministic model as a last resort).  Mutually exclusive
        with ``model``: the pool *is* the model.  Remote members share
        the transport fields above (``base_url`` is the default for
        specs without ``@``); every member must answer identically so
        failover changes who served, never the bytes.
    breaker_threshold / breaker_cooldown:
        Per-provider circuit breaker: consecutive transport faults
        before a breaker opens, and seconds before an open breaker
        allows its half-open probe.  ``None`` = the router defaults
        (5 failures, 30 s).  Require ``providers``.
    hedge:
        Fire a backup request on the next healthy provider once the
        primary exceeds the hedge delay (async dispatch only); first
        response wins, the loser is cancelled and its rate-limit
        reservation refunded.  Requires ``providers``.
    hedge_delay:
        Seconds before the backup fires; ``None`` = the primary's
        observed p95 latency.  Requires ``hedge=True``.
    index_dir:
        Directory for the persistent SQLite retrieval index
        (:class:`~repro.retrieval.sqlindex.SqliteIndex`).
        :meth:`Rage.from_corpus` then opens (or creates) the index
        there and syncs the corpus incrementally — unchanged documents
        are never re-analyzed, so a warm restart serves the first query
        without rebuilding.  ``None`` (default) keeps the historical
        in-memory :class:`~repro.retrieval.index.InvertedIndex`.
    retrieval_mode:
        How the context ``Dq`` is ranked: ``"bm25"`` (sparse,
        default), ``"dense"`` (hashed-embedding cosine) or ``"hybrid"``
        (scale-safe fusion of both).  Dense vectors live in the
        persistent index, so the non-sparse modes require
        ``index_dir``.
    fusion:
        Hybrid fusion strategy: ``"minmax"`` (min-max-normalized
        linear fusion, the default) or ``"rrf"`` (reciprocal-rank
        fusion).  Requires ``retrieval_mode="hybrid"``.
    hybrid_alpha:
        Sparse-side weight of the hybrid fusion, in ``[0, 1]``
        (default 0.5).  Requires ``retrieval_mode="hybrid"``.
    """

    k: int = 10
    relevance_method: RelevanceMethod = RelevanceMethod.RETRIEVAL
    max_evaluations: int = 2000
    sample_size: Optional[int] = None
    seed: int = 0
    expected_prior: PositionPrior = PositionPrior.V_SHAPED
    expected_depth: float = 0.8
    cache: bool = True
    batch_workers: Optional[int] = None
    backend: Optional[str] = None
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    single_flight: bool = True
    batch_window_ms: Optional[float] = None
    search_batch_size: int = 1
    plan_pruning: bool = True
    adaptive_search_batching: bool = False
    model: Optional[str] = None
    base_url: Optional[str] = None
    api_key_env: Optional[str] = None
    request_timeout: Optional[float] = None
    rate_limit: Optional[float] = None
    rate_burst: Optional[int] = None
    retries: int = 3
    retry_budget: float = 30.0
    providers: Optional[Sequence[str]] = None
    breaker_threshold: Optional[int] = None
    breaker_cooldown: Optional[float] = None
    hedge: bool = False
    hedge_delay: Optional[float] = None
    index_dir: Optional[str] = None
    retrieval_mode: str = "bm25"
    fusion: Optional[str] = None
    hybrid_alpha: Optional[float] = None

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ConfigError(f"k must be positive, got {self.k}")
        if self.max_evaluations <= 0:
            raise ConfigError("max_evaluations must be positive")
        if self.batch_workers is not None and self.batch_workers < 1:
            raise ConfigError("batch_workers must be >= 1 (or None)")
        if self.search_batch_size < 1:
            raise ConfigError("search_batch_size must be >= 1")
        if self.cache_dir is not None and not self.cache:
            raise ConfigError("cache_dir requires cache=True (the disk store "
                              "is a tier of the prompt cache)")
        if self.cache_max_bytes is not None and self.cache_max_bytes < 1:
            raise ConfigError("cache_max_bytes must be >= 1 (or None)")
        if self.batch_window_ms is not None and self.batch_window_ms <= 0:
            raise ConfigError(
                f"batch_window_ms must be > 0 milliseconds (or None to "
                f"disable the window), got {self.batch_window_ms}"
            )
        if self.model is not None and self.providers is not None:
            raise ConfigError(
                "model and providers are mutually exclusive: the provider "
                "pool *is* the model (put the spec in providers instead)"
            )
        if self.model is not None:
            parse_model_spec(self.model)  # validate the spec shape
        has_remote_provider = False
        if self.providers is not None:
            # Normalize to a tuple so the frozen config hashes and the
            # pool order is pinned.
            object.__setattr__(self, "providers", tuple(self.providers))
            if not self.providers:
                raise ConfigError(
                    "providers must name at least one spec (or be None)"
                )
            if len(set(self.providers)) != len(self.providers):
                raise ConfigError(
                    f"duplicate provider specs in {list(self.providers)!r}"
                )
            for spec in self.providers:
                parse_provider_spec(spec)  # validate each entry's shape
            has_remote_provider = any(
                spec != FALLBACK_SIMULATED for spec in self.providers
            )
        if self.model is None and not has_remote_provider:
            inert = [
                name
                for name, value in (
                    ("base_url", self.base_url),
                    ("api_key_env", self.api_key_env),
                    ("rate_limit", self.rate_limit),
                    ("rate_burst", self.rate_burst),
                )
                if value is not None
            ]
            if inert:
                # Silently ignoring these would let a mistyped CLI run
                # "succeed" against the simulated model while the user
                # believes their endpoint was exercised.
                raise ConfigError(
                    f"{', '.join(inert)} only affect remote models; set "
                    "model='remote:<provider>:<model>' (or drop them)"
                )
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ConfigError(
                f"breaker_threshold must be >= 1 (or None), "
                f"got {self.breaker_threshold}"
            )
        if self.breaker_cooldown is not None and self.breaker_cooldown < 0:
            raise ConfigError(
                "breaker_cooldown must be >= 0 seconds (or None)"
            )
        if self.hedge_delay is not None and self.hedge_delay <= 0:
            raise ConfigError("hedge_delay must be > 0 seconds (or None)")
        if self.providers is None:
            inert_router = [
                name
                for name, value in (
                    ("breaker_threshold", self.breaker_threshold),
                    ("breaker_cooldown", self.breaker_cooldown),
                    ("hedge_delay", self.hedge_delay),
                )
                if value is not None
            ]
            if self.hedge:
                inert_router.append("hedge")
            if inert_router:
                raise ConfigError(
                    f"{', '.join(inert_router)} only affect a provider "
                    "pool; set providers=[...] (or drop them)"
                )
        elif self.hedge_delay is not None and not self.hedge:
            raise ConfigError(
                "hedge_delay without hedge=True has no effect"
            )
        if self.base_url is not None and not self.base_url.startswith(
            ("http://", "https://")
        ):
            raise ConfigError(f"base_url must be http(s), got {self.base_url!r}")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ConfigError("request_timeout must be > 0 seconds (or None)")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ConfigError("rate_limit must be > 0 requests/sec (or None)")
        if self.rate_burst is not None and self.rate_burst < 1:
            raise ConfigError("rate_burst must be >= 1 (or None)")
        if self.retrieval_mode not in RETRIEVAL_MODES:
            raise ConfigError(
                f"retrieval_mode must be one of {RETRIEVAL_MODES}, "
                f"got {self.retrieval_mode!r}"
            )
        if self.retrieval_mode != "bm25" and self.index_dir is None:
            raise ConfigError(
                f"retrieval_mode={self.retrieval_mode!r} requires index_dir: "
                "dense vectors live in the persistent index"
            )
        if self.fusion is not None and self.fusion not in FUSION_STRATEGIES:
            raise ConfigError(
                f"fusion must be one of {FUSION_STRATEGIES}, got {self.fusion!r}"
            )
        if self.hybrid_alpha is not None and not 0.0 <= self.hybrid_alpha <= 1.0:
            raise ConfigError(
                f"hybrid_alpha must be in [0, 1], got {self.hybrid_alpha}"
            )
        if self.retrieval_mode != "hybrid":
            inert_fusion = [
                name
                for name, value in (
                    ("fusion", self.fusion),
                    ("hybrid_alpha", self.hybrid_alpha),
                )
                if value is not None
            ]
            if inert_fusion:
                raise ConfigError(
                    f"{', '.join(inert_fusion)} only affect hybrid fusion; "
                    "set retrieval_mode='hybrid' (or drop them)"
                )
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.retry_budget < 0:
            raise ConfigError(f"retry_budget must be >= 0, got {self.retry_budget}")
        make_backend(
            self.backend,
            batch_workers=self.batch_workers,
            timeout=self.request_timeout,
        )  # validate spec


#: Provider spec naming the deterministic simulated model as the last
#: rung of a failover pool.
FALLBACK_SIMULATED = "fallback:simulated"


def parse_provider_spec(spec: str):
    """Validate and split one ``RageConfig.providers`` entry.

    Two shapes are accepted:

    * ``remote:<provider>:<model>[@<base_url>]`` — a remote endpoint;
      the optional ``@<base_url>`` pins that member to its own host
      (two pool members may run the same model behind different
      endpoints).  Returns ``("remote", (provider, model, base_url))``
      with ``base_url`` ``None`` when not pinned.
    * ``fallback:simulated`` — the deterministic local model.  Returns
      ``("fallback", None)``.
    """
    if not isinstance(spec, str):
        raise ConfigError(
            f"provider spec must be a string, got {type(spec).__name__}"
        )
    if spec == FALLBACK_SIMULATED:
        return "fallback", None
    if spec.startswith("fallback:"):
        raise ConfigError(
            f"unknown fallback spec {spec!r}: only "
            f"{FALLBACK_SIMULATED!r} is supported"
        )
    head, _, base_url = spec.partition("@")
    provider, model_id = parse_model_spec(head)
    if base_url:
        if not base_url.startswith(("http://", "https://")):
            raise ConfigError(
                f"provider spec {spec!r}: base_url after '@' must start "
                "with http:// or https://"
            )
    return "remote", (provider, model_id, base_url or None)


def build_remote_llm(config: RageConfig) -> RemoteLLM:
    """Construct the :class:`~repro.llm.remote.RemoteLLM` a config names.

    Used by :class:`Rage` when no LLM instance is handed in; also the
    one place the config's transport fields (timeout, rate, retries)
    become a live policy stack.
    """
    if config.model is None:
        raise ConfigError(
            "no model to build: pass an LLM instance, set "
            "RageConfig.model to a remote:<provider>:<model> spec, or "
            "name a provider pool in RageConfig.providers"
        )
    provider, model_id = parse_model_spec(config.model)
    return _build_remote_member(config, provider, model_id, config.base_url)


def _build_remote_member(
    config: RageConfig,
    provider: str,
    model_id: str,
    base_url: Optional[str],
) -> RemoteLLM:
    """One remote endpoint wired with the config's transport policy."""
    return RemoteLLM(
        provider,
        model_id,
        base_url=base_url,
        api_key_env=config.api_key_env,
        timeout=(
            config.request_timeout
            if config.request_timeout is not None
            else DEFAULT_TIMEOUT
        ),
        rate_limit=config.rate_limit,
        rate_burst=config.rate_burst,
        retry=RetryPolicy(
            max_attempts=config.retries + 1, budget=config.retry_budget
        ),
    )


def build_model_chain(
    config: RageConfig, knowledge=None
) -> LanguageModel:
    """Construct the model a config names: single remote or router pool.

    With ``config.providers`` unset this is :func:`build_remote_llm`.
    Otherwise each spec becomes a pool member (remote endpoints share
    the config's transport fields; a ``fallback:simulated`` entry gets
    a :class:`~repro.llm.simulated.SimulatedLLM` seeded with
    ``knowledge``) and the pool is wrapped in a
    :class:`~repro.llm.router.RouterLLM` with the config's breaker and
    hedging policy.
    """
    if config.providers is None:
        return build_remote_llm(config)
    members: List[LanguageModel] = []
    for spec in config.providers:
        kind, payload = parse_provider_spec(spec)
        if kind == "fallback":
            members.append(SimulatedLLM(knowledge=knowledge))
        else:
            provider, model_id, base_url = payload
            members.append(
                _build_remote_member(
                    config, provider, model_id, base_url or config.base_url
                )
            )
    return RouterLLM(
        members,
        breaker_threshold=(
            config.breaker_threshold
            if config.breaker_threshold is not None
            else DEFAULT_BREAKER_THRESHOLD
        ),
        breaker_cooldown=(
            config.breaker_cooldown
            if config.breaker_cooldown is not None
            else DEFAULT_BREAKER_COOLDOWN
        ),
        hedge=config.hedge,
        hedge_delay=config.hedge_delay,
    )


@dataclass
class AskResult:
    """Answer to a plain (un-explained) question."""

    query: str
    answer: str
    context: Context
    generation: GenerationResult


@dataclass
class RageReport:
    """One-call bundle of every explanation for a question.

    ``plan_stats`` carries the evaluation plan's flush accounting when
    ``explain()`` pre-batched the report; ``implied`` and ``pruned``
    surface the answer-implication savings (lattice-implied answers
    consumed, and LLM calls avoided net of verification probes) — both
    zero when plan pruning is disabled or self-gated off.
    """

    query: str
    answer: str
    context: Context
    combination_insights: CombinationInsights
    permutation_insights: Optional[PermutationInsights]
    top_down: CombinationSearchResult
    bottom_up: CombinationSearchResult
    permutation_counterfactual: Optional[PermutationSearchResult]
    optimal: List[OptimalPermutation] = field(default_factory=list)
    stability: Optional[OrderStability] = None
    llm_calls: int = 0
    plan_stats: Optional[PlanStats] = None
    implied: int = 0
    pruned: int = 0


class Rage:
    """Retrieval-Augmented Generation Explainer."""

    def __init__(
        self,
        index: InvertedIndex | SqliteIndex,
        llm: Optional[LanguageModel] = None,
        config: Optional[RageConfig] = None,
        retrieval_scorer: Optional[Scorer] = None,
        prompt_builder: Optional[PromptBuilder] = None,
    ) -> None:
        self.config = config or RageConfig()
        # The per-call deadline is enforced at exactly ONE layer — the
        # innermost dispatch that still sees individual prompts:
        #
        # * engine-built remote models enforce it inside the transport
        #   (per HTTP request, so retries/throttling stay reachable);
        #   no dispatch-level deadline on top, or the first hung
        #   request would consume the whole budget and the configured
        #   retries could never run;
        # * with the cache on, CachingLLM deadlines its *miss*
        #   dispatch per-call; the backend must not re-apply the bound
        #   or it would treat the wrapper's batch entry point as one
        #   call and deadline the whole (healthy) batch;
        # * only a cache-less local model leaves enforcement to the
        #   backend itself.
        dispatch_timeout = self.config.request_timeout
        if llm is None:
            # ``config.model`` / ``config.providers`` name endpoints the
            # engine can build itself; every other model kind needs an
            # instance.  No dispatch-level deadline on top: each member
            # enforces its own transport timeout, and a dispatch bound
            # would kill the router's failover walk mid-pool.
            llm = build_model_chain(self.config)
            dispatch_timeout = None
        self.index = index
        if retrieval_scorer is None and self.config.retrieval_mode != "bm25":
            # Dense/hybrid ranking needs the vectors only a persistent
            # index stores; an in-memory index here means the config and
            # the construction path disagree.
            if not isinstance(index, SqliteIndex):
                raise ConfigError(
                    f"retrieval_mode={self.config.retrieval_mode!r} needs a "
                    "persistent SqliteIndex (build the engine with "
                    "from_corpus and config.index_dir)"
                )
            retrieval_scorer = make_retrieval_scorer(
                index,
                mode=self.config.retrieval_mode,
                fusion=self.config.fusion or "minmax",
                alpha=(
                    self.config.hybrid_alpha
                    if self.config.hybrid_alpha is not None
                    else 0.5
                ),
            )
        if isinstance(index, SqliteIndex):
            # Snapshot-per-search: rankings never straddle a concurrent
            # indexer commit.
            self.searcher: Searcher = SqliteSearcher(index, scorer=retrieval_scorer)
        else:
            self.searcher = Searcher(index, scorer=retrieval_scorer)
        self.backend: ExecutionBackend = make_backend(
            self.config.backend,
            batch_workers=self.config.batch_workers,
            timeout=None if self.config.cache else dispatch_timeout,
        )
        self.store: Optional[PromptStore] = (
            PromptStore(self.config.cache_dir, max_bytes=self.config.cache_max_bytes)
            if self.config.cache_dir is not None
            else None
        )
        if self.config.cache:
            # The backend's capacity must survive the cache boundary:
            # CachingLLM forwards only *misses* to the inner model, so
            # the backend's concurrency bound is handed to the wrapper —
            # threaded width as the pool size, and `capacity` as the
            # in-flight bound for async-capable inner models (serial
            # stays serial: capacity 1).  Explicit batch_workers wins.
            inner_workers = self.config.batch_workers
            if inner_workers is None and isinstance(self.backend, ThreadedBackend):
                inner_workers = self.backend.max_workers
            elif inner_workers is None and isinstance(self.backend, AsyncioBackend):
                # Sync-only inner models still deserve the requested
                # concurrency: the in-flight bound doubles as the
                # thread-pool width for the miss batch.
                inner_workers = self.backend.max_inflight or DEFAULT_THREAD_WORKERS
            self.llm: LanguageModel = CachingLLM(
                llm,
                batch_workers=inner_workers,
                max_inflight=self.backend.capacity,
                timeout=dispatch_timeout,
                store=self.store,
                single_flight=self.config.single_flight,
            )
        else:
            self.llm = llm
        if self.config.batch_window_ms is not None:
            # Wrapped last, after the capacity hand-off above read the
            # executing backend directly; the window layer reports the
            # same capacity/timeout and merges concurrent evaluation
            # batches before they reach it.
            self.backend = CoalescingBackend(
                self.backend, self.config.batch_window_ms
            )
        self.prompt_builder = prompt_builder or DEFAULT_PROMPT_BUILDER

    @classmethod
    def from_corpus(
        cls,
        corpus: Corpus | Sequence[Document],
        llm: Optional[LanguageModel] = None,
        config: Optional[RageConfig] = None,
        retrieval_scorer: Optional[Scorer] = None,
    ) -> "Rage":
        """Index a corpus and build the engine in one step.

        ``llm=None`` builds the model from ``config.model`` (remote
        specs only — see :func:`build_remote_llm`).

        With ``config.index_dir`` set, the corpus is mirrored into the
        persistent SQLite index at that directory instead of an
        in-memory rebuild: unchanged documents are detected by content
        hash and skipped (zero re-tokenization on a warm restart),
        changed ones re-indexed, and documents no longer in the corpus
        withdrawn.
        """
        config = config or RageConfig()
        if config.index_dir is not None:
            index: InvertedIndex | SqliteIndex = open_index(
                config.index_dir, dense=config.retrieval_mode != "bm25"
            )
            index.sync(corpus, remove_missing=True)
        else:
            index = InvertedIndex.build(corpus)
        return cls(index, llm, config=config, retrieval_scorer=retrieval_scorer)

    # -- retrieval and answering ------------------------------------------

    def retrieve(self, query: str, k: Optional[int] = None) -> Context:
        """Build the context ``Dq`` for a query."""
        result = self.searcher.search(query, k=k or self.config.k)
        return Context.from_retrieval(result)

    def ask(
        self,
        query: str,
        context: Optional[Context] = None,
        evaluator: Optional[ContextEvaluator] = None,
    ) -> AskResult:
        """Retrieve (unless given a context) and answer.

        The full generation (with attention trace) also primes the
        evaluator's memo, so a shared evaluator never re-pays for the
        full-context evaluation.
        """
        context = context or self.retrieve(query)
        evaluator = evaluator or self._evaluator(context)
        generation = evaluator.generation(context.doc_ids())
        evaluator.prime(context.doc_ids(), generation)
        return AskResult(
            query=query,
            answer=generation.answer,
            context=context,
            generation=generation,
        )

    # -- explanations -------------------------------------------------------

    def relevance_scores(self, context: Context) -> Dict[str, float]:
        """``S(q, d, Dq)`` under the configured method."""
        scorer = make_scorer(
            self.config.relevance_method, llm=self.llm, prompt_builder=self.prompt_builder
        )
        return scorer.scores(context)

    def combination_insights(
        self,
        query: str,
        context: Optional[Context] = None,
        sample_size: Optional[int] = None,
        include_empty: bool = False,
        evaluator: Optional[ContextEvaluator] = None,
    ) -> CombinationInsights:
        """Answer distribution, table and rules over combinations."""
        context = context or self.retrieve(query)
        evaluator = evaluator or self._evaluator(context)
        perturbations = select_combinations(
            context,
            sample_size=sample_size if sample_size is not None else self.config.sample_size,
            seed=self.config.seed,
            include_empty=include_empty,
        )
        return analyze_combinations(evaluator, perturbations)

    def permutation_insights(
        self,
        query: str,
        context: Optional[Context] = None,
        sample_size: Optional[int] = None,
        evaluator: Optional[ContextEvaluator] = None,
    ) -> PermutationInsights:
        """Answer distribution, table and rules over permutations."""
        context = context or self.retrieve(query)
        evaluator = evaluator or self._evaluator(context)
        perturbations = select_permutations(
            context,
            sample_size=sample_size if sample_size is not None else self.config.sample_size,
            seed=self.config.seed,
        )
        return analyze_permutations(evaluator, perturbations)

    def combination_counterfactual(
        self,
        query: str,
        context: Optional[Context] = None,
        direction: SearchDirection | str = SearchDirection.TOP_DOWN,
        target_answer: Optional[str] = None,
        max_evaluations: Optional[int] = None,
        evaluator: Optional[ContextEvaluator] = None,
    ) -> CombinationSearchResult:
        """Minimal source removal (top-down) or retention (bottom-up)
        that flips the answer."""
        context = context or self.retrieve(query)
        evaluator = evaluator or self._evaluator(context)
        return search_combination_counterfactual(
            evaluator,
            relevance_scores=self.relevance_scores(context),
            direction=direction,
            target_answer=target_answer,
            max_evaluations=max_evaluations or self.config.max_evaluations,
            batch_size=self.config.search_batch_size,
        )

    def permutation_counterfactual(
        self,
        query: str,
        context: Optional[Context] = None,
        target_answer: Optional[str] = None,
        max_evaluations: Optional[int] = None,
        evaluator: Optional[ContextEvaluator] = None,
    ) -> PermutationSearchResult:
        """Most-similar reordering (max Kendall tau) that flips the answer."""
        context = context or self.retrieve(query)
        evaluator = evaluator or self._evaluator(context)
        return search_permutation_counterfactual(
            evaluator,
            target_answer=target_answer,
            max_evaluations=max_evaluations or self.config.max_evaluations,
            batch_size=self.config.search_batch_size,
        )

    def optimal_permutations(
        self,
        query: str,
        context: Optional[Context] = None,
        s: int = 5,
        method: str = "ch",
    ) -> List[OptimalPermutation]:
        """Top-s placements of sources into high-attention positions."""
        context = context or self.retrieve(query)
        return optimal_permutations(
            context,
            relevance_scores=self.relevance_scores(context),
            s=s,
            prior=self.config.expected_prior,
            depth=self.config.expected_depth,
            method=method,
        )

    def source_salience(
        self,
        query: str,
        context: Optional[Context] = None,
        answer: Optional[str] = None,
        sample_size: Optional[int] = None,
    ):
        """Per-source influence contrasts for an answer (defaults to the
        most frequent answer across the analyzed combinations)."""
        from .stability import source_salience

        context = context or self.retrieve(query)
        insights = self.combination_insights(
            query, context=context, sample_size=sample_size
        )
        return source_salience(insights, answer=answer)

    def order_stability(
        self,
        query: str,
        context: Optional[Context] = None,
        sample_size: Optional[int] = 50,
        evaluator: Optional[ContextEvaluator] = None,
    ) -> OrderStability:
        """Order-stability summary over sampled permutations."""
        context = context or self.retrieve(query)
        evaluator = evaluator or self._evaluator(context)
        perturbations = select_permutations(
            context, sample_size=sample_size, seed=self.config.seed
        )
        return compute_order_stability(evaluator, perturbations)

    def explain(
        self,
        query: str,
        context: Optional[Context] = None,
        sample_size: Optional[int] = None,
        optimal_s: int = 3,
        wide_permutation_budget: int = 200,
        stability_sample: int = 50,
        permutation_sample: Optional[int] = None,
    ) -> RageReport:
        """Everything at once (powers the CLI report command).

        One :class:`~repro.core.evaluate.ContextEvaluator` — one memo,
        one LLM-call counter — is shared across every sub-explanation,
        and every enumerable perturbation set (both baselines, the
        combination insight set, the permutation insight and stability
        sets) is pre-batched through an
        :class:`~repro.core.plan.EvaluationPlan` before the sequential
        counterfactual searches run.  The searches then walk their
        candidate lists mostly through memo hits; only orderings the
        plan never saw reach the LLM.  ``report.llm_calls`` records the
        shared evaluator's total real LLM calls.

        With ``config.plan_pruning`` (the default) an
        :class:`~repro.core.lattice.AnswerLattice` rides along: the
        plan executes *staged* (seed round, rule-interval confirmation,
        implication rounds with probes), combination answers implied by
        monotone sandwich bounds never reach the LLM, and the
        counterfactual searches skip candidates whose implied answer
        cannot flip (verifying implied flips with one real call).
        ``report.implied``/``report.pruned`` count the savings;
        implication self-disables on order-sensitive contexts so
        position-biased models keep their exact unpruned behavior.

        ``permutation_sample`` overrides ``sample_size`` for the
        permutation insight set only (benchmarks enumerate every
        combination while sampling the k! orderings); ``None`` keeps
        the shared ``sample_size`` semantics.

        Contexts wider than the exhaustive permutation cap run the lazy
        decreasing-tau counterfactual search under
        ``wide_permutation_budget`` LLM calls instead of skipping.
        """
        context = context or self.retrieve(query)
        evaluator = self._evaluator(context)
        answered = self.ask(query, context=context, evaluator=evaluator)
        sample = sample_size if sample_size is not None else self.config.sample_size
        perm_sample = permutation_sample if permutation_sample is not None else sample

        combination_set = select_combinations(
            context, sample_size=sample, seed=self.config.seed, include_empty=False
        )
        permutation_set = None
        if context.k <= 8 or perm_sample is not None:
            permutation_set = select_permutations(
                context, sample_size=perm_sample, seed=self.config.seed
            )
        stability_set = select_permutations(
            context, sample_size=stability_sample, seed=self.config.seed
        )

        # Score once and share: with attention-based relevance each
        # scores() call is a fresh full-context generation outside the
        # shared evaluator, so per-search recomputation would both
        # duplicate prompts and escape report.llm_calls.  The staged
        # plan also wants the scores, to order its seed round.
        scores = self.relevance_scores(context)

        lattice = AnswerLattice(context) if self.config.plan_pruning else None
        plan = EvaluationPlan(evaluator, lattice=lattice)
        plan.add_baselines()
        plan.add_perturbations(combination_set)
        if permutation_set is not None:
            plan.add_perturbations(permutation_set)
        plan.add_perturbations(stability_set)
        plan_stats = plan.execute(relevance_scores=scores)

        combination = analyze_combinations(
            evaluator, combination_set, lattice=lattice
        )
        permutation: Optional[PermutationInsights] = None
        if permutation_set is not None:
            permutation = analyze_permutations(evaluator, permutation_set)
        if context.k <= 8:
            permutation_budget = self.config.max_evaluations
        else:
            permutation_budget = min(wide_permutation_budget, self.config.max_evaluations)
        permutation_cf = search_permutation_counterfactual(
            evaluator,
            max_evaluations=permutation_budget,
            batch_size=self.config.search_batch_size,
            lattice=lattice,
            adaptive=self.config.adaptive_search_batching,
        )
        report = RageReport(
            query=query,
            answer=answered.answer,
            context=context,
            combination_insights=combination,
            permutation_insights=permutation,
            top_down=search_combination_counterfactual(
                evaluator,
                relevance_scores=scores,
                direction=SearchDirection.TOP_DOWN,
                max_evaluations=self.config.max_evaluations,
                batch_size=self.config.search_batch_size,
                lattice=lattice,
                adaptive=self.config.adaptive_search_batching,
            ),
            bottom_up=search_combination_counterfactual(
                evaluator,
                relevance_scores=scores,
                direction=SearchDirection.BOTTOM_UP,
                max_evaluations=self.config.max_evaluations,
                batch_size=self.config.search_batch_size,
                lattice=lattice,
                adaptive=self.config.adaptive_search_batching,
            ),
            permutation_counterfactual=permutation_cf,
            optimal=optimal_permutations(
                context,
                relevance_scores=scores,
                s=optimal_s,
                prior=self.config.expected_prior,
                depth=self.config.expected_depth,
            ),
            stability=compute_order_stability(evaluator, stability_set),
            llm_calls=evaluator.llm_calls,
            plan_stats=plan_stats,
        )
        if lattice is not None:
            report.implied = lattice.stats.implied
            report.pruned = plan_stats.pruned
        return report

    # -- internals ---------------------------------------------------------

    def _evaluator(self, context: Context) -> ContextEvaluator:
        return ContextEvaluator(
            self.llm,
            context,
            self.prompt_builder,
            batch_workers=self.config.batch_workers,
            backend=self.backend,
        )
