"""The RAGE engine — the library's front door.

Wires together retrieval (index + BM25), the LLM (wrapped in a cache),
relevance scoring, and every explanation primitive behind one object,
mirroring the architecture of Figure 1: users pose a question, the
retrieval model builds the context, the LLM answers, and the
perturbation/counterfactual searches explain.

Typical use::

    from repro import Rage, RageConfig, SimulatedLLM
    from repro.datasets import load_use_case

    uc = load_use_case("big_three")
    rage = Rage.from_corpus(uc.corpus, SimulatedLLM(knowledge=uc.knowledge),
                            config=RageConfig(k=4))
    answered = rage.ask(uc.query)
    insights = rage.combination_insights(uc.query)
    flip = rage.combination_counterfactual(uc.query)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..attention.positional import PositionPrior
from ..errors import ConfigError
from ..exec import (
    DEFAULT_THREAD_WORKERS,
    AsyncioBackend,
    ExecutionBackend,
    ThreadedBackend,
    make_backend,
)
from ..llm.base import GenerationResult, LanguageModel
from ..llm.cache import CachingLLM
from ..llm.store import PromptStore
from ..llm.prompts import DEFAULT_PROMPT_BUILDER, PromptBuilder
from ..retrieval.bm25 import Scorer
from ..retrieval.document import Corpus, Document
from ..retrieval.index import InvertedIndex
from ..retrieval.searcher import Searcher
from .context import Context
from .counterfactual import (
    CombinationSearchResult,
    SearchDirection,
    search_combination_counterfactual,
)
from .evaluate import ContextEvaluator
from .insights import (
    CombinationInsights,
    PermutationInsights,
    analyze_combinations,
    analyze_permutations,
)
from .optimal import OptimalPermutation, optimal_permutations
from .lattice import AnswerLattice
from .permutation_cf import PermutationSearchResult, search_permutation_counterfactual
from .plan import EvaluationPlan, PlanStats
from .sampling import select_combinations, select_permutations
from .scoring import RelevanceMethod, make_scorer
from .stability import OrderStability, order_stability as compute_order_stability


@dataclass(frozen=True)
class RageConfig:
    """Engine configuration.

    Attributes
    ----------
    k:
        Retrieval depth (size of the context ``Dq``).
    relevance_method:
        Which ``S(q, d, Dq)`` orders combinations and weights optimal
        permutations: RETRIEVAL (BM25 scores) or ATTENTION (aggregated
        LLM attention).
    max_evaluations:
        LLM-call budget per counterfactual search.
    sample_size:
        Default perturbation sample size for the insight analyses;
        ``None`` analyzes all combinations / permutations.
    seed:
        Seed for perturbation sampling.
    expected_prior, expected_depth:
        The user-calibrated expected position-attention distribution
        used by optimal permutations.
    cache:
        Wrap the LLM in a prompt cache (recommended).
    batch_workers:
        Thread-pool width for batched evaluation when the LLM has no
        native ``generate_batch`` (useful for I/O-bound remote
        backends); ``None`` keeps batch misses sequential.  Shorthand
        for ``backend="threaded:N"``.
    backend:
        Execution-backend spec for every evaluation batch: ``serial``
        (default), ``threaded[:N]`` (thread pool) or ``asyncio[:N]``
        (event loop driving the LLM's async contract, at most ``N``
        calls in flight).  See :mod:`repro.exec`.
    cache_dir:
        Directory for the content-addressed persistent generation
        store (:class:`~repro.llm.store.PromptStore`).  The prompt
        cache gains a write-through disk tier shared across processes:
        a re-run report answers warm with zero real LLM calls.
        Requires ``cache=True``.
    cache_max_bytes:
        LRU size cap for the persistent store; ``None`` = unbounded.
    search_batch_size:
        Un-memoized candidates per LLM batch inside the sequential
        counterfactual searches.  1 (default) is the paper's strictly
        serial search; larger values trade a few evaluations past the
        flip for batched-backend throughput.
    plan_pruning:
        Let ``explain()`` attach an
        :class:`~repro.core.lattice.AnswerLattice` to its evaluation
        plan: combination answers that are implied by already-evaluated
        combinations (monotone sandwich bounds between confirmed
        answer-rule intervals) are pruned from the batch instead of
        paying an LLM call, and the counterfactual searches skip
        candidates whose implied answer cannot flip (implied flips are
        verified by one real evaluation).  Implication self-gates on
        observed order stability and rolls back on any conflict, so
        position-sensitive contexts degrade to the unpruned plan;
        ``rage report --no-prune`` and ``plan_pruning=False`` disable
        it outright.
    adaptive_search_batching:
        Grow the counterfactual searches' evaluation chunk
        geometrically (from ``search_batch_size``, reset on near-hits)
        while no flip appears — fewer, larger batches for real
        transformer backends.  Off by default: the paper's search is
        strictly sequential and adaptive chunks may charge a few extra
        evaluations past the flip.
    """

    k: int = 10
    relevance_method: RelevanceMethod = RelevanceMethod.RETRIEVAL
    max_evaluations: int = 2000
    sample_size: Optional[int] = None
    seed: int = 0
    expected_prior: PositionPrior = PositionPrior.V_SHAPED
    expected_depth: float = 0.8
    cache: bool = True
    batch_workers: Optional[int] = None
    backend: Optional[str] = None
    cache_dir: Optional[str] = None
    cache_max_bytes: Optional[int] = None
    search_batch_size: int = 1
    plan_pruning: bool = True
    adaptive_search_batching: bool = False

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ConfigError(f"k must be positive, got {self.k}")
        if self.max_evaluations <= 0:
            raise ConfigError("max_evaluations must be positive")
        if self.batch_workers is not None and self.batch_workers < 1:
            raise ConfigError("batch_workers must be >= 1 (or None)")
        if self.search_batch_size < 1:
            raise ConfigError("search_batch_size must be >= 1")
        if self.cache_dir is not None and not self.cache:
            raise ConfigError("cache_dir requires cache=True (the disk store "
                              "is a tier of the prompt cache)")
        if self.cache_max_bytes is not None and self.cache_max_bytes < 1:
            raise ConfigError("cache_max_bytes must be >= 1 (or None)")
        make_backend(self.backend, batch_workers=self.batch_workers)  # validate spec


@dataclass
class AskResult:
    """Answer to a plain (un-explained) question."""

    query: str
    answer: str
    context: Context
    generation: GenerationResult


@dataclass
class RageReport:
    """One-call bundle of every explanation for a question.

    ``plan_stats`` carries the evaluation plan's flush accounting when
    ``explain()`` pre-batched the report; ``implied`` and ``pruned``
    surface the answer-implication savings (lattice-implied answers
    consumed, and LLM calls avoided net of verification probes) — both
    zero when plan pruning is disabled or self-gated off.
    """

    query: str
    answer: str
    context: Context
    combination_insights: CombinationInsights
    permutation_insights: Optional[PermutationInsights]
    top_down: CombinationSearchResult
    bottom_up: CombinationSearchResult
    permutation_counterfactual: Optional[PermutationSearchResult]
    optimal: List[OptimalPermutation] = field(default_factory=list)
    stability: Optional[OrderStability] = None
    llm_calls: int = 0
    plan_stats: Optional[PlanStats] = None
    implied: int = 0
    pruned: int = 0


class Rage:
    """Retrieval-Augmented Generation Explainer."""

    def __init__(
        self,
        index: InvertedIndex,
        llm: LanguageModel,
        config: Optional[RageConfig] = None,
        retrieval_scorer: Optional[Scorer] = None,
        prompt_builder: Optional[PromptBuilder] = None,
    ) -> None:
        self.config = config or RageConfig()
        self.index = index
        self.searcher = Searcher(index, scorer=retrieval_scorer)
        self.backend: ExecutionBackend = make_backend(
            self.config.backend, batch_workers=self.config.batch_workers
        )
        self.store: Optional[PromptStore] = (
            PromptStore(self.config.cache_dir, max_bytes=self.config.cache_max_bytes)
            if self.config.cache_dir is not None
            else None
        )
        if self.config.cache:
            # The backend's capacity must survive the cache boundary:
            # CachingLLM forwards only *misses* to the inner model, so
            # the backend's concurrency bound is handed to the wrapper —
            # threaded width as the pool size, and `capacity` as the
            # in-flight bound for async-capable inner models (serial
            # stays serial: capacity 1).  Explicit batch_workers wins.
            inner_workers = self.config.batch_workers
            if inner_workers is None and isinstance(self.backend, ThreadedBackend):
                inner_workers = self.backend.max_workers
            elif inner_workers is None and isinstance(self.backend, AsyncioBackend):
                # Sync-only inner models still deserve the requested
                # concurrency: the in-flight bound doubles as the
                # thread-pool width for the miss batch.
                inner_workers = self.backend.max_inflight or DEFAULT_THREAD_WORKERS
            self.llm: LanguageModel = CachingLLM(
                llm,
                batch_workers=inner_workers,
                max_inflight=self.backend.capacity,
                store=self.store,
            )
        else:
            self.llm = llm
        self.prompt_builder = prompt_builder or DEFAULT_PROMPT_BUILDER

    @classmethod
    def from_corpus(
        cls,
        corpus: Corpus | Sequence[Document],
        llm: LanguageModel,
        config: Optional[RageConfig] = None,
        retrieval_scorer: Optional[Scorer] = None,
    ) -> "Rage":
        """Index a corpus and build the engine in one step."""
        index = InvertedIndex.build(corpus)
        return cls(index, llm, config=config, retrieval_scorer=retrieval_scorer)

    # -- retrieval and answering ------------------------------------------

    def retrieve(self, query: str, k: Optional[int] = None) -> Context:
        """Build the context ``Dq`` for a query."""
        result = self.searcher.search(query, k=k or self.config.k)
        return Context.from_retrieval(result)

    def ask(
        self,
        query: str,
        context: Optional[Context] = None,
        evaluator: Optional[ContextEvaluator] = None,
    ) -> AskResult:
        """Retrieve (unless given a context) and answer.

        The full generation (with attention trace) also primes the
        evaluator's memo, so a shared evaluator never re-pays for the
        full-context evaluation.
        """
        context = context or self.retrieve(query)
        evaluator = evaluator or self._evaluator(context)
        generation = evaluator.generation(context.doc_ids())
        evaluator.prime(context.doc_ids(), generation)
        return AskResult(
            query=query,
            answer=generation.answer,
            context=context,
            generation=generation,
        )

    # -- explanations -------------------------------------------------------

    def relevance_scores(self, context: Context) -> Dict[str, float]:
        """``S(q, d, Dq)`` under the configured method."""
        scorer = make_scorer(
            self.config.relevance_method, llm=self.llm, prompt_builder=self.prompt_builder
        )
        return scorer.scores(context)

    def combination_insights(
        self,
        query: str,
        context: Optional[Context] = None,
        sample_size: Optional[int] = None,
        include_empty: bool = False,
        evaluator: Optional[ContextEvaluator] = None,
    ) -> CombinationInsights:
        """Answer distribution, table and rules over combinations."""
        context = context or self.retrieve(query)
        evaluator = evaluator or self._evaluator(context)
        perturbations = select_combinations(
            context,
            sample_size=sample_size if sample_size is not None else self.config.sample_size,
            seed=self.config.seed,
            include_empty=include_empty,
        )
        return analyze_combinations(evaluator, perturbations)

    def permutation_insights(
        self,
        query: str,
        context: Optional[Context] = None,
        sample_size: Optional[int] = None,
        evaluator: Optional[ContextEvaluator] = None,
    ) -> PermutationInsights:
        """Answer distribution, table and rules over permutations."""
        context = context or self.retrieve(query)
        evaluator = evaluator or self._evaluator(context)
        perturbations = select_permutations(
            context,
            sample_size=sample_size if sample_size is not None else self.config.sample_size,
            seed=self.config.seed,
        )
        return analyze_permutations(evaluator, perturbations)

    def combination_counterfactual(
        self,
        query: str,
        context: Optional[Context] = None,
        direction: SearchDirection | str = SearchDirection.TOP_DOWN,
        target_answer: Optional[str] = None,
        max_evaluations: Optional[int] = None,
        evaluator: Optional[ContextEvaluator] = None,
    ) -> CombinationSearchResult:
        """Minimal source removal (top-down) or retention (bottom-up)
        that flips the answer."""
        context = context or self.retrieve(query)
        evaluator = evaluator or self._evaluator(context)
        return search_combination_counterfactual(
            evaluator,
            relevance_scores=self.relevance_scores(context),
            direction=direction,
            target_answer=target_answer,
            max_evaluations=max_evaluations or self.config.max_evaluations,
            batch_size=self.config.search_batch_size,
        )

    def permutation_counterfactual(
        self,
        query: str,
        context: Optional[Context] = None,
        target_answer: Optional[str] = None,
        max_evaluations: Optional[int] = None,
        evaluator: Optional[ContextEvaluator] = None,
    ) -> PermutationSearchResult:
        """Most-similar reordering (max Kendall tau) that flips the answer."""
        context = context or self.retrieve(query)
        evaluator = evaluator or self._evaluator(context)
        return search_permutation_counterfactual(
            evaluator,
            target_answer=target_answer,
            max_evaluations=max_evaluations or self.config.max_evaluations,
            batch_size=self.config.search_batch_size,
        )

    def optimal_permutations(
        self,
        query: str,
        context: Optional[Context] = None,
        s: int = 5,
        method: str = "ch",
    ) -> List[OptimalPermutation]:
        """Top-s placements of sources into high-attention positions."""
        context = context or self.retrieve(query)
        return optimal_permutations(
            context,
            relevance_scores=self.relevance_scores(context),
            s=s,
            prior=self.config.expected_prior,
            depth=self.config.expected_depth,
            method=method,
        )

    def source_salience(
        self,
        query: str,
        context: Optional[Context] = None,
        answer: Optional[str] = None,
        sample_size: Optional[int] = None,
    ):
        """Per-source influence contrasts for an answer (defaults to the
        most frequent answer across the analyzed combinations)."""
        from .stability import source_salience

        context = context or self.retrieve(query)
        insights = self.combination_insights(
            query, context=context, sample_size=sample_size
        )
        return source_salience(insights, answer=answer)

    def order_stability(
        self,
        query: str,
        context: Optional[Context] = None,
        sample_size: Optional[int] = 50,
        evaluator: Optional[ContextEvaluator] = None,
    ) -> OrderStability:
        """Order-stability summary over sampled permutations."""
        context = context or self.retrieve(query)
        evaluator = evaluator or self._evaluator(context)
        perturbations = select_permutations(
            context, sample_size=sample_size, seed=self.config.seed
        )
        return compute_order_stability(evaluator, perturbations)

    def explain(
        self,
        query: str,
        context: Optional[Context] = None,
        sample_size: Optional[int] = None,
        optimal_s: int = 3,
        wide_permutation_budget: int = 200,
        stability_sample: int = 50,
        permutation_sample: Optional[int] = None,
    ) -> RageReport:
        """Everything at once (powers the CLI report command).

        One :class:`~repro.core.evaluate.ContextEvaluator` — one memo,
        one LLM-call counter — is shared across every sub-explanation,
        and every enumerable perturbation set (both baselines, the
        combination insight set, the permutation insight and stability
        sets) is pre-batched through an
        :class:`~repro.core.plan.EvaluationPlan` before the sequential
        counterfactual searches run.  The searches then walk their
        candidate lists mostly through memo hits; only orderings the
        plan never saw reach the LLM.  ``report.llm_calls`` records the
        shared evaluator's total real LLM calls.

        With ``config.plan_pruning`` (the default) an
        :class:`~repro.core.lattice.AnswerLattice` rides along: the
        plan executes *staged* (seed round, rule-interval confirmation,
        implication rounds with probes), combination answers implied by
        monotone sandwich bounds never reach the LLM, and the
        counterfactual searches skip candidates whose implied answer
        cannot flip (verifying implied flips with one real call).
        ``report.implied``/``report.pruned`` count the savings;
        implication self-disables on order-sensitive contexts so
        position-biased models keep their exact unpruned behavior.

        ``permutation_sample`` overrides ``sample_size`` for the
        permutation insight set only (benchmarks enumerate every
        combination while sampling the k! orderings); ``None`` keeps
        the shared ``sample_size`` semantics.

        Contexts wider than the exhaustive permutation cap run the lazy
        decreasing-tau counterfactual search under
        ``wide_permutation_budget`` LLM calls instead of skipping.
        """
        context = context or self.retrieve(query)
        evaluator = self._evaluator(context)
        answered = self.ask(query, context=context, evaluator=evaluator)
        sample = sample_size if sample_size is not None else self.config.sample_size
        perm_sample = permutation_sample if permutation_sample is not None else sample

        combination_set = select_combinations(
            context, sample_size=sample, seed=self.config.seed, include_empty=False
        )
        permutation_set = None
        if context.k <= 8 or perm_sample is not None:
            permutation_set = select_permutations(
                context, sample_size=perm_sample, seed=self.config.seed
            )
        stability_set = select_permutations(
            context, sample_size=stability_sample, seed=self.config.seed
        )

        # Score once and share: with attention-based relevance each
        # scores() call is a fresh full-context generation outside the
        # shared evaluator, so per-search recomputation would both
        # duplicate prompts and escape report.llm_calls.  The staged
        # plan also wants the scores, to order its seed round.
        scores = self.relevance_scores(context)

        lattice = AnswerLattice(context) if self.config.plan_pruning else None
        plan = EvaluationPlan(evaluator, lattice=lattice)
        plan.add_baselines()
        plan.add_perturbations(combination_set)
        if permutation_set is not None:
            plan.add_perturbations(permutation_set)
        plan.add_perturbations(stability_set)
        plan_stats = plan.execute(relevance_scores=scores)

        combination = analyze_combinations(
            evaluator, combination_set, lattice=lattice
        )
        permutation: Optional[PermutationInsights] = None
        if permutation_set is not None:
            permutation = analyze_permutations(evaluator, permutation_set)
        if context.k <= 8:
            permutation_budget = self.config.max_evaluations
        else:
            permutation_budget = min(wide_permutation_budget, self.config.max_evaluations)
        permutation_cf = search_permutation_counterfactual(
            evaluator,
            max_evaluations=permutation_budget,
            batch_size=self.config.search_batch_size,
            lattice=lattice,
            adaptive=self.config.adaptive_search_batching,
        )
        report = RageReport(
            query=query,
            answer=answered.answer,
            context=context,
            combination_insights=combination,
            permutation_insights=permutation,
            top_down=search_combination_counterfactual(
                evaluator,
                relevance_scores=scores,
                direction=SearchDirection.TOP_DOWN,
                max_evaluations=self.config.max_evaluations,
                batch_size=self.config.search_batch_size,
                lattice=lattice,
                adaptive=self.config.adaptive_search_batching,
            ),
            bottom_up=search_combination_counterfactual(
                evaluator,
                relevance_scores=scores,
                direction=SearchDirection.BOTTOM_UP,
                max_evaluations=self.config.max_evaluations,
                batch_size=self.config.search_batch_size,
                lattice=lattice,
                adaptive=self.config.adaptive_search_batching,
            ),
            permutation_counterfactual=permutation_cf,
            optimal=optimal_permutations(
                context,
                relevance_scores=scores,
                s=optimal_s,
                prior=self.config.expected_prior,
                depth=self.config.expected_depth,
            ),
            stability=compute_order_stability(evaluator, stability_set),
            llm_calls=evaluator.llm_calls,
            plan_stats=plan_stats,
        )
        if lattice is not None:
            report.implied = lattice.stats.implied
            report.pruned = plan_stats.pruned
        return report

    # -- internals ---------------------------------------------------------

    def _evaluator(self, context: Context) -> ContextEvaluator:
        return ContextEvaluator(
            self.llm,
            context,
            self.prompt_builder,
            batch_workers=self.config.batch_workers,
            backend=self.backend,
        )
