"""Greedy combination counterfactuals for large contexts.

The paper's size-major search is exhaustive within each size: finding a
size-m counterfactual over k sources may evaluate up to
``sum(C(k, i) for i <= m)`` prompts.  For contexts beyond a dozen
sources that is impractical, so this extension adds the standard greedy
two-phase scheme from the counterfactual-explanation literature:

1. **Grow** — add sources to the removal (top-down) or retention
   (bottom-up) set in decreasing estimated-relevance order until the
   answer flips (at most k evaluations).
2. **Shrink** — try dropping each member of the flipping set, keeping
   the drop whenever the answer still flips (at most |set| more
   evaluations), yielding a *minimal* (though not necessarily
   minimum-cardinality) counterfactual.

O(k) LLM calls total, versus the exhaustive search's combinatorial
budget.  Benchmark E13 measures the optimality gap this buys.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SearchBudgetError
from ..textproc import normalize_answer
from .context import CombinationPerturbation
from .counterfactual import (
    CombinationCounterfactual,
    CombinationSearchResult,
    SearchDirection,
)
from .evaluate import ContextEvaluator


def greedy_combination_counterfactual(
    evaluator: ContextEvaluator,
    relevance_scores: Dict[str, float],
    direction: SearchDirection | str = SearchDirection.TOP_DOWN,
    target_answer: Optional[str] = None,
    max_evaluations: int = 1000,
) -> CombinationSearchResult:
    """Greedy grow-then-shrink combination counterfactual search.

    Same result contract as
    :func:`repro.core.counterfactual.search_combination_counterfactual`;
    the found set is minimal (no proper subset of it flips) but may be
    larger than the global minimum the exhaustive search returns.
    """
    if max_evaluations <= 0:
        raise SearchBudgetError(f"max_evaluations must be positive, got {max_evaluations}")
    direction = SearchDirection(direction)
    context = evaluator.context

    if direction is SearchDirection.TOP_DOWN:
        baseline = evaluator.original()
    else:
        baseline = evaluator.empty()
        if target_answer is None:
            target_answer = evaluator.original().answer
    target_norm = normalize_answer(target_answer) if target_answer is not None else None

    result = CombinationSearchResult(
        direction=direction,
        baseline_answer=baseline.answer,
        target_answer=target_answer,
        counterfactual=None,
        num_evaluations=0,
        budget_exhausted=False,
    )
    budget = [max_evaluations]

    def flips(changed: List[str]) -> Optional[str]:
        """Answer when ``changed`` is removed/retained, if it flips."""
        if budget[0] <= 0:
            result.budget_exhausted = True
            return None
        budget[0] -= 1
        result.num_evaluations += 1
        if direction is SearchDirection.TOP_DOWN:
            perturbation = CombinationPerturbation.from_removal(context, changed)
        else:
            kept = tuple(d for d in context.doc_ids() if d in set(changed))
            perturbation = CombinationPerturbation(kept=kept)
        evaluation = evaluator.evaluate(perturbation.apply(context))
        hit = (
            evaluation.normalized_answer == target_norm
            if target_norm is not None
            else evaluation.normalized_answer != baseline.normalized_answer
        )
        if hit and evaluation.normalized_answer != baseline.normalized_answer:
            return evaluation.answer
        return None

    # Phase 1: grow in decreasing relevance order.
    ordered = sorted(
        context.doc_ids(), key=lambda d: (-relevance_scores.get(d, 0.0), d)
    )
    changed: List[str] = []
    flipped_answer: Optional[str] = None
    for doc_id in ordered:
        changed.append(doc_id)
        flipped_answer = flips(changed)
        if flipped_answer is not None or result.budget_exhausted:
            break
    if flipped_answer is None:
        return result

    # Phase 2: shrink — drop members whose removal keeps the flip.
    for doc_id in list(changed):
        if len(changed) == 1:
            break
        candidate = [d for d in changed if d != doc_id]
        answer = flips(candidate)
        if answer is not None:
            changed = candidate
            flipped_answer = answer
        if result.budget_exhausted:
            break

    changed_ordered = tuple(d for d in context.doc_ids() if d in set(changed))
    if direction is SearchDirection.TOP_DOWN:
        perturbation = CombinationPerturbation.from_removal(context, changed_ordered)
    else:
        perturbation = CombinationPerturbation(kept=changed_ordered)
    result.counterfactual = CombinationCounterfactual(
        direction=direction,
        perturbation=perturbation,
        changed_sources=changed_ordered,
        baseline_answer=baseline.answer,
        new_answer=flipped_answer,
        estimated_relevance=sum(relevance_scores.get(d, 0.0) for d in changed_ordered),
    )
    return result
