"""repro — a full reproduction of RAGE: Retrieval-Augmented LLM
Explanations (Rorseth et al., ICDE 2024).

Quick start::

    from repro import Rage, RageConfig, SimulatedLLM
    from repro.datasets import load_use_case

    uc = load_use_case("big_three")
    rage = Rage.from_corpus(uc.corpus, SimulatedLLM(knowledge=uc.knowledge),
                            config=RageConfig(k=uc.k))
    print(rage.ask(uc.query).answer)                  # "Roger Federer"
    print(rage.combination_counterfactual(uc.query))  # minimal flip

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .core.context import (
    CombinationPerturbation,
    Context,
    ContextSource,
    PermutationPerturbation,
)
from .core.counterfactual import SearchDirection
from .core.engine import AskResult, Rage, RageConfig, RageReport
from .core.scoring import RelevanceMethod
from .errors import RageError
from .llm.knowledge import KBFact, KnowledgeBase
from .llm.remote import RemoteLLM
from .llm.router import RouterLLM
from .llm.simulated import SimulatedLLM, SimulatedLLMConfig
from .retrieval.document import Corpus, Document

__version__ = "1.0.0"

__all__ = [
    "CombinationPerturbation",
    "Context",
    "ContextSource",
    "PermutationPerturbation",
    "SearchDirection",
    "AskResult",
    "Rage",
    "RageConfig",
    "RageReport",
    "RelevanceMethod",
    "RageError",
    "KBFact",
    "KnowledgeBase",
    "RemoteLLM",
    "RouterLLM",
    "SimulatedLLM",
    "SimulatedLLMConfig",
    "Corpus",
    "Document",
    "__version__",
]
