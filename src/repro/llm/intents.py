"""Question-intent parsing for the simulated LLM.

A real instruction-tuned LLM infers what kind of answer a question
wants.  The simulated model makes that inference explicit and testable:
a question is classified into one of four intents, and auxiliary slots
(subject entity, year range) are extracted with patterns.

Intents
-------
SUPERLATIVE   "Who is the best/greatest ...?"          -> entity
MOST_RECENT   "Who is the most recent/latest ...?"     -> entity
COUNT         "How many times did X ... ?"             -> number
FACTOID       anything else                            -> entity/value
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet, Optional, Tuple

from ..textproc import Tokenizer, normalize_entity

# Entity pattern: capitalized word runs, allowing lowercase connectors.
# The first character class admits accented Latin capitals (À-Þ plus the
# Latin Extended-A block for names like Świątek); trailing periods are
# deliberately excluded so sentence-final names stay clean.
_CAP = r"[A-ZÀ-ÖØ-ÞĀ-ſ]"
ENTITY_PATTERN = (
    _CAP + r"[\w'-]*"
    r"(?:\s+(?:of|the|de|van|der|von|di|da)\s+" + _CAP + r"[\w'-]*"
    r"|\s+" + _CAP + r"[\w'-]*)*"
)

_COUNT_RE = re.compile(r"\bhow many\b", re.IGNORECASE)
_MOST_RECENT_RE = re.compile(
    r"\b(?:most recent|latest|newest|current|last)\b", re.IGNORECASE
)
_EARLIEST_RE = re.compile(
    r"\b(?:first|earliest|inaugural|original)\b", re.IGNORECASE
)
_SUPERLATIVE_RE = re.compile(
    r"\b(?:best|greatest|top|finest|most successful|most accomplished)\b",
    re.IGNORECASE,
)
_RANGE_RE = re.compile(
    r"\b(?:between|from)\s+(\d{4})\s+(?:and|to)\s+(\d{4})\b", re.IGNORECASE
)
_SUBJECT_RE = re.compile(
    r"\b(?:did|has|have|does|was|were)\s+(?P<entity>" + ENTITY_PATTERN + r")"
)


class QuestionIntent(str, Enum):
    """The answer type a question requests."""

    SUPERLATIVE = "superlative"
    MOST_RECENT = "most_recent"
    EARLIEST = "earliest"
    COUNT = "count"
    FACTOID = "factoid"


@dataclass(frozen=True)
class ParsedQuestion:
    """A question decomposed into intent and slots.

    Attributes
    ----------
    text:
        The original question.
    intent:
        Detected :class:`QuestionIntent`.
    subject:
        Normalized subject entity for COUNT questions ("novak djokovic"
        in "How many times did Novak Djokovic ...").
    year_range:
        Inclusive (start, end) when the question bounds a period.
    terms:
        Analyzed content terms (lowercased, stopwords removed, stemmed)
        used for topical matching against source claims.
    """

    text: str
    intent: QuestionIntent
    subject: Optional[str] = None
    year_range: Optional[Tuple[int, int]] = None
    terms: FrozenSet[str] = field(default_factory=frozenset)


def classify_intent(question: str) -> QuestionIntent:
    """Intent from surface patterns.  COUNT and the temporal intents
    outrank SUPERLATIVE so "how many ... best ..." counts; MOST_RECENT
    outranks EARLIEST so "most recent first-round winner" reads as
    recency."""
    if _COUNT_RE.search(question):
        return QuestionIntent.COUNT
    if _MOST_RECENT_RE.search(question):
        return QuestionIntent.MOST_RECENT
    if _EARLIEST_RE.search(question):
        return QuestionIntent.EARLIEST
    if _SUPERLATIVE_RE.search(question):
        return QuestionIntent.SUPERLATIVE
    return QuestionIntent.FACTOID


def parse_question(question: str, tokenizer: Optional[Tokenizer] = None) -> ParsedQuestion:
    """Full question analysis: intent, subject, year range, terms."""
    tokenizer = tokenizer or Tokenizer()
    intent = classify_intent(question)
    subject: Optional[str] = None
    match = _SUBJECT_RE.search(question)
    if match is not None:
        subject = normalize_entity(match.group("entity"))
    year_range: Optional[Tuple[int, int]] = None
    range_match = _RANGE_RE.search(question)
    if range_match is not None:
        start, end = int(range_match.group(1)), int(range_match.group(2))
        year_range = (min(start, end), max(start, end))
    return ParsedQuestion(
        text=question,
        intent=intent,
        subject=subject,
        year_range=year_range,
        terms=frozenset(tokenizer.tokenize(question)),
    )
