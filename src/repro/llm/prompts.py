"""Prompt construction and parsing.

RAGE combines the ranked context ``Dq`` and the question ``q`` into a
natural-language prompt instructing the LLM "to answer question q using
the information contained within the set of delimited sources".  The
prompt is "the final and sole input to the LLM", so the simulated model
must *parse sources back out of the prompt text* rather than receive
them through a side channel — :func:`parse_prompt` is that inverse.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Sequence

from ..errors import PromptError

_HEADER = (
    "You are a question answering assistant. Answer the question using "
    "only the information contained in the delimited sources below. "
    "Respond with just the answer."
)
_NO_SOURCES_LINE = "No sources are provided; answer from your own knowledge."
_SOURCE_PREFIX = "[Source {index}] "
_QUESTION_PREFIX = "Question: "
_ANSWER_SUFFIX = "Answer:"

_SOURCE_RE = re.compile(
    r"^\[Source (?P<index>\d+)\] (?P<text>.*?)$", re.MULTILINE
)
_QUESTION_RE = re.compile(
    r"^Question: (?P<question>.*?)\nAnswer:", re.MULTILINE | re.DOTALL
)


@dataclass(frozen=True)
class ParsedPrompt:
    """A prompt decomposed back into question + ordered source texts."""

    question: str
    source_texts: List[str]

    @property
    def k(self) -> int:
        """Number of context sources."""
        return len(self.source_texts)


class PromptBuilder:
    """Render (question, ordered source texts) into the RAG prompt.

    Source texts must be single-line strings (documents in this library
    are paragraph-style); embedded newlines are folded to spaces so the
    per-line delimiter parse stays unambiguous.
    """

    def build(self, question: str, source_texts: Sequence[str]) -> str:
        """Render the full prompt for a context in the given order."""
        question = " ".join(question.split())
        if not question:
            raise PromptError("question must be non-empty")
        lines = [_HEADER, ""]
        if source_texts:
            for index, text in enumerate(source_texts, start=1):
                flat = " ".join(str(text).split())
                if not flat:
                    raise PromptError(f"source {index} is empty")
                lines.append(_SOURCE_PREFIX.format(index=index) + flat)
        else:
            lines.append(_NO_SOURCES_LINE)
        lines.append("")
        lines.append(_QUESTION_PREFIX + question)
        lines.append(_ANSWER_SUFFIX)
        return "\n".join(lines)


def parse_prompt(prompt: str) -> ParsedPrompt:
    """Recover the question and ordered source texts from a prompt.

    Raises
    ------
    PromptError
        When the prompt does not follow the :class:`PromptBuilder`
        layout (missing question, gap in source numbering, ...).
    """
    question_match = _QUESTION_RE.search(prompt)
    if question_match is None:
        raise PromptError("prompt has no 'Question: ... Answer:' block")
    question = question_match.group("question").strip()
    if not question:
        raise PromptError("prompt question is empty")
    sources: List[str] = []
    for match in _SOURCE_RE.finditer(prompt):
        index = int(match.group("index"))
        if index != len(sources) + 1:
            raise PromptError(
                f"source numbering broken: expected {len(sources) + 1}, got {index}"
            )
        sources.append(match.group("text").strip())
    return ParsedPrompt(question=question, source_texts=sources)


#: Shared default builder.
DEFAULT_PROMPT_BUILDER = PromptBuilder()
