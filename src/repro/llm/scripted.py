"""A scripted LLM: canned answers keyed by context signature.

Useful in two situations the simulated model cannot cover:

* **Tests and what-if analysis** — drive the explanation algorithms
  against an exactly specified answer function (e.g. adversarial cases:
  "flip only when sources 2 and 4 are both missing").
* **Replays** — reproduce a recorded interaction with a real LLM: dump
  (ordered source ids -> answer) pairs from a live system and re-run
  every RAGE explanation against the recording, deterministically and
  offline.

The script maps an ordered tuple of source *texts* (as parsed back out
of the prompt) to an answer; a default answer covers everything
unscripted.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .base import GenerationResult, TokenUsage
from .prompts import parse_prompt

AnswerFn = Callable[[str, Tuple[str, ...]], Optional[str]]


class ScriptedLLM:
    """Answers from an explicit script instead of a model.

    Parameters
    ----------
    script:
        Mapping from ordered source-text tuples to answers.  The empty
        tuple keys the empty-context answer.
    default:
        Answer for unscripted contexts.
    answer_fn:
        Alternative to ``script``: a callable ``(question, source_texts)
        -> answer | None`` tried before the script (None falls through).
    """

    def __init__(
        self,
        script: Optional[Dict[Tuple[str, ...], str]] = None,
        default: str = "unscripted",
        answer_fn: Optional[AnswerFn] = None,
    ) -> None:
        self.script = dict(script or {})
        self.default = default
        self.answer_fn = answer_fn
        self.calls = 0

    @property
    def name(self) -> str:
        """Identifier for reports and cache keys."""
        return f"scripted-llm/{len(self.script)}-entries"

    @property
    def cache_params(self) -> Dict[str, object]:
        """Persistent-cache identity: a digest of the script contents.

        Two scripts of equal length answer differently, and ``name``
        only carries the length.  ``answer_fn`` is arbitrary code and
        contributes only its qualified name — replays that rely on an
        ``answer_fn`` closure should not share one store directory
        across differing closures.
        """
        digest = hashlib.sha256()
        for key in sorted(self.script):
            digest.update("\x1f".join(key).encode("utf-8"))
            digest.update(b"\x1e")
            digest.update(self.script[key].encode("utf-8"))
        params: Dict[str, object] = {
            "script": digest.hexdigest()[:16],
            "default": self.default,
        }
        if self.answer_fn is not None:
            params["answer_fn"] = getattr(
                self.answer_fn, "__qualname__", repr(self.answer_fn)
            )
        return params

    def generate(self, prompt: str) -> GenerationResult:
        """Look the parsed context up in the script."""
        self.calls += 1
        parsed = parse_prompt(prompt)
        key = tuple(parsed.source_texts)
        answer: Optional[str] = None
        if self.answer_fn is not None:
            answer = self.answer_fn(parsed.question, key)
        if answer is None:
            answer = self.script.get(key, self.default)
        return GenerationResult(
            answer=answer,
            prompt=prompt,
            attention=None,
            usage=TokenUsage(
                prompt_tokens=len(prompt.split()),
                completion_tokens=len(answer.split()),
            ),
            diagnostics={"scripted": True},
        )

    def generate_batch(self, prompts: Sequence[str]) -> List[GenerationResult]:
        """Batch entry point; a plain per-prompt loop.

        Script lookup has no shared work to amortize, so this matches
        what the :func:`~repro.llm.base.batched_generate` fallback would
        do.  It is kept explicit so replay scripts count calls the same
        way on both paths and tests pin the contract on this class
        directly.
        """
        return [self.generate(prompt) for prompt in prompts]

    async def agenerate(self, prompt: str) -> GenerationResult:
        """Async :meth:`generate`: the script lookup is pure compute."""
        # repro: disable=async-hygiene -- dict lookup, nothing blocks.
        return self.generate(prompt)

    async def agenerate_batch(self, prompts: Sequence[str]) -> List[GenerationResult]:
        """Async :meth:`generate_batch` (call counting stays identical)."""
        # repro: disable=async-hygiene -- dict lookup, nothing blocks.
        return self.generate_batch(prompts)

    def record(self, source_texts: Sequence[str], answer: str) -> None:
        """Add one (context -> answer) pair to the script."""
        self.script[tuple(source_texts)] = answer
