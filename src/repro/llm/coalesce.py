"""Single-flight coalescing for concurrent identical prompts.

At fleet scale many tenants explore the same corpus concurrently and
issue *identical* perturbation prompts.  The two cache tiers only help
once a result has landed: between a miss and its write-through, every
other requester of the same prompt also misses and pays for its own
real model call — the classic thundering herd.  :class:`SingleFlight`
closes that gap with a per-key in-flight registry: the first requester
of a key becomes the **leader** and dispatches the real call; every
concurrent requester of the same key becomes a **follower** and simply
awaits the leader's flight.  One call serves them all.

Keys are the same content hashes the persistent store uses
(:func:`repro.llm.store.store_key` over model name, prompt, and
``cache_params``), so two prompts coalesce exactly when the disk tier
would consider them the same entry — differently-configured models
never serve each other's flights.

Failure semantics
-----------------
A flight settles exactly once, with either a result or an error.  The
leader removes the registry entry *before* settling, so

* an error propagates to every waiter of that flight, but the registry
  is never poisoned: the next requester of the key finds no entry and
  starts a fresh flight (retries are possible immediately);
* a successful leader writes through to the cache tiers before
  resolving, so a requester arriving after the registry entry is gone
  is guaranteed to find the cache entry instead — between cache and
  registry there is no window in which a second real call can start.

Both the sync and the async worlds wait efficiently:
:meth:`Latch.wait` blocks a thread on an event;
:meth:`Latch.wait_async` parks a loop-native future that the settling
thread completes via ``call_soon_threadsafe`` — no executor threads are
consumed by waiting, so a thousand coalesced async requesters cost a
thousand futures, not a thousand threads.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple


@dataclass
class SingleFlightStats:
    """Counters for one :class:`SingleFlight` registry.

    ``flights`` counts leaders (real dispatches initiated);
    ``coalesced`` the followers that joined an existing flight instead
    of dispatching (the dedup hits — each one is a real model call that
    did not happen); ``failures`` the flights that settled with an
    error (each failure reached all of its followers).
    """

    flights: int = 0
    coalesced: int = 0
    failures: int = 0


class Latch:
    """A settle-once result box with thread *and* event-loop waiters.

    ``resolve``/``reject`` may be called from any thread, exactly once
    between them; later calls are ignored (the first settlement wins,
    which keeps a belated double-settle from clobbering delivered
    results).  Sync waiters block on a :class:`threading.Event`; async
    waiters park a future on their own loop and are woken via
    ``call_soon_threadsafe``, so waiting never ties up a thread.
    """

    __slots__ = ("_lock", "_event", "_async_waiters", "_result", "_error")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._event = threading.Event()
        self._async_waiters: List[Tuple[asyncio.AbstractEventLoop, asyncio.Future]] = []
        self._result: Any = None
        self._error: BaseException | None = None

    @property
    def settled(self) -> bool:
        """Whether a result or error has been delivered."""
        return self._event.is_set()

    def resolve(self, result: Any) -> None:
        """Deliver ``result`` to every current and future waiter."""
        self._settle(result, None)

    def reject(self, error: BaseException) -> None:
        """Deliver ``error`` to every current and future waiter."""
        self._settle(None, error)

    def _settle(self, result: Any, error: BaseException | None) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._result = result
            self._error = error
            self._event.set()
            waiters = self._async_waiters
            self._async_waiters = []
        for loop, future in waiters:
            try:
                loop.call_soon_threadsafe(self._wake, future)
            except RuntimeError:
                # The waiter's loop closed before settlement; it can no
                # longer observe any outcome, so there is nobody to wake.
                pass

    @staticmethod
    def _wake(future: asyncio.Future) -> None:
        if not future.done():
            future.set_result(None)

    def wait(self) -> Any:
        """Block until settled; return the result or raise the error."""
        self._event.wait()
        if self._error is not None:
            raise self._error
        return self._result

    async def wait_async(self) -> Any:
        """Await settlement on the caller's loop; no thread is blocked."""
        future: asyncio.Future | None = None
        with self._lock:
            if not self._event.is_set():
                loop = asyncio.get_running_loop()
                future = loop.create_future()
                self._async_waiters.append((loop, future))
        if future is not None:
            await future
        if self._error is not None:
            raise self._error
        return self._result


class SingleFlight:
    """Per-key registry of in-flight computations.

    :meth:`join` either installs a fresh :class:`Latch` for ``key`` and
    declares the caller leader, or hands back the existing latch to
    follow.  The leader must eventually call exactly one of
    :meth:`resolve` / :meth:`reject`, both of which drop the registry
    entry before settling the latch (see the module docstring for why
    that ordering is the heart of the exactly-once guarantee).
    """

    def __init__(self) -> None:
        self.stats = SingleFlightStats()
        # The registry is shared mutable state across every request
        # thread of a serving process; all entries and counters are
        # touched only under this lock (the lock-discipline checker
        # enforces it).  Latch settlement happens outside.
        self._lock = threading.Lock()
        self._flights: Dict[str, Latch] = {}

    def inflight(self) -> int:
        """Number of keys currently being computed."""
        with self._lock:
            return len(self._flights)

    def join(self, key: str) -> Tuple[bool, Latch]:
        """Return ``(leader, latch)`` for ``key``.

        The leader owns the dispatch and must settle the latch;
        followers just :meth:`Latch.wait` / :meth:`Latch.wait_async`.
        """
        with self._lock:
            latch = self._flights.get(key)
            if latch is not None:
                self.stats.coalesced += 1
                return False, latch
            latch = Latch()
            self._flights[key] = latch
            self.stats.flights += 1
            return True, latch

    def resolve(self, key: str, latch: Latch, result: Any) -> None:
        """Retire the flight and deliver ``result`` to its followers.

        The caller must have written the result through to the cache
        tiers first; dropping the registry entry is what re-opens the
        key, and the cache is the only thing that keeps a requester
        arriving in that instant from dispatching a duplicate call.
        """
        self._forget(key, latch)
        latch.resolve(result)

    def reject(self, key: str, latch: Latch, error: BaseException) -> None:
        """Retire the flight and deliver ``error`` to its followers.

        Nothing was cached, so the next requester of the key starts a
        fresh flight — a failed computation never poisons the registry.
        """
        with self._lock:
            if self._flights.get(key) is latch:
                del self._flights[key]
            self.stats.failures += 1
        latch.reject(error)

    def _forget(self, key: str, latch: Latch) -> None:
        with self._lock:
            if self._flights.get(key) is latch:
                del self._flights[key]
