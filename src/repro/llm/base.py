"""Language-model interface: what RAGE requires of an LLM.

The paper runs Llama-2-7B-chat but notes the software "is fully
compatible with any similar transformer-based LLM".  We keep that
property: everything above this layer sees only :class:`LanguageModel`
— a name plus ``generate(prompt) -> GenerationResult``.  The simulated
model (:mod:`repro.llm.simulated`) and the caching wrapper
(:mod:`repro.llm.cache`) both implement it; a Hugging Face client could
be slotted in without touching the explanation code.

The batching contract
---------------------
Every RAGE explanation reduces to evaluating *many* prompts against the
same model, so backends may additionally implement any of::

    generate_batch(prompts: Sequence[str]) -> List[GenerationResult]
    agenerate(prompt: str) -> Awaitable[GenerationResult]
    agenerate_batch(prompts: Sequence[str]) -> Awaitable[List[GenerationResult]]

with these guarantees, which all callers rely on:

* **Alignment** — exactly one result per input prompt, in input order.
* **Equivalence** — ``generate_batch(ps)[i].answer`` equals
  ``generate(ps[i]).answer`` for deterministic models, and the async
  entry points answer exactly as their sync counterparts.  Auxiliary
  fields are best-effort: a backend may omit per-token attention in
  batch mode when materializing it per prompt would negate the batching
  win (answers, usage and diagnostics must still be populated).
* **No partial failure** — a backend either answers every prompt or
  raises; callers never receive a short list.

All four non-``generate`` entry points are *optional*:
:func:`resolve_dispatch` is the single resolver that inspects a model
and picks the best execution strategy, in this canonical order:

1. ``agenerate_batch`` — native async batch (remote APIs with their own
   batching endpoint, async-aware caches).
2. ``generate_batch`` — native sync batch (vectorized simulation,
   padded transformer batches, cache partitioning).
3. ``agenerate`` — an asyncio task group of per-prompt calls, bounded
   by ``max_inflight``.
4. A thread pool of concurrent ``generate`` calls — only useful for
   backends that release the GIL or wait on I/O.
5. A plain sequential loop.

:func:`batched_generate` (sync callers) and :func:`abatched_generate`
(async callers) both execute whatever the resolver picks; sync callers
prefer a native sync batch over spinning an event loop when both exist
(``prefer_sync=True``), which changes nothing observable — answers are
identical either way.  Callers (e.g.
:meth:`repro.core.evaluate.ContextEvaluator.evaluate_many`) should
never probe for these methods themselves; execution-policy decisions
beyond per-call dispatch (parallelism, capacity) belong to
:mod:`repro.exec`.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Coroutine,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from ..attention.model import AttentionTrace
from ..errors import BatchContractError, ConfigError, GenerationTimeoutError


@dataclass(frozen=True)
class TokenUsage:
    """Token accounting for one generation call."""

    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        """Prompt plus completion tokens."""
        return self.prompt_tokens + self.completion_tokens


@dataclass
class GenerationResult:
    """Everything one LLM call returns.

    Attributes
    ----------
    answer:
        The raw answer string (pre-normalization).
    prompt:
        The exact prompt that produced it.
    attention:
        Synthetic (or real) attention trace over the prompt's sources;
        ``None`` when the model does not expose attention.
    usage:
        Token accounting.
    diagnostics:
        Model-specific extras; the simulated model reports the candidate
        vote tally and the detected question intent here.  Purely
        informational — the explanation algorithms never read it.
    """

    answer: str
    prompt: str
    attention: Optional[AttentionTrace] = None
    usage: TokenUsage = field(default_factory=TokenUsage)
    diagnostics: Dict[str, object] = field(default_factory=dict)


@runtime_checkable
class LanguageModel(Protocol):
    """The minimal LLM contract the explanation layer depends on."""

    @property
    def name(self) -> str:
        """Human-readable model identifier (reports, cache keys)."""
        ...

    def generate(self, prompt: str) -> GenerationResult:
        """Produce an answer for a fully-rendered prompt."""
        ...


#: Concurrency cap applied to the per-prompt async task group when the
#: caller does not pick its own ``max_inflight``.  Unbounded fan-out is
#: never the default: a 4000-prompt plan batch against a remote API
#: must not open 4000 simultaneous requests because nobody chose a
#: bound.  Pick a larger (or smaller) bound explicitly where it
#: matters — e.g. ``asyncio:1000``.
DEFAULT_MAX_INFLIGHT = 64


class DispatchPath(Enum):
    """How a batch of prompts will be executed against a model.

    Values order from most to least capable; :func:`resolve_dispatch`
    picks the first one the model supports.
    """

    ASYNC_BATCH = "async-batch"
    SYNC_BATCH = "sync-batch"
    ASYNC_SINGLE = "async-single"
    THREAD_POOL = "thread-pool"
    SEQUENTIAL = "sequential"


def resolve_dispatch(
    model: LanguageModel,
    max_workers: Optional[int] = None,
    *,
    prefer_sync: bool = False,
) -> DispatchPath:
    """Pick the execution strategy for batches against ``model``.

    The canonical order is async-first (see the module docstring):
    native async batch, native sync batch, per-prompt async task group,
    thread pool (when ``max_workers > 1``), sequential loop.

    ``prefer_sync=True`` — used by :func:`batched_generate`, whose
    caller is synchronous anyway — swaps the first two rungs so a model
    offering both batch entry points is driven without the overhead of
    standing up an event loop.  Answers are identical on every path;
    only the execution vehicle changes.
    """
    has_async_batch = callable(getattr(model, "agenerate_batch", None))
    has_sync_batch = callable(getattr(model, "generate_batch", None))
    if prefer_sync and has_sync_batch:
        return DispatchPath.SYNC_BATCH
    if has_async_batch:
        return DispatchPath.ASYNC_BATCH
    if has_sync_batch:
        return DispatchPath.SYNC_BATCH
    if callable(getattr(model, "agenerate", None)):
        return DispatchPath.ASYNC_SINGLE
    if max_workers is not None and max_workers > 1:
        return DispatchPath.THREAD_POOL
    return DispatchPath.SEQUENTIAL


def run_coroutine(coroutine: Coroutine) -> object:
    """Run a coroutine to completion from synchronous code.

    ``asyncio.run`` refuses to nest inside a running event loop, so when
    one is already running in this thread (a sync call made from inside
    an async backend's worker) the coroutine is executed on a fresh loop
    in a short-lived helper thread instead.
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(coroutine)
    box: Dict[str, object] = {}

    def runner() -> None:
        try:
            box["result"] = asyncio.run(coroutine)
        except BaseException as error:  # propagate to the caller's thread
            box["error"] = error

    thread = threading.Thread(target=runner, name="repro-run-coroutine")
    thread.start()
    thread.join()
    if "error" in box:
        raise box["error"]  # type: ignore[misc]
    return box["result"]


def _check_alignment(
    model: LanguageModel, prompts: Sequence[str], results: List[GenerationResult]
) -> List[GenerationResult]:
    if len(results) != len(prompts):
        raise BatchContractError(
            f"{model.name}: batch returned {len(results)} "
            f"results for {len(prompts)} prompts"
        )
    return results


def _run_with_deadline(thunk, prompts: Sequence[str], timeout: float):
    """Run a blocking ``thunk`` with a hard deadline.

    Python cannot kill a thread, so the call runs in a *daemon* helper
    joined for ``timeout`` seconds: on expiry the caller gets
    :class:`~repro.errors.GenerationTimeoutError` (naming ``prompts``)
    immediately and the hung call is abandoned — being a daemon, it can
    no longer block anything the caller waits on, including event-loop
    shutdown.  This is the sync-model safety net; async models get
    real cancellation via ``asyncio.wait_for`` instead.
    """
    box: Dict[str, object] = {}

    def runner() -> None:
        try:
            box["result"] = thunk()
        except BaseException as error:  # surfaced in the caller's thread
            box["error"] = error

    thread = threading.Thread(target=runner, name="repro-deadline", daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise GenerationTimeoutError(prompts, timeout)
    if "error" in box:
        raise box["error"]  # type: ignore[misc]
    return box["result"]


def _timed_generate(
    model: LanguageModel, prompt: str, timeout: float
) -> GenerationResult:
    """One ``generate`` call under a per-call deadline."""
    return _run_with_deadline(lambda: model.generate(prompt), [prompt], timeout)


def sequential_generate(
    model: LanguageModel,
    prompts: Sequence[str],
    timeout: Optional[float] = None,
) -> List[GenerationResult]:
    """Strictly sequential ``generate`` loop, optionally deadlined.

    With a ``timeout``, each call gets its own deadline; a hung prompt
    is recorded and the loop *keeps going*, so one stuck call fails
    that prompt — raised as one
    :class:`~repro.errors.GenerationTimeoutError` naming every expired
    prompt after the rest of the batch completed — never the siblings.
    """
    if timeout is None:
        return [model.generate(prompt) for prompt in prompts]
    results: List[GenerationResult] = []
    hung: List[str] = []
    for prompt in prompts:
        try:
            results.append(_timed_generate(model, prompt, timeout))
        except GenerationTimeoutError:
            hung.append(prompt)
    if hung:
        raise GenerationTimeoutError(hung, timeout)
    return results


def pooled_generate(
    model: LanguageModel,
    prompts: Sequence[str],
    max_workers: int,
    timeout: Optional[float] = None,
) -> List[GenerationResult]:
    """Thread-pool map of ``generate`` over ``prompts``.

    The one implementation of the thread-pool rung (the dispatch
    ladder and :class:`repro.exec.ThreadedBackend` both call it): the
    pool is clamped to ``min(max_workers, len(prompts))`` so small
    batches stop spawning idle threads, and a single prompt (or width
    1) never builds a pool at all.

    With a ``timeout``, each call gets its own deadline (measured from
    its start, not from batch submission): expired prompts are
    collected while their siblings run to completion, then raised as
    one :class:`~repro.errors.GenerationTimeoutError`.
    """
    workers = min(max_workers, len(prompts))
    if workers <= 1:
        return sequential_generate(model, prompts, timeout=timeout)
    if timeout is None:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(model.generate, prompts))
    hung: List[str] = []
    lock = threading.Lock()

    def guarded(prompt: str) -> Optional[GenerationResult]:
        try:
            return _timed_generate(model, prompt, timeout)
        except GenerationTimeoutError:
            with lock:
                hung.append(prompt)
            return None

    with ThreadPoolExecutor(max_workers=workers) as pool:
        results = list(pool.map(guarded, prompts))
    if hung:
        raise GenerationTimeoutError(hung, timeout)
    return [result for result in results if result is not None]


def _check_inflight(max_inflight: Optional[int]) -> int:
    """Resolve the caller's bound: ``None`` = the safety cap, and a
    nonsensical bound is an error — never silent unbounded fan-out."""
    if max_inflight is None:
        return DEFAULT_MAX_INFLIGHT
    if max_inflight < 1:
        raise ConfigError(
            f"max_inflight must be >= 1 (or None for the default cap), "
            f"got {max_inflight}"
        )
    return max_inflight


async def abatched_generate(
    model: LanguageModel,
    prompts: Sequence[str],
    max_workers: Optional[int] = None,
    max_inflight: Optional[int] = None,
    timeout: Optional[float] = None,
) -> List[GenerationResult]:
    """Async twin of :func:`batched_generate`.

    Executes whatever :func:`resolve_dispatch` picks (async-first):
    a native async batch is awaited directly; a native sync batch or a
    sequential loop runs in a worker thread so the event loop stays
    responsive; per-prompt ``agenerate`` calls run as one task group
    bounded by ``max_inflight`` concurrent awaits (``None`` = the
    :data:`DEFAULT_MAX_INFLIGHT` safety cap); the thread-pool rung
    spreads ``generate`` calls over ``max_workers`` threads.  Results
    are always aligned with ``prompts``.

    ``timeout`` is a **per-call** deadline (seconds): on the per-prompt
    rungs a hung prompt is cancelled (async) or abandoned (sync) while
    its siblings run to completion, then surfaced as one
    :class:`~repro.errors.GenerationTimeoutError` naming exactly the
    expired prompts.  A native batch entry point is a single call and
    gets the deadline as a whole-batch bound — per-prompt enforcement
    requires per-prompt dispatch.
    """
    if not prompts:
        return []
    max_inflight = _check_inflight(max_inflight)
    path = resolve_dispatch(model, max_workers)
    if path is DispatchPath.ASYNC_BATCH:
        call = model.agenerate_batch(prompts)  # type: ignore[attr-defined]
        if timeout is not None:
            try:
                results = list(await asyncio.wait_for(call, timeout))
            except asyncio.TimeoutError:
                raise GenerationTimeoutError(prompts, timeout) from None
        else:
            results = list(await call)
        return _check_alignment(model, prompts, results)
    if path is DispatchPath.SYNC_BATCH:
        if timeout is not None:
            # Not wait_for(to_thread(...)): abandoning a to_thread call
            # leaves its worker blocked in the loop's default executor,
            # and loop shutdown joins those workers — the "timed out"
            # caller would hang on exit anyway.  _timed_batch parks the
            # hung call on a disposable daemon thread instead, so the
            # executor worker is released within the deadline.
            results = list(
                await asyncio.to_thread(_timed_batch, model, prompts, timeout)
            )
        else:
            results = list(
                await asyncio.to_thread(model.generate_batch, prompts)  # type: ignore[attr-defined]
            )
        return _check_alignment(model, prompts, results)
    if path is DispatchPath.ASYNC_SINGLE:
        gate = asyncio.Semaphore(max_inflight)

        async def bounded(prompt: str) -> GenerationResult:
            async with gate:
                call = model.agenerate(prompt)  # type: ignore[attr-defined]
                if timeout is None:
                    return await call
                return await asyncio.wait_for(call, timeout)

        if timeout is None:
            return list(await asyncio.gather(*(bounded(p) for p in prompts)))
        # Siblings always finish: gather with exceptions captured, then
        # fold the timeouts into one error naming the hung prompts.
        outcomes = await asyncio.gather(
            *(bounded(p) for p in prompts), return_exceptions=True
        )
        hung: List[str] = []
        results = []
        for prompt, outcome in zip(prompts, outcomes):
            if isinstance(outcome, asyncio.TimeoutError):
                hung.append(prompt)
            elif isinstance(outcome, BaseException):
                raise outcome
            else:
                results.append(outcome)
        if hung:
            raise GenerationTimeoutError(hung, timeout)
        return results
    if path is DispatchPath.THREAD_POOL:
        assert max_workers is not None
        return await asyncio.to_thread(
            pooled_generate, model, prompts, max_workers, timeout
        )
    return await asyncio.to_thread(sequential_generate, model, prompts, timeout)


def batched_generate(
    model: LanguageModel,
    prompts: Sequence[str],
    max_workers: Optional[int] = None,
    max_inflight: Optional[int] = None,
    timeout: Optional[float] = None,
) -> List[GenerationResult]:
    """Evaluate ``prompts`` against ``model``, batching when possible.

    Synchronous entry point over the :func:`resolve_dispatch` ladder
    (``prefer_sync=True``: a native sync batch wins over standing up an
    event loop).  Async-only models are driven through
    :func:`run_coroutine` with at most ``max_inflight`` concurrent
    calls; the thread pool is clamped to ``min(max_workers,
    len(prompts))`` so small batches stop spawning idle threads.

    Results are always aligned with ``prompts`` (one per prompt, input
    order), whatever the dispatch path.  ``timeout`` deadlines each
    call (see :func:`abatched_generate` for the exact per-rung
    semantics; a native sync batch is one call and gets it as a
    whole-batch bound).
    """
    if not prompts:
        return []
    path = resolve_dispatch(model, max_workers, prefer_sync=True)
    if path is DispatchPath.SYNC_BATCH:
        if timeout is not None:
            batch = _timed_batch(model, prompts, timeout)
        else:
            batch = list(model.generate_batch(prompts))  # type: ignore[attr-defined]
        return _check_alignment(model, prompts, batch)
    if path in (DispatchPath.ASYNC_BATCH, DispatchPath.ASYNC_SINGLE):
        results = run_coroutine(
            abatched_generate(
                model,
                prompts,
                max_workers=max_workers,
                max_inflight=max_inflight,
                timeout=timeout,
            )
        )
        return _check_alignment(model, prompts, list(results))  # type: ignore[arg-type]
    if path is DispatchPath.THREAD_POOL:
        assert max_workers is not None
        return pooled_generate(model, prompts, max_workers, timeout=timeout)
    return sequential_generate(model, prompts, timeout=timeout)


def _timed_batch(
    model: LanguageModel, prompts: Sequence[str], timeout: float
) -> List[GenerationResult]:
    """One native sync-batch call under a whole-batch deadline."""
    return _run_with_deadline(
        lambda: list(model.generate_batch(prompts)),  # type: ignore[attr-defined]
        prompts,
        timeout,
    )
