"""Language-model interface: what RAGE requires of an LLM.

The paper runs Llama-2-7B-chat but notes the software "is fully
compatible with any similar transformer-based LLM".  We keep that
property: everything above this layer sees only :class:`LanguageModel`
— a name plus ``generate(prompt) -> GenerationResult``.  The simulated
model (:mod:`repro.llm.simulated`) and the caching wrapper
(:mod:`repro.llm.cache`) both implement it; a Hugging Face client could
be slotted in without touching the explanation code.

The batching contract
---------------------
Every RAGE explanation reduces to evaluating *many* prompts against the
same model, so backends may additionally implement::

    generate_batch(prompts: Sequence[str]) -> List[GenerationResult]

with these guarantees, which all callers rely on:

* **Alignment** — exactly one result per input prompt, in input order.
* **Equivalence** — ``generate_batch(ps)[i].answer`` equals
  ``generate(ps[i]).answer`` for deterministic models.  Auxiliary
  fields are best-effort: a backend may omit per-token attention in
  batch mode when materializing it per prompt would negate the batching
  win (answers, usage and diagnostics must still be populated).
* **No partial failure** — a backend either answers every prompt or
  raises; callers never receive a short list.

``generate_batch`` is *optional*: :func:`batched_generate` is the
single dispatch point that prefers a native batch implementation, falls
back to an optional thread pool for backends that can overlap I/O
(remote APIs), and otherwise degrades to a sequential loop.  Callers
(e.g. :meth:`repro.core.evaluate.ContextEvaluator.evaluate_many`)
should never probe for ``generate_batch`` themselves.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, runtime_checkable

from ..attention.model import AttentionTrace


@dataclass(frozen=True)
class TokenUsage:
    """Token accounting for one generation call."""

    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        """Prompt plus completion tokens."""
        return self.prompt_tokens + self.completion_tokens


@dataclass
class GenerationResult:
    """Everything one LLM call returns.

    Attributes
    ----------
    answer:
        The raw answer string (pre-normalization).
    prompt:
        The exact prompt that produced it.
    attention:
        Synthetic (or real) attention trace over the prompt's sources;
        ``None`` when the model does not expose attention.
    usage:
        Token accounting.
    diagnostics:
        Model-specific extras; the simulated model reports the candidate
        vote tally and the detected question intent here.  Purely
        informational — the explanation algorithms never read it.
    """

    answer: str
    prompt: str
    attention: Optional[AttentionTrace] = None
    usage: TokenUsage = field(default_factory=TokenUsage)
    diagnostics: Dict[str, object] = field(default_factory=dict)


@runtime_checkable
class LanguageModel(Protocol):
    """The minimal LLM contract the explanation layer depends on."""

    @property
    def name(self) -> str:
        """Human-readable model identifier (reports, cache keys)."""
        ...

    def generate(self, prompt: str) -> GenerationResult:
        """Produce an answer for a fully-rendered prompt."""
        ...


def batched_generate(
    model: LanguageModel,
    prompts: Sequence[str],
    max_workers: Optional[int] = None,
) -> List[GenerationResult]:
    """Evaluate ``prompts`` against ``model``, batching when possible.

    Dispatch order (see the module docstring for the full contract):

    1. The model's own ``generate_batch`` — true batched inference
       (vectorized simulation, padded transformer batches, cache
       partitioning).
    2. A thread pool of ``max_workers`` concurrent ``generate`` calls —
       only useful for backends that release the GIL or wait on I/O
       (remote APIs); pass ``None``/``1`` for compute-bound models.
    3. A plain sequential loop.

    Results are always aligned with ``prompts`` (one per prompt, input
    order), whatever the dispatch path.
    """
    if not prompts:
        return []
    native = getattr(model, "generate_batch", None)
    if callable(native):
        results = list(native(prompts))
        if len(results) != len(prompts):
            raise RuntimeError(
                f"{model.name}: generate_batch returned {len(results)} "
                f"results for {len(prompts)} prompts"
            )
        return results
    if max_workers is not None and max_workers > 1 and len(prompts) > 1:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(model.generate, prompts))
    return [model.generate(prompt) for prompt in prompts]
