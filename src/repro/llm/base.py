"""Language-model interface: what RAGE requires of an LLM.

The paper runs Llama-2-7B-chat but notes the software "is fully
compatible with any similar transformer-based LLM".  We keep that
property: everything above this layer sees only :class:`LanguageModel`
— a name plus ``generate(prompt) -> GenerationResult``.  The simulated
model (:mod:`repro.llm.simulated`) and the caching wrapper
(:mod:`repro.llm.cache`) both implement it; a Hugging Face client could
be slotted in without touching the explanation code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, runtime_checkable

from ..attention.model import AttentionTrace


@dataclass(frozen=True)
class TokenUsage:
    """Token accounting for one generation call."""

    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        """Prompt plus completion tokens."""
        return self.prompt_tokens + self.completion_tokens


@dataclass
class GenerationResult:
    """Everything one LLM call returns.

    Attributes
    ----------
    answer:
        The raw answer string (pre-normalization).
    prompt:
        The exact prompt that produced it.
    attention:
        Synthetic (or real) attention trace over the prompt's sources;
        ``None`` when the model does not expose attention.
    usage:
        Token accounting.
    diagnostics:
        Model-specific extras; the simulated model reports the candidate
        vote tally and the detected question intent here.  Purely
        informational — the explanation algorithms never read it.
    """

    answer: str
    prompt: str
    attention: Optional[AttentionTrace] = None
    usage: TokenUsage = field(default_factory=TokenUsage)
    diagnostics: Dict[str, object] = field(default_factory=dict)


@runtime_checkable
class LanguageModel(Protocol):
    """The minimal LLM contract the explanation layer depends on."""

    @property
    def name(self) -> str:
        """Human-readable model identifier (reports, cache keys)."""
        ...

    def generate(self, prompt: str) -> GenerationResult:
        """Produce an answer for a fully-rendered prompt."""
        ...
