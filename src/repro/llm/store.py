"""Content-addressed persistent store for LLM generations.

:class:`~repro.llm.cache.CachingLLM` memoizes in memory only, so every
process re-pays every LLM call: repeated reports, benchmark reruns and
multi-process serving all start cold.  :class:`PromptStore` is the disk
tier underneath it — a content-addressed map from

    SHA-256(model name + prompt + generation params)

to a serialized :class:`~repro.llm.base.GenerationResult`, designed so
several processes can share one directory safely:

* **Sharded layout** — entries live at ``<root>/<key[:2]>/<key>.json``
  (256 shards), keeping directories small at millions of entries.
* **Atomic writes** — each entry is written to a temporary file in its
  shard and ``os.replace``-d into place, so readers never observe a
  half-written entry and the last concurrent writer simply wins (both
  wrote identical content: the key is the content address).
* **Corruption tolerance** — a truncated, garbled or schema-mismatched
  entry reads as a *miss* (and is deleted best-effort), never an
  exception; a cache must degrade, not fail the explanation.
* **LRU size cap** — with ``max_bytes`` set, reads refresh an entry's
  mtime and writes evict least-recently-used entries until the store
  fits.

The store never talks to a model; :class:`CachingLLM` composes it as a
write-through second tier, and the ``rage cache`` CLI administers it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
import uuid
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional

from ..attention.model import AttentionTrace, TokenAttention
from ..errors import ConfigError, StoreDecodeError
from .base import GenerationResult, TokenUsage

#: Serialization schema version; bump on incompatible layout changes so
#: old entries read as misses instead of mis-parsing.
SCHEMA_VERSION = 1

_META_NAME = "_meta.json"
_META_LOCK_NAME = "_meta.lock"

#: Counter fields persisted per session (mirror of :class:`StoreStats`).
_META_FIELDS = ("hits", "misses", "writes", "write_errors", "evictions", "corrupt")

#: Compaction policy for per-session meta files: once more than
#: ``_COMPACT_THRESHOLD`` session files exist, those untouched for
#: ``_COMPACT_AGE`` seconds are folded into the aggregate ``_meta.json``
#: (under an exclusive lock; locks older than ``_COMPACT_LOCK_STALE``
#: are considered abandoned).
_COMPACT_THRESHOLD = 16
_COMPACT_AGE = 3600.0
_COMPACT_LOCK_STALE = 600.0


def store_key(
    model_name: str,
    prompt: str,
    params: Optional[Mapping[str, object]] = None,
) -> str:
    """Content address: SHA-256 over model name, prompt and params.

    ``params`` captures generation settings that change the answer for
    the same prompt (temperature, max tokens, ...); backends whose
    ``name`` already encodes their configuration — the simulated model
    does — can leave it empty.  Keys are canonical: params are sorted,
    so dict ordering never splits the cache.
    """
    payload = json.dumps(
        {
            "model": model_name,
            "prompt": prompt,
            "params": dict(sorted((params or {}).items(), key=lambda kv: kv[0])),
        },
        sort_keys=True,
        ensure_ascii=False,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _encode_attention(trace: Optional[AttentionTrace]) -> Optional[Dict[str, object]]:
    if trace is None:
        return None
    return {
        "num_layers": trace.num_layers,
        "num_heads": trace.num_heads,
        "tokens": [
            {
                "token": entry.token,
                "source_index": entry.source_index,
                "values": [list(layer) for layer in entry.values],
            }
            for entry in trace.tokens
        ],
    }


def _decode_attention(payload: Optional[Dict]) -> Optional[AttentionTrace]:
    if payload is None:
        return None
    trace = AttentionTrace(
        num_layers=int(payload["num_layers"]),
        num_heads=int(payload["num_heads"]),
    )
    for entry in payload["tokens"]:
        trace.tokens.append(
            TokenAttention(
                token=str(entry["token"]),
                source_index=int(entry["source_index"]),
                values=tuple(
                    tuple(float(v) for v in layer) for layer in entry["values"]
                ),
            )
        )
    return trace


def encode_result(result: GenerationResult) -> Dict[str, object]:
    """JSON-safe payload for one generation (see :func:`decode_result`)."""
    # Diagnostics are model-specific and informational; round-trip them
    # through JSON with a string fallback so exotic values degrade to
    # their repr instead of poisoning the entry.
    diagnostics = json.loads(
        json.dumps(result.diagnostics, ensure_ascii=False, default=str)
    )
    return {
        "version": SCHEMA_VERSION,
        "answer": result.answer,
        "prompt": result.prompt,
        "usage": asdict(result.usage),
        "diagnostics": diagnostics,
        "attention": _encode_attention(result.attention),
    }


def decode_result(payload: Dict) -> GenerationResult:
    """Inverse of :func:`encode_result`; raises on any schema mismatch
    (the store turns that into a miss)."""
    if payload.get("version") != SCHEMA_VERSION:
        raise StoreDecodeError(
            f"unsupported store schema: {payload.get('version')!r}"
        )
    usage = payload["usage"]
    return GenerationResult(
        answer=str(payload["answer"]),
        prompt=str(payload["prompt"]),
        attention=_decode_attention(payload.get("attention")),
        usage=TokenUsage(
            prompt_tokens=int(usage["prompt_tokens"]),
            completion_tokens=int(usage["completion_tokens"]),
        ),
        diagnostics=dict(payload.get("diagnostics") or {}),
    )


@dataclass
class StoreStats:
    """Session counters for one :class:`PromptStore` instance.

    ``hits``/``misses`` count :meth:`PromptStore.get` outcomes;
    ``corrupt`` the subset of misses caused by unreadable entries;
    ``writes`` successful :meth:`PromptStore.put` calls and
    ``write_errors`` the best-effort puts the filesystem refused;
    ``evictions`` entries removed by the LRU size cap.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_errors: int = 0
    evictions: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        """Total get() calls observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class PromptStore:
    """Content-addressed on-disk generation store (see module docstring).

    Parameters
    ----------
    root:
        Directory holding the store (created if missing).
    max_bytes:
        LRU size cap over entry bytes; ``None`` = unbounded.
    """

    def __init__(self, root: str | os.PathLike, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ConfigError(
                f"max_bytes must be >= 1 (or None for unbounded), got {max_bytes}"
            )
        self.root = Path(root).expanduser()
        self.max_bytes = max_bytes
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()
        # Lifetime counters are persisted per *session*: each instance
        # owns one _meta-<pid>-<uid>.json it alone rewrites, so two
        # serving processes sharing the directory can never
        # read-modify-write the same file (the classic lost-update
        # clobber); read_meta() merges every session file, and old
        # session files are compacted into the aggregate (see
        # persist_stats).  _baseline holds counters already represented
        # elsewhere (compacted away from under us) and is subtracted
        # from every persisted payload; _last_persisted snapshots what
        # the current session file contains.
        self._session_id = f"{os.getpid():x}-{uuid.uuid4().hex[:8]}"
        self._baseline = StoreStats()
        self._last_persisted = StoreStats()
        # Counter updates happen under _stats_lock: the serving layer
        # drives one store from many request threads, and
        # unsynchronized `+=` would lose increments.  The byte estimate
        # and the (rare, whole-directory) eviction walk serialize on
        # their own lock so an evicting writer never stalls other
        # threads' counter bumps.
        self._stats_lock = threading.Lock()
        self._evict_lock = threading.Lock()
        # Running byte estimate for the LRU cap: initialized by the
        # first full walk, bumped per put, trued up on every eviction
        # pass.  Overwrites of existing keys over-count, which at worst
        # triggers an eviction scan early — never a wrong eviction.
        self._approx_bytes: Optional[int] = None

    # -- keyed access ------------------------------------------------------

    def path_for(
        self,
        model_name: str,
        prompt: str,
        params: Optional[Mapping[str, object]] = None,
    ) -> Path:
        """Where the entry for this (model, prompt, params) lives."""
        key = store_key(model_name, prompt, params)
        return self.root / key[:2] / f"{key}.json"

    def get(
        self,
        model_name: str,
        prompt: str,
        params: Optional[Mapping[str, object]] = None,
    ) -> Optional[GenerationResult]:
        """The stored generation, or ``None`` on miss/corruption."""
        path = self.path_for(model_name, prompt, params)
        try:
            raw = path.read_bytes()
        except OSError:
            with self._stats_lock:
                self.stats.misses += 1
            return None
        try:
            result = decode_result(json.loads(raw.decode("utf-8")))
        except (ValueError, KeyError, TypeError, AttributeError, UnicodeDecodeError):
            # Truncated/garbled entry: a miss, not an error.  Drop it so
            # the rewrite below heals the store.
            with self._stats_lock:
                self.stats.misses += 1
                self.stats.corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        with self._stats_lock:
            self.stats.hits += 1
        if self.max_bytes is not None:
            try:
                os.utime(path)  # refresh recency for LRU eviction
            except OSError:
                pass
        return result

    def put(
        self,
        model_name: str,
        prompt: str,
        result: GenerationResult,
        params: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Write one generation atomically (idempotent: same key, same
        content — concurrent writers race harmlessly).

        Best-effort, like every other store operation: a full disk or a
        read-only directory costs the entry (counted in
        ``stats.write_errors``), never the explanation that produced
        it.
        """
        path = self.path_for(model_name, prompt, params)
        payload = json.dumps(
            encode_result(result), ensure_ascii=False, sort_keys=True
        ).encode("utf-8")
        tmp_name: Optional[str] = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            descriptor, tmp_name = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=path.parent
            )
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except OSError:
            with self._stats_lock:
                self.stats.write_errors += 1
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            return
        with self._stats_lock:
            self.stats.writes += 1
        if self.max_bytes is not None:
            # One writer at a time updates the estimate and (rarely)
            # walks for eviction; racing writers would both undercount
            # the estimate and double-evict.
            with self._evict_lock:
                if self._approx_bytes is None:
                    over = True  # initialize via the eviction walk
                else:
                    self._approx_bytes += len(payload)
                    over = self._approx_bytes > self.max_bytes
                if over:
                    self._evict_to_cap()

    # -- inventory ---------------------------------------------------------

    def entries(self) -> Iterator[Path]:
        """Every committed entry file (tmp files and meta excluded)."""
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                if not path.name.startswith("."):
                    yield path

    def usage(self) -> tuple:
        """``(entry_count, total_bytes)`` in a single walk."""
        count = 0
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
            count += 1
        return count, total

    @property
    def entry_count(self) -> int:
        """Number of committed entries on disk."""
        return self.usage()[0]

    @property
    def total_bytes(self) -> int:
        """Total size of committed entries on disk."""
        return self.usage()[1]

    def clear(self) -> int:
        """Delete every entry (and the persisted meta); returns the
        number of entries removed.

        Also resets this instance's session counters: a later
        :meth:`persist_stats` must not resurrect lifetime totals the
        clear just erased from disk.
        """
        removed = 0
        for path in list(self.entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        for meta_path in self._meta_paths():
            try:
                meta_path.unlink()
            except OSError:
                pass
        with self._stats_lock:
            self.stats = StoreStats()
            self._baseline = StoreStats()
            self._last_persisted = StoreStats()
        # Taken separately, never nested inside _stats_lock: put()
        # acquires these in the opposite order (evict, then stats).
        with self._evict_lock:
            self._approx_bytes = 0
        return removed

    # -- LRU size cap ------------------------------------------------------

    def _evict_to_cap(self) -> None:
        """One full walk (only run when the running estimate crosses
        the cap), evicting least-recently-used entries; the walk also
        trues the estimate up, so overwrite over-counting self-heals."""
        assert self.max_bytes is not None
        sized: List[tuple] = []
        total = 0
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            sized.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        sized.sort()  # oldest mtime first = least recently used
        for _, size, path in sized:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            with self._stats_lock:
                self.stats.evictions += 1
        self._approx_bytes = total

    # -- cross-process stats -----------------------------------------------

    def _meta_paths(self) -> List[Path]:
        """Every persisted counter file: legacy aggregate + session files."""
        paths = [self.root / _META_NAME]
        try:
            paths.extend(sorted(self.root.glob("_meta-*.json")))
        except OSError:
            pass
        return paths

    def persist_stats(self) -> Dict[str, int]:
        """Persist this session's counters; returns merged lifetime totals.

        Each store instance atomically rewrites only its *own*
        ``_meta-<pid>-<uid>.json`` — idempotent, so repeated calls
        never double-count, and free of cross-process lost updates: two
        serving processes sharing one cache directory each own a
        different file, and :meth:`read_meta` sums them all plus the
        aggregate ``_meta.json``.  Persistence stays best-effort: a
        refusing filesystem costs this session's contribution, never
        the caller.

        Session files are bounded two ways: idle sessions write nothing
        at all, and once enough files accumulate (every CLI run with a
        ``--cache-dir`` leaves one) the ones untouched for an hour are
        *compacted* into the aggregate under an exclusive lock.  An
        owner whose file was compacted away re-baselines — its next
        persist records only the still-unaggregated remainder under a
        fresh session id — so compaction never double-counts a live
        session.
        """
        path = self.root / f"_meta-{self._session_id}.json"
        if any(
            getattr(self._last_persisted, field_name)
            for field_name in _META_FIELDS
        ) and not path.exists():
            # Our previous session file is gone (compacted into the
            # aggregate, or an external clear): what it held is already
            # represented — or deliberately erased — elsewhere.  Record
            # only the remainder, under a name no compactor is racing.
            self._baseline = StoreStats(
                **{
                    field_name: getattr(self._last_persisted, field_name)
                    for field_name in _META_FIELDS
                }
            )
            self._session_id = f"{os.getpid():x}-{uuid.uuid4().hex[:8]}"
            path = self.root / f"_meta-{self._session_id}.json"
        payload = {
            field_name: getattr(self.stats, field_name)
            - getattr(self._baseline, field_name)
            for field_name in _META_FIELDS
        }
        if not any(payload.values()):
            return self.read_meta()  # nothing to record: mint no file
        try:
            descriptor, tmp_name = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=self.root
            )
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except OSError:
            pass
        else:
            self._last_persisted = StoreStats(
                **{
                    field_name: getattr(self.stats, field_name)
                    for field_name in _META_FIELDS
                }
            )
            self._compact_meta(keep=path)
        return self.read_meta()

    def _compact_meta(self, keep: Path) -> None:
        """Fold old session files into the aggregate ``_meta.json``.

        Best-effort and rare: runs only when more than
        ``_COMPACT_THRESHOLD`` session files exist, touches only files
        idle for ``_COMPACT_AGE`` seconds (a session that old persists
        again only in pathological schedules — and then re-baselines,
        see :meth:`persist_stats`), and serializes compactors through
        an ``O_EXCL`` lock file so two of them never fold the same
        counters twice.
        """
        try:
            candidates = [
                p for p in self.root.glob("_meta-*.json") if p != keep
            ]
            if len(candidates) <= _COMPACT_THRESHOLD:
                return
            now = time.time()
            eligible = []
            for p in candidates:
                try:
                    if now - p.stat().st_mtime >= _COMPACT_AGE:
                        eligible.append(p)
                except OSError:
                    continue
            if not eligible:
                return
            lock_path = self.root / _META_LOCK_NAME
            try:
                descriptor = os.open(
                    lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                # Another compactor holds it — unless it crashed long
                # ago, in which case break the lock for the next pass.
                # Rename-then-verify: only one breaker wins the rename,
                # and a lock that turns out fresh is put straight back,
                # so two breakers can never free the path twice and let
                # concurrent compactors fold the same files.
                try:
                    if now - lock_path.stat().st_mtime >= _COMPACT_LOCK_STALE:
                        claimed = (
                            self.root / f".tmp-lock-{uuid.uuid4().hex[:8]}"
                        )
                        os.replace(lock_path, claimed)
                        if time.time() - claimed.stat().st_mtime >= (
                            _COMPACT_LOCK_STALE
                        ):
                            os.unlink(claimed)
                        else:  # raced a live holder's brand-new lock
                            os.replace(claimed, lock_path)
                except OSError:
                    pass
                return
            except OSError:
                return
            os.close(descriptor)
            try:
                merged = self._read_counter_file(self.root / _META_NAME) or {}
                folded: List[Path] = []
                for p in eligible:
                    counters = self._read_counter_file(p)
                    if counters is None:
                        continue
                    for key, value in counters.items():
                        merged[key] = merged.get(key, 0) + value
                    folded.append(p)
                descriptor, tmp_name = tempfile.mkstemp(
                    prefix=".tmp-", suffix=".json", dir=self.root
                )
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    json.dump(merged or {}, handle, sort_keys=True)
                os.replace(tmp_name, self.root / _META_NAME)
                for p in folded:  # only what the new aggregate contains
                    try:
                        p.unlink()
                    except OSError:
                        pass
            finally:
                try:
                    lock_path.unlink()
                except OSError:
                    pass
        except OSError:
            pass

    @staticmethod
    def _read_counter_file(path: Path) -> Optional[Dict[str, int]]:
        """Integer counters from one meta file; ``None`` if unreadable
        (an unreadable file must not be deleted as 'folded')."""
        try:
            payload = json.loads(path.read_text("utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        return {
            key: int(value)
            for key, value in payload.items()
            if isinstance(value, (int, float))
        }

    def read_meta(self) -> Dict[str, int]:
        """Lifetime counters summed across every persisted session
        (and the compacted aggregate); ``{}`` when none."""
        merged: Dict[str, int] = {}
        for path in self._meta_paths():
            counters = self._read_counter_file(path)
            if counters is None:
                continue
            for key, value in counters.items():
                merged[key] = merged.get(key, 0) + value
        return merged
