"""Rule-based claim extraction — the simulated LLM's "reading".

A real LLM reads the delimited sources and internalizes their claims;
the simulated model makes that step an explicit, testable information
extraction pass.  Three claim kinds cover the paper's use cases:

* ``AWARD`` — "<entity> won the <event> in <year>" and variants: the
  championship/award facts behind Use Cases 2 and 3.
* ``SUPERLATIVE`` — "<entity> is widely considered the best ...": an
  explicit best-of assertion (strong evidence for SUPERLATIVE intent).
* ``RANK_FIRST`` — "<entity> ranks first with <value> <metric>": an
  implicit best-of ranking (weaker evidence; Use Case 1's metric docs).

Each claim records the source sentence's analyzed terms so the answerer
can check topical overlap with the question.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet, List, Optional

from ..textproc import Tokenizer, normalize_entity
from .intents import ENTITY_PATTERN

# Split after terminal punctuation, but not after a list marker like
# " 1." (a space, a single digit, then the period) — years ("2018.")
# still split because their last pre-period character is a digit.
_SENTENCE_SPLIT_RE = re.compile(r"(?<=[.!?;])(?<!\s\d[.!?;])\s+")

_ENT = ENTITY_PATTERN


class ClaimKind(str, Enum):
    """What kind of evidence a claim carries."""

    AWARD = "award"
    SUPERLATIVE = "superlative"
    RANK_FIRST = "rank_first"


@dataclass(frozen=True)
class Claim:
    """One extracted assertion from a source sentence.

    Attributes
    ----------
    entity:
        The claimed entity, original surface form ("Roger Federer").
    kind:
        Claim category (controls evidence strength).
    year:
        Event year when stated.
    value:
        Numeric figure for RANK_FIRST claims ("369").
    terms:
        Analyzed terms of the whole sentence, for topical matching.
    sentence:
        The raw sentence (reports/debugging).
    """

    entity: str
    kind: ClaimKind
    year: Optional[int] = None
    value: Optional[str] = None
    terms: FrozenSet[str] = field(default_factory=frozenset)
    sentence: str = ""

    @property
    def entity_key(self) -> str:
        """Normalized entity for comparisons."""
        return normalize_entity(self.entity)


_AWARD_PATTERNS = [
    # "Coco Gauff won the US Open women's singles championship in 2023"
    re.compile(
        r"(?P<entity>" + _ENT + r") won the (?P<event>[\w\s'().-]+?) in (?P<year>\d{4})"
    ),
    # "The 2023 US Open women's singles championship was won by Coco Gauff"
    re.compile(
        r"[Tt]he (?P<year>\d{4}) (?P<event>[\w\s'().-]+?) (?:was won by|went to) "
        r"(?P<entity>" + _ENT + r")"
    ),
    # "Iga Swiatek won the 2022 US Open"
    re.compile(
        r"(?P<entity>" + _ENT + r") (?:won|captured|claimed) the (?P<year>\d{4}) "
        r"(?P<event>[\w\s'().-]+)"
    ),
    # "Coco Gauff is the 2023 US Open champion"
    re.compile(
        r"(?P<entity>" + _ENT + r") (?:is|was) the (?P<year>\d{4}) "
        r"(?P<event>[\w\s'().-]+?) (?:champion|winner)"
    ),
]

_SUPERLATIVE_PATTERNS = [
    # "Roger Federer is widely considered the best ..."
    re.compile(
        r"(?P<entity>" + _ENT + r"),? (?:is|was|remains)"
        r"(?: widely| often| generally)?(?: considered| regarded as| seen as)?"
        r"(?: to be)? the (?:best|greatest|top|finest)"
    ),
    # "... the greatest of them is Novak Djokovic"
    re.compile(
        r"the (?:best|greatest|top|finest) [\w\s'().-]*? is "
        r"(?P<entity>" + _ENT + r")"
    ),
]

_RANK_FIRST_PATTERNS = [
    # "Roger Federer ranks first with 369 Grand Slam match wins"
    re.compile(
        r"(?P<entity>" + _ENT + r") rank(?:s|ed)? first"
        r"(?: with (?P<value>[\d,.]+))?"
    ),
    # "Novak Djokovic leads with 24 titles" / "leads the list with 428 weeks"
    re.compile(
        r"(?P<entity>" + _ENT + r") leads(?: [\w\s'-]+?)? with (?P<value>[\d,.]+)"
    ),
    # Enumerated list style: "1. Roger Federer (369)"
    re.compile(r"1\.\s*(?P<entity>" + _ENT + r")"),
]


def split_sentences(text: str) -> List[str]:
    """Sentence segmentation on terminal punctuation (kept simple)."""
    return [part.strip() for part in _SENTENCE_SPLIT_RE.split(text) if part.strip()]


class ClaimExtractor:
    """Extract all claims from a source text."""

    def __init__(self, tokenizer: Optional[Tokenizer] = None) -> None:
        self._tokenizer = tokenizer or Tokenizer()

    def extract(self, text: str) -> List[Claim]:
        """All claims found in ``text``, in sentence-then-pattern order."""
        claims: List[Claim] = []
        for sentence in split_sentences(text):
            terms = frozenset(self._tokenizer.tokenize(sentence))
            claims.extend(self._extract_awards(sentence, terms))
            claims.extend(self._extract_superlatives(sentence, terms))
            claims.extend(self._extract_rank_firsts(sentence, terms))
        return claims

    def _extract_awards(self, sentence: str, terms: FrozenSet[str]) -> List[Claim]:
        found: List[Claim] = []
        for pattern in _AWARD_PATTERNS:
            for match in pattern.finditer(sentence):
                found.append(
                    Claim(
                        entity=match.group("entity").strip(),
                        kind=ClaimKind.AWARD,
                        year=int(match.group("year")),
                        terms=terms,
                        sentence=sentence,
                    )
                )
        return _dedupe(found)

    def _extract_superlatives(self, sentence: str, terms: FrozenSet[str]) -> List[Claim]:
        found: List[Claim] = []
        for pattern in _SUPERLATIVE_PATTERNS:
            for match in pattern.finditer(sentence):
                found.append(
                    Claim(
                        entity=match.group("entity").strip(),
                        kind=ClaimKind.SUPERLATIVE,
                        terms=terms,
                        sentence=sentence,
                    )
                )
        return _dedupe(found)

    def _extract_rank_firsts(self, sentence: str, terms: FrozenSet[str]) -> List[Claim]:
        found: List[Claim] = []
        for pattern in _RANK_FIRST_PATTERNS:
            for match in pattern.finditer(sentence):
                groups = match.groupdict()
                found.append(
                    Claim(
                        entity=match.group("entity").strip(),
                        kind=ClaimKind.RANK_FIRST,
                        value=groups.get("value"),
                        terms=terms,
                        sentence=sentence,
                    )
                )
        return _dedupe(found)


def _dedupe(claims: List[Claim]) -> List[Claim]:
    """Drop repeated (entity, kind, year) triples within one sentence."""
    seen: set = set()
    unique: List[Claim] = []
    for claim in claims:
        key = (claim.entity_key, claim.kind, claim.year)
        if key not in seen:
            seen.add(key)
            unique.append(claim)
    return unique
