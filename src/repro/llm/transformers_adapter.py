"""Adapter for real Hugging Face transformer models.

The paper runs ``meta-llama/Llama-2-7b-chat-hf`` through the
Transformers library and notes the software "is fully compatible with
any similar transformer-based LLM".  This adapter realizes that claim
for the reproduction: it implements the same :class:`LanguageModel`
protocol as the simulated model, so a real checkpoint can drive every
explanation algorithm unchanged.

``transformers``/``torch`` are *optional*: this environment is offline,
so the import happens lazily and failures raise a clear
:class:`~repro.errors.GenerationError` at construction time.  The
adapter is exercised in tests through a lightweight fake of the
transformers interface (no network, no weights), which pins down the
exact calls a real model would receive.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Sequence

from ..attention.model import AttentionTrace, TokenAttention
from ..errors import GenerationError
from .base import GenerationResult, TokenUsage
from .prompts import parse_prompt


def _completion_count(answer_ids, pad_id) -> int:
    """Generated tokens excluding batch padding.

    HF right-pads generated rows that hit EOS before the batch's
    longest row, so a raw ``len()`` would inflate short answers' usage
    exactly when batching is on.
    """
    if pad_id is None:
        return int(len(answer_ids))
    try:
        return sum(1 for token in answer_ids if int(token) != pad_id)
    except (TypeError, ValueError):  # exotic tensor rows: best effort
        return int(len(answer_ids))


def _mask_sum(row) -> int:
    """Sum an attention-mask row that may be a tensor or a plain list."""
    total = getattr(row, "sum", None)
    if callable(total):
        value = total()
        item = getattr(value, "item", None)
        return int(item() if callable(item) else value)
    return int(sum(row))


class TransformersLLM:
    """Drive a causal-LM checkpoint through the RAGE prompt contract.

    Parameters
    ----------
    model_name:
        Checkpoint id, e.g. ``meta-llama/Llama-2-7b-chat-hf``.
    max_new_tokens:
        Generation cap (answers are short spans).
    device:
        Torch device string; ``None`` lets the library decide.
    max_batch_rows:
        Upper bound on rows per padded ``model.generate`` call.  A
        shared evaluation plan can hand the whole perturbation set to
        ``generate_batch`` at once (hundreds to tens of thousands of
        prompts); without a cap that is a single enormous padded tensor
        and an instant OOM.  Batches are chunked transparently.
    loader:
        Injection point for tests: a callable returning
        ``(tokenizer, model)``.  Defaults to loading through
        ``transformers.AutoTokenizer`` / ``AutoModelForCausalLM``.
    """

    def __init__(
        self,
        model_name: str = "meta-llama/Llama-2-7b-chat-hf",
        max_new_tokens: int = 32,
        device: Optional[str] = None,
        max_batch_rows: int = 32,
        loader=None,
    ) -> None:
        if max_batch_rows < 1:
            raise GenerationError(
                f"max_batch_rows must be >= 1, got {max_batch_rows}"
            )
        self.model_name = model_name
        self.max_new_tokens = max_new_tokens
        self.device = device
        self.max_batch_rows = max_batch_rows
        if loader is None:
            loader = self._default_loader
        try:
            self._tokenizer, self._model = loader(model_name, device)
        except GenerationError:
            raise
        except Exception as error:  # pragma: no cover - depends on env
            raise GenerationError(
                f"could not load {model_name!r}: {error}"
            ) from error

    @staticmethod
    def _default_loader(model_name: str, device: Optional[str]):
        try:
            from transformers import AutoModelForCausalLM, AutoTokenizer
        except ImportError as error:
            raise GenerationError(
                "the transformers library is not installed; use "
                "repro.llm.SimulatedLLM or install transformers+torch"
            ) from error
        tokenizer = AutoTokenizer.from_pretrained(model_name)
        model = AutoModelForCausalLM.from_pretrained(
            model_name, output_attentions=True
        )
        if device is not None:
            model = model.to(device)
        return tokenizer, model

    @property
    def name(self) -> str:
        """Checkpoint identifier."""
        return f"transformers/{self.model_name}"

    @property
    def cache_params(self) -> dict:
        """Persistent-cache identity: generation settings that change
        the answer for the same checkpoint and prompt."""
        return {"max_new_tokens": self.max_new_tokens}

    def generate(self, prompt: str) -> GenerationResult:
        """Tokenize, generate, decode, and expose per-source attention."""
        parsed = parse_prompt(prompt)  # validates the prompt contract
        encoded = self._tokenizer(prompt, return_tensors="pt")
        if self.device is not None and hasattr(encoded, "to"):
            encoded = encoded.to(self.device)
        output = self._model.generate(
            **encoded,
            max_new_tokens=self.max_new_tokens,
            do_sample=False,  # deterministic: RAGE perturbs, it must not sample
            output_attentions=True,
            return_dict_in_generate=True,
        )
        prompt_length = encoded["input_ids"].shape[-1]
        answer_ids = output.sequences[0][prompt_length:]
        answer = self._tokenizer.decode(answer_ids, skip_special_tokens=True).strip()
        trace = self._attention_trace(parsed, prompt, output)
        return GenerationResult(
            answer=answer,
            prompt=prompt,
            attention=trace,
            usage=TokenUsage(
                prompt_tokens=int(prompt_length),
                completion_tokens=int(len(answer_ids)),
            ),
            diagnostics={"model": self.model_name},
        )

    def generate_batch(self, prompts: Sequence[str]) -> List[GenerationResult]:
        """True batched inference: one padded ``model.generate`` call.

        All prompts are tokenized together with left padding (decoder-
        only models generate from the rightmost position, so padding
        must sit on the left) and decoded row by row.  Per the batching
        contract in :mod:`repro.llm.base`, attention traces are omitted
        in batch mode — materializing full per-token attention for every
        row would negate the batching win; use :meth:`generate` where a
        trace is required.
        """
        if not prompts:
            return []
        for prompt in prompts:
            parse_prompt(prompt)  # validate the prompt contract up front
        if len(prompts) > self.max_batch_rows:
            results: List[GenerationResult] = []
            for start in range(0, len(prompts), self.max_batch_rows):
                results.extend(
                    self.generate_batch(prompts[start : start + self.max_batch_rows])
                )
            return results
        pad_restore = getattr(self._tokenizer, "padding_side", None)
        if pad_restore is not None:
            self._tokenizer.padding_side = "left"
        if getattr(self._tokenizer, "pad_token", None) is None and hasattr(
            self._tokenizer, "eos_token"
        ):
            self._tokenizer.pad_token = self._tokenizer.eos_token
        try:
            encoded = self._tokenizer(list(prompts), return_tensors="pt", padding=True)
        except TypeError:
            # Tokenizer cannot pad a batch (minimal fakes, exotic
            # backends): keep the contract with sequential calls.
            return [self.generate(prompt) for prompt in prompts]
        finally:
            if pad_restore is not None:
                self._tokenizer.padding_side = pad_restore
        if self.device is not None and hasattr(encoded, "to"):
            encoded = encoded.to(self.device)
        output = self._model.generate(
            **encoded,
            max_new_tokens=self.max_new_tokens,
            do_sample=False,
            return_dict_in_generate=True,
        )
        prompt_length = encoded["input_ids"].shape[-1]
        attention_mask = encoded.get("attention_mask")
        results: List[GenerationResult] = []
        pad_id = getattr(self._tokenizer, "pad_token_id", None)
        for row, prompt in enumerate(prompts):
            answer_ids = output.sequences[row][prompt_length:]
            answer = self._tokenizer.decode(
                answer_ids, skip_special_tokens=True
            ).strip()
            if attention_mask is not None:
                real_tokens = int(_mask_sum(attention_mask[row]))
            else:
                real_tokens = int(prompt_length)
            results.append(
                GenerationResult(
                    answer=answer,
                    prompt=prompt,
                    attention=None,
                    usage=TokenUsage(
                        prompt_tokens=real_tokens,
                        completion_tokens=_completion_count(answer_ids, pad_id),
                    ),
                    diagnostics={"model": self.model_name, "batched": True},
                )
            )
        return results

    async def agenerate(self, prompt: str) -> GenerationResult:
        """Async :meth:`generate`: model inference runs in a worker
        thread so an event loop driving many backends stays responsive
        (HF generation holds the GIL only between kernel launches)."""
        return await asyncio.to_thread(self.generate, prompt)

    async def agenerate_batch(self, prompts: Sequence[str]) -> List[GenerationResult]:
        """Async :meth:`generate_batch`, off-loop for the same reason."""
        return await asyncio.to_thread(self.generate_batch, list(prompts))

    def _attention_trace(self, parsed, prompt: str, output) -> Optional[AttentionTrace]:
        """Fold HF attention tensors into the library's trace structure.

        Maps each prompt token to its source by character offsets, then
        stores the last-position attention row per layer/head — exactly
        the values the paper sums over layers, heads and tokens.
        """
        attentions = getattr(output, "attentions", None)
        if not attentions:
            return None
        first_step = attentions[0]  # tuple over layers, prompt-wide
        num_layers = len(first_step)
        num_heads = first_step[0].shape[1]
        offsets = self._tokenizer(
            prompt, return_offsets_mapping=True
        ).get("offset_mapping")
        if offsets is None:
            return None
        source_spans = []
        cursor = 0
        for text in parsed.source_texts:
            start = prompt.find(text, cursor)
            source_spans.append((start, start + len(text)))
            cursor = start + len(text)
        trace = AttentionTrace(num_layers=num_layers, num_heads=num_heads)
        for token_index, (start, end) in enumerate(offsets):
            source_index = next(
                (
                    i
                    for i, (s_start, s_end) in enumerate(source_spans)
                    if start >= s_start and end <= s_end
                ),
                None,
            )
            if source_index is None:
                continue
            values = tuple(
                tuple(
                    float(first_step[layer][0, head, -1, token_index])
                    for head in range(num_heads)
                )
                for layer in range(num_layers)
            )
            trace.tokens.append(
                TokenAttention(
                    token=prompt[start:end],
                    source_index=source_index,
                    values=values,
                )
            )
        return trace
