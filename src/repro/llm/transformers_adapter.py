"""Adapter for real Hugging Face transformer models.

The paper runs ``meta-llama/Llama-2-7b-chat-hf`` through the
Transformers library and notes the software "is fully compatible with
any similar transformer-based LLM".  This adapter realizes that claim
for the reproduction: it implements the same :class:`LanguageModel`
protocol as the simulated model, so a real checkpoint can drive every
explanation algorithm unchanged.

``transformers``/``torch`` are *optional*: this environment is offline,
so the import happens lazily and failures raise a clear
:class:`~repro.errors.GenerationError` at construction time.  The
adapter is exercised in tests through a lightweight fake of the
transformers interface (no network, no weights), which pins down the
exact calls a real model would receive.
"""

from __future__ import annotations

from typing import Optional

from ..attention.model import AttentionTrace, TokenAttention
from ..errors import GenerationError
from .base import GenerationResult, TokenUsage
from .prompts import parse_prompt


class TransformersLLM:
    """Drive a causal-LM checkpoint through the RAGE prompt contract.

    Parameters
    ----------
    model_name:
        Checkpoint id, e.g. ``meta-llama/Llama-2-7b-chat-hf``.
    max_new_tokens:
        Generation cap (answers are short spans).
    device:
        Torch device string; ``None`` lets the library decide.
    loader:
        Injection point for tests: a callable returning
        ``(tokenizer, model)``.  Defaults to loading through
        ``transformers.AutoTokenizer`` / ``AutoModelForCausalLM``.
    """

    def __init__(
        self,
        model_name: str = "meta-llama/Llama-2-7b-chat-hf",
        max_new_tokens: int = 32,
        device: Optional[str] = None,
        loader=None,
    ) -> None:
        self.model_name = model_name
        self.max_new_tokens = max_new_tokens
        self.device = device
        if loader is None:
            loader = self._default_loader
        try:
            self._tokenizer, self._model = loader(model_name, device)
        except GenerationError:
            raise
        except Exception as error:  # pragma: no cover - depends on env
            raise GenerationError(
                f"could not load {model_name!r}: {error}"
            ) from error

    @staticmethod
    def _default_loader(model_name: str, device: Optional[str]):
        try:
            from transformers import AutoModelForCausalLM, AutoTokenizer
        except ImportError as error:
            raise GenerationError(
                "the transformers library is not installed; use "
                "repro.llm.SimulatedLLM or install transformers+torch"
            ) from error
        tokenizer = AutoTokenizer.from_pretrained(model_name)
        model = AutoModelForCausalLM.from_pretrained(
            model_name, output_attentions=True
        )
        if device is not None:
            model = model.to(device)
        return tokenizer, model

    @property
    def name(self) -> str:
        """Checkpoint identifier."""
        return f"transformers/{self.model_name}"

    def generate(self, prompt: str) -> GenerationResult:
        """Tokenize, generate, decode, and expose per-source attention."""
        parsed = parse_prompt(prompt)  # validates the prompt contract
        encoded = self._tokenizer(prompt, return_tensors="pt")
        if self.device is not None and hasattr(encoded, "to"):
            encoded = encoded.to(self.device)
        output = self._model.generate(
            **encoded,
            max_new_tokens=self.max_new_tokens,
            do_sample=False,  # deterministic: RAGE perturbs, it must not sample
            output_attentions=True,
            return_dict_in_generate=True,
        )
        prompt_length = encoded["input_ids"].shape[-1]
        answer_ids = output.sequences[0][prompt_length:]
        answer = self._tokenizer.decode(answer_ids, skip_special_tokens=True).strip()
        trace = self._attention_trace(parsed, prompt, output)
        return GenerationResult(
            answer=answer,
            prompt=prompt,
            attention=trace,
            usage=TokenUsage(
                prompt_tokens=int(prompt_length),
                completion_tokens=int(len(answer_ids)),
            ),
            diagnostics={"model": self.model_name},
        )

    def _attention_trace(self, parsed, prompt: str, output) -> Optional[AttentionTrace]:
        """Fold HF attention tensors into the library's trace structure.

        Maps each prompt token to its source by character offsets, then
        stores the last-position attention row per layer/head — exactly
        the values the paper sums over layers, heads and tokens.
        """
        attentions = getattr(output, "attentions", None)
        if not attentions:
            return None
        first_step = attentions[0]  # tuple over layers, prompt-wide
        num_layers = len(first_step)
        num_heads = first_step[0].shape[1]
        offsets = self._tokenizer(
            prompt, return_offsets_mapping=True
        ).get("offset_mapping")
        if offsets is None:
            return None
        source_spans = []
        cursor = 0
        for text in parsed.source_texts:
            start = prompt.find(text, cursor)
            source_spans.append((start, start + len(text)))
            cursor = start + len(text)
        trace = AttentionTrace(num_layers=num_layers, num_heads=num_heads)
        for token_index, (start, end) in enumerate(offsets):
            source_index = next(
                (
                    i
                    for i, (s_start, s_end) in enumerate(source_spans)
                    if start >= s_start and end <= s_end
                ),
                None,
            )
            if source_index is None:
                continue
            values = tuple(
                tuple(
                    float(first_step[layer][0, head, -1, token_index])
                    for head in range(num_heads)
                )
                for layer in range(num_layers)
            )
            trace.tokens.append(
                TokenAttention(
                    token=prompt[start:end],
                    source_index=source_index,
                    values=values,
                )
            )
        return trace
