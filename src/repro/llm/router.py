"""Multi-provider routing: fallback chains, circuit breakers, hedging.

A single :class:`~repro.llm.remote.RemoteLLM` endpoint is a single
point of failure for every tenant behind ``rage serve``.
:class:`RouterLLM` removes it: an ordered pool of
:class:`~repro.llm.base.LanguageModel` members (remote endpoints, a
local simulated fallback, anything implementing the contract) answers
as *one* model, failing over member by member when transport faults
strike.  Because every member must answer identically (same knowledge,
different backends), a degraded provider changes only who served a
report — never its bytes.

Per-provider state lives in a :class:`ProviderHealth` record:

:class:`CircuitBreaker`
    Closed → open after ``threshold`` *consecutive*
    :class:`~repro.errors.TransportError` /
    :class:`~repro.errors.GenerationTimeoutError` faults; open →
    half-open after ``cooldown`` seconds; one probe request (claimed
    exclusively via :meth:`CircuitBreaker.try_claim`) decides re-close
    vs re-open.  While a breaker is open, selection skips the member
    without paying a doomed request.
rolling latency / error-rate scoring
    A bounded deque of recent success latencies (drives the hedging
    default — observed p95) plus lifetime call/failure counters.
usage/cost attribution
    Each member keeps its own usage counters; the router's
    :meth:`RouterLLM.provider_stats` / :meth:`RouterLLM.usage_lines`
    surface per-provider cost so ``/metrics`` and ``report --stats``
    can attribute spend to the backend that actually served.

Hedging (``hedge=True``, async path only): once the primary has been
in flight longer than ``hedge_delay`` (default: the primary's observed
p95 latency), a backup request fires on the next healthy provider;
first response wins and the loser is cancelled — the cancellation
propagates through :meth:`~repro.llm.transport.TokenBucket.aacquire`'s
cancellation-safe refund path, so an abandoned hedge never bleeds a
member's rate limit.

Deliberately *no* ``generate_batch`` / ``agenerate_batch``: like the
remote adapter, the router answers one prompt per call so the dispatch
ladder's ``max_inflight`` bound governs fan-out — and failover/hedging
decisions stay per-prompt, never all-or-nothing for a whole batch.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import (
    ConfigError,
    GenerationTimeoutError,
    NoProviderAvailableError,
    TransportError,
)
from .base import GenerationResult, LanguageModel

#: Consecutive-failure count that trips a breaker when the caller
#: picks none.
DEFAULT_BREAKER_THRESHOLD = 5

#: Seconds an open breaker waits before allowing a half-open probe.
DEFAULT_BREAKER_COOLDOWN = 30.0

#: Rolling window of success latencies kept per provider (p95 source).
LATENCY_WINDOW = 128

#: The faults that fail over to the next provider and count against a
#: breaker.  Anything else (config errors, malformed-prompt bugs) says
#: nothing about provider health and propagates unchanged.
FAILOVER_ERRORS = (TransportError, GenerationTimeoutError)


class BreakerState(Enum):
    """Circuit-breaker lifecycle states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe.

    Closed is the healthy state; ``threshold`` consecutive recorded
    failures trip it open.  After ``cooldown`` seconds the breaker
    turns half-open: exactly one caller may :meth:`try_claim` the
    probe request, and that request's outcome decides — success
    re-closes (and resets the failure count), failure re-opens for a
    fresh cooldown.  ``clock`` is injectable so tests drive the
    cooldown deterministically.

    Thread-safe: routing happens from handler threads and event-loop
    tasks alike.
    """

    def __init__(
        self,
        threshold: int = DEFAULT_BREAKER_THRESHOLD,
        cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ConfigError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        if cooldown < 0:
            raise ConfigError(
                f"breaker cooldown must be >= 0 seconds, got {cooldown}"
            )
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive = 0
        self._opened_at = 0.0
        self._probing = False
        self.trips = 0  # transitions to OPEN (initial and re-open)
        self.reclosures = 0  # half-open probes that re-closed

    def _refresh(self) -> None:
        """Open → half-open once the cooldown elapsed (under lock)."""
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = BreakerState.HALF_OPEN

    @property
    def state(self) -> BreakerState:
        """Current state (cooldown-aware: open turns half-open lazily)."""
        with self._lock:
            self._refresh()
            return self._state

    @property
    def available(self) -> bool:
        """Whether a request may be routed here right now."""
        with self._lock:
            self._refresh()
            if self._state is BreakerState.CLOSED:
                return True
            return self._state is BreakerState.HALF_OPEN and not self._probing

    @property
    def consecutive_failures(self) -> int:
        """Current consecutive-failure count (resets on success)."""
        with self._lock:
            return self._consecutive

    def try_claim(self) -> bool:
        """Claim the right to send one request.

        Closed: always granted.  Half-open: granted to exactly one
        caller (the probe) until its outcome is recorded.  Open: never.
        Every granted claim MUST be resolved by :meth:`record_success`,
        :meth:`record_failure` or :meth:`abort` — the probe slot is
        exclusive and an unresolved claim would wedge the breaker
        half-open forever.
        """
        with self._lock:
            self._refresh()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        """A routed request succeeded; a probe success re-closes."""
        with self._lock:
            if self._probing:
                self._probing = False
                self._state = BreakerState.CLOSED
                self._consecutive = 0
                self.reclosures += 1
            elif self._state is BreakerState.CLOSED:
                self._consecutive = 0
            # Success while OPEN is a pre-trip straggler landing late;
            # only the probe may re-close.

    def record_failure(self) -> None:
        """A routed request failed; threshold/probe semantics apply."""
        with self._lock:
            if self._probing:
                self._probing = False
                self._state = BreakerState.OPEN
                self._opened_at = self._clock()
                self.trips += 1
                return
            if self._state is BreakerState.CLOSED:
                self._consecutive += 1
                if self._consecutive >= self.threshold:
                    self._state = BreakerState.OPEN
                    self._opened_at = self._clock()
                    self.trips += 1
            # Failure while OPEN: already open, nothing to decide.

    def abort(self) -> None:
        """Release a claim without deciding it.

        For requests that ended in something that says nothing about
        provider health — a cancelled hedge loser, a programming
        error propagating out.  A closed breaker is untouched; a
        claimed probe slot is handed back so the next caller may probe.
        """
        with self._lock:
            self._probing = False


class ProviderHealth:
    """Per-provider routing state: breaker, latency window, counters.

    ``calls``/``successes``/``failures`` count requests the router
    actually routed to this member (breaker-skipped requests touch
    nothing).  ``hedges_fired``/``hedges_won`` attribute hedging to the
    member that served as the backup.
    """

    def __init__(
        self,
        name: str,
        breaker: CircuitBreaker,
        window: int = LATENCY_WINDOW,
    ) -> None:
        self.name = name
        self.breaker = breaker
        self._lock = threading.Lock()
        self._latencies: Deque[float] = deque(maxlen=window)
        self.calls = 0
        self.successes = 0
        self.failures = 0
        self.hedges_fired = 0
        self.hedges_won = 0

    def record_success(self, latency: float) -> None:
        """Fold one served request into the breaker and the window."""
        self.breaker.record_success()
        with self._lock:
            self.calls += 1
            self.successes += 1
            self._latencies.append(latency)

    def record_failure(self) -> None:
        """Fold one failed request into the breaker and the counters."""
        self.breaker.record_failure()
        with self._lock:
            self.calls += 1
            self.failures += 1

    def note_hedge_fired(self) -> None:
        with self._lock:
            self.hedges_fired += 1

    def note_hedge_won(self) -> None:
        with self._lock:
            self.hedges_won += 1

    def p95_latency(self) -> Optional[float]:
        """p95 of the rolling success-latency window; ``None`` when empty."""
        with self._lock:
            samples = sorted(self._latencies)
        if not samples:
            return None
        return samples[int(0.95 * (len(samples) - 1))]

    def error_rate(self) -> float:
        """Failures over routed calls (0.0 before any traffic)."""
        with self._lock:
            return self.failures / self.calls if self.calls else 0.0


@dataclass
class RouterStats:
    """Router-level counters (provider attribution lives in health)."""

    requests: int = 0  # generate/agenerate entries
    failovers: int = 0  # requests served after at least one member failed
    hedges_fired: int = 0
    hedges_won: int = 0
    exhausted: int = 0  # requests no provider could serve


class _BreakerOpen(Exception):
    """Internal: a member was skipped because its breaker refused."""

    def __init__(self, name: str, state: str) -> None:
        self.name = name
        self.detail = f"circuit {state}"
        super().__init__(f"{name}: {self.detail}")


def _describe(error: BaseException) -> str:
    return f"{type(error).__name__}: {error}"


class RouterLLM:
    """An ordered provider pool as one :class:`LanguageModel`.

    Parameters
    ----------
    providers:
        Members in priority order; the first healthy one serves.  All
        members must answer identically for the router's byte-identity
        guarantee to hold (same knowledge behind different backends).
        Names must be unique — they key health state and attribution.
    breaker_threshold / breaker_cooldown:
        Per-provider :class:`CircuitBreaker` parameters.
    hedge:
        Enable hedged requests on the async path: a backup request
        fires on the next healthy provider once the primary has been
        in flight longer than the hedge delay; first response wins,
        the loser is cancelled (rate-limit reservation refunded).
    hedge_delay:
        Seconds before the backup fires; ``None`` uses the primary's
        observed p95 latency (no hedge until a window exists).
    clock:
        Injectable monotonic clock shared by the breakers and the
        latency measurements (deterministic tests).
    """

    def __init__(
        self,
        providers: Sequence[LanguageModel],
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        hedge: bool = False,
        hedge_delay: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        members = list(providers)
        if not members:
            raise ConfigError("a router needs at least one provider")
        names = [member.name for member in members]
        if len(set(names)) != len(names):
            raise ConfigError(
                f"duplicate provider names in router pool: {names!r}"
            )
        if hedge_delay is not None and hedge_delay <= 0:
            raise ConfigError(
                f"hedge_delay must be > 0 seconds (or None), got {hedge_delay}"
            )
        self._members = members
        self._clock = clock
        self.hedge = hedge
        self.hedge_delay = hedge_delay
        self.health: Dict[str, ProviderHealth] = {
            name: ProviderHealth(
                name,
                CircuitBreaker(
                    threshold=breaker_threshold,
                    cooldown=breaker_cooldown,
                    clock=clock,
                ),
            )
            for name in names
        }
        self.stats = RouterStats()
        self._lock = threading.Lock()

    # -- identity ----------------------------------------------------------

    @property
    def members(self) -> Tuple[LanguageModel, ...]:
        """The pool, in priority order."""
        return tuple(self._members)

    @property
    def name(self) -> str:
        """Identifier for reports and cache keys."""
        return "router(" + "+".join(m.name for m in self._members) + ")"

    @property
    def cache_params(self) -> Dict[str, object]:
        """Merged member identities: the pool answers as ONE model.

        Deliberately the union of every member's identity — never the
        serving member's: a degraded run answered by the fallback must
        hit exactly the store entries a healthy-primary run wrote, or
        warm-cache byte-identity would silently depend on which
        backend happened to be up.
        """
        return {
            "providers": [
                {
                    "name": member.name,
                    "params": dict(getattr(member, "cache_params", None) or {}),
                }
                for member in self._members
            ]
        }

    def _pool(self) -> List[Tuple[LanguageModel, ProviderHealth]]:
        return [(member, self.health[member.name]) for member in self._members]

    # -- sync failover -----------------------------------------------------

    def generate(self, prompt: str) -> GenerationResult:
        """Walk healthy providers in priority order until one answers.

        A member whose breaker refuses is skipped without a request; a
        member that raises a :data:`FAILOVER_ERRORS` fault is recorded
        against its breaker and the walk continues.  An exhausted walk
        raises :class:`~repro.errors.NoProviderAvailableError` naming
        every member's reason.
        """
        with self._lock:
            self.stats.requests += 1
        failures: Dict[str, str] = {}
        for member, health in self._pool():
            if not health.breaker.try_claim():
                failures[member.name] = f"circuit {health.breaker.state.value}"
                continue
            start = self._clock()
            try:
                result = member.generate(prompt)
            except FAILOVER_ERRORS as error:
                health.record_failure()
                failures[member.name] = _describe(error)
                continue
            except BaseException:
                # Not a health signal (programming error, cancellation):
                # hand back any claimed probe slot and propagate.
                health.breaker.abort()
                raise
            health.record_success(self._clock() - start)
            if failures:
                with self._lock:
                    self.stats.failovers += 1
            return result
        with self._lock:
            self.stats.exhausted += 1
        raise NoProviderAvailableError(failures)

    # -- async failover and hedging ----------------------------------------

    async def agenerate(self, prompt: str) -> GenerationResult:
        """Async :meth:`generate`; with ``hedge=True``, hedged."""
        with self._lock:
            self.stats.requests += 1
        if self.hedge:
            return await self._agenerate_hedged(prompt)
        return await self._afailover(prompt, {})

    async def _attempt(
        self, member: LanguageModel, health: ProviderHealth, prompt: str
    ) -> GenerationResult:
        """One claimed, recorded request against one member."""
        if not health.breaker.try_claim():
            raise _BreakerOpen(member.name, health.breaker.state.value)
        start = self._clock()
        try:
            agen = getattr(member, "agenerate", None)
            if callable(agen):
                result = await agen(prompt)
            else:
                result = await asyncio.to_thread(member.generate, prompt)
        except FAILOVER_ERRORS:
            health.record_failure()
            raise
        except BaseException:
            # Cancellation (a hedge loser) or a non-transport fault:
            # says nothing about health; release any probe claim.
            health.breaker.abort()
            raise
        health.record_success(self._clock() - start)
        return result

    async def _afailover(
        self, prompt: str, failures: Dict[str, str]
    ) -> GenerationResult:
        """Sequential async walk, skipping members already in ``failures``."""
        for member, health in self._pool():
            if member.name in failures:
                continue
            try:
                result = await self._attempt(member, health, prompt)
            except _BreakerOpen as skip:
                failures[skip.name] = skip.detail
                continue
            except FAILOVER_ERRORS as error:
                failures[member.name] = _describe(error)
                continue
            if failures:
                with self._lock:
                    self.stats.failovers += 1
            return result
        with self._lock:
            self.stats.exhausted += 1
        raise NoProviderAvailableError(failures)

    async def _agenerate_hedged(self, prompt: str) -> GenerationResult:
        """Primary with a delayed backup race; first response wins.

        Falls back to the plain failover walk when there is no second
        healthy provider to hedge onto, or no delay to hedge with
        (neither configured nor an observed p95 yet).
        """
        available = [
            (member, health)
            for member, health in self._pool()
            if health.breaker.available
        ]
        if len(available) < 2:
            return await self._afailover(prompt, {})
        p_member, p_health = available[0]
        b_member, b_health = available[1]
        delay = (
            self.hedge_delay
            if self.hedge_delay is not None
            else p_health.p95_latency()
        )
        if delay is None:
            return await self._afailover(prompt, {})

        failures: Dict[str, str] = {}
        primary_task = asyncio.ensure_future(
            self._attempt(p_member, p_health, prompt)
        )
        owners: Dict[asyncio.Future, LanguageModel] = {primary_task: p_member}
        try:
            done, _ = await asyncio.wait({primary_task}, timeout=delay)
            if primary_task in done:
                try:
                    return primary_task.result()
                except _BreakerOpen as skip:
                    failures[skip.name] = skip.detail
                except FAILOVER_ERRORS as error:
                    failures[p_member.name] = _describe(error)
                return await self._afailover(prompt, failures)

            # Primary exceeded the hedge delay: fire the backup.
            backup_task = asyncio.ensure_future(
                self._attempt(b_member, b_health, prompt)
            )
            owners[backup_task] = b_member
            b_health.note_hedge_fired()
            with self._lock:
                self.stats.hedges_fired += 1

            pending: set = set(owners)
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    try:
                        result = task.result()
                    except _BreakerOpen as skip:
                        failures[skip.name] = skip.detail
                        continue
                    except FAILOVER_ERRORS as error:
                        failures[owners[task].name] = _describe(error)
                        continue
                    # First success wins; cancel the loser and wait out
                    # its cancellation so the token-bucket refund has
                    # landed before this call returns.
                    for loser in pending:
                        loser.cancel()
                    if pending:
                        await asyncio.wait(pending)
                    if task is backup_task:
                        b_health.note_hedge_won()
                        with self._lock:
                            self.stats.hedges_won += 1
                    if failures:
                        with self._lock:
                            self.stats.failovers += 1
                    return result
            # Both racers failed; walk whatever remains of the pool.
            return await self._afailover(prompt, failures)
        except asyncio.CancelledError:
            # The caller timed out / was cancelled: take the in-flight
            # attempts down with us (their refunds ride the same path).
            for task in owners:
                task.cancel()
            await asyncio.gather(*owners, return_exceptions=True)
            raise

    # -- accounting --------------------------------------------------------

    def provider_stats(self) -> List[Dict[str, object]]:
        """Ordered per-provider routing state (the ``/metrics`` block)."""
        entries: List[Dict[str, object]] = []
        for member, health in self._pool():
            breaker = health.breaker
            cost: Optional[float] = None
            usage_cost = getattr(member, "usage_cost", None)
            if callable(usage_cost):
                cost = usage_cost()
            entries.append(
                {
                    "name": member.name,
                    "state": breaker.state.value,
                    "available": breaker.available,
                    "consecutive_failures": breaker.consecutive_failures,
                    "trips": breaker.trips,
                    "reclosures": breaker.reclosures,
                    "calls": health.calls,
                    "failures": health.failures,
                    "error_rate": health.error_rate(),
                    "p95_latency": health.p95_latency(),
                    "hedges_fired": health.hedges_fired,
                    "hedges_won": health.hedges_won,
                    "cost": cost,
                }
            )
        return entries

    def usage_cost(self) -> Optional[float]:
        """Summed member costs; ``None`` when no member prices usage."""
        costs: List[float] = []
        for member in self._members:
            usage_cost = getattr(member, "usage_cost", None)
            if callable(usage_cost):
                cost = usage_cost()
                if cost is not None:
                    costs.append(cost)
        return sum(costs) if costs else None

    def usage_lines(self) -> List[str]:
        """Human-readable routing summary (``report --stats``)."""
        stats = self.stats
        lines = [
            f"Router: {len(self._members)} providers, "
            f"{stats.requests} requests, {stats.failovers} failovers, "
            f"{stats.hedges_fired} hedges fired ({stats.hedges_won} won)"
        ]
        for entry in self.provider_stats():
            line = (
                f"  {entry['name']}: {entry['state']}, "
                f"{entry['calls']} calls, {entry['failures']} failures, "
                f"{entry['trips']} trips"
            )
            if entry["cost"] is not None:
                line += f", ${entry['cost']:.6f}"
            lines.append(line)
        total = self.usage_cost()
        if total is not None:
            lines.append(f"Estimated cost (all providers): ${total:.6f}")
        return lines
