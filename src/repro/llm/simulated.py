"""The simulated LLM — the Llama-2-7B-chat substitute.

The model is a deterministic open-book question answerer whose behaviour
reproduces the three properties RAGE's explanations probe:

1. **Presence sensitivity** — answers are derived from claims extracted
   from the sources actually present in the prompt, so removing sources
   (combination perturbations) changes the evidence pool.
2. **Order sensitivity** — each source's evidence is weighted by a
   positional attention prior (V-shaped by default: the "lost in the
   middle" bias), so reordering sources (permutation perturbations) can
   flip the answer even though the evidence set is unchanged.
3. **Parametric knowledge** — a :class:`~repro.llm.knowledge.KnowledgeBase`
   supplies the empty-context answer and contributes a weighted prior to
   in-context voting, so context evidence competes with (and can
   override) "trained" beliefs.

Decision rules by intent
------------------------
SUPERLATIVE / FACTOID
    Weighted vote per candidate entity: sum over sources of
    ``position_weight x claim_strength`` for topical claims, plus the
    knowledge-base prior.  Highest vote wins.
MOST_RECENT
    Each dated award claim scores
    ``position_weight x recency_decay^(max_year - year)``; an entity
    takes its best claim; highest score wins.  Recency and attention
    therefore trade off: a newer claim *in a low-attention position* can
    lose to an older claim in a high-attention one — exactly the failure
    mode Use Case 2 demonstrates.
COUNT
    Count the distinct in-range years for which some source asserts the
    subject won; order-insensitive by design (Use Case 3's stability).

All ties break lexicographically on the normalized entity so the model
is a pure function of the prompt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..attention.model import AttentionModel, AttentionTrace
from ..attention.positional import PositionPrior, position_weights
from ..errors import ConfigError
from ..textproc import Tokenizer, normalize_entity
from .base import GenerationResult, TokenUsage
from .extraction import Claim, ClaimExtractor, ClaimKind
from .intents import ParsedQuestion, QuestionIntent, parse_question
from .knowledge import KnowledgeBase
from .prompts import parse_prompt


# Stemmed trigger words shared by question intents and claim patterns;
# never counted as topical overlap (see SimulatedLLM._topical).
_INTENT_TERMS = frozenset(
    {
        "best", "greatest", "top", "finest", "recent", "latest", "newest",
        "current", "last", "winner", "won", "win", "champion", "mani",
        "time", "consid", "wide", "rank", "first", "lead",
    }
)


@dataclass(frozen=True)
class SimulatedLLMConfig:
    """Behavioural knobs of the simulated model.

    The defaults are the ones used throughout the reproduction; the
    benchmarks vary ``prior``/``prior_depth`` to ablate position bias.
    """

    prior: PositionPrior = PositionPrior.V_SHAPED
    prior_depth: float = 0.8
    kb_prior_weight: float = 0.1
    recency_decay: float = 0.8
    superlative_strength: float = 1.5
    rank_first_strength: float = 1.0
    award_strength: float = 1.0
    num_layers: int = 4
    num_heads: int = 4
    unknown_answer: str = "I do not know"

    def __post_init__(self) -> None:
        if not 0.0 < self.recency_decay <= 1.0:
            raise ConfigError(f"recency_decay must be in (0, 1], got {self.recency_decay}")
        if self.kb_prior_weight < 0:
            raise ConfigError("kb_prior_weight must be >= 0")
        for name in ("superlative_strength", "rank_first_strength", "award_strength"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")


@dataclass
class _VoteBoard:
    """Accumulates candidate scores and remembers display surfaces."""

    scores: Dict[str, float] = field(default_factory=dict)
    surfaces: Dict[str, str] = field(default_factory=dict)

    def add(self, surface: str, amount: float) -> None:
        key = normalize_entity(surface)
        self.scores[key] = self.scores.get(key, 0.0) + amount
        self.surfaces.setdefault(key, surface)

    def maximize(self, surface: str, amount: float) -> None:
        key = normalize_entity(surface)
        if amount > self.scores.get(key, float("-inf")):
            self.scores[key] = amount
        self.surfaces.setdefault(key, surface)

    def winner(self) -> Optional[str]:
        """Surface form of the best candidate (deterministic ties)."""
        if not self.scores:
            return None
        best_key = min(self.scores, key=lambda key: (-self.scores[key], key))
        return self.surfaces[best_key]

    def tally(self) -> Dict[str, float]:
        """Surface-keyed score map for diagnostics."""
        return {self.surfaces[key]: score for key, score in self.scores.items()}


class SimulatedLLM:
    """Deterministic retrieval-augmented question answerer.

    Implements the :class:`repro.llm.base.LanguageModel` protocol: the
    prompt is the sole input; sources are parsed back out of the prompt
    text, read by the claim extractor, and adjudicated by the intent
    decision rules.
    """

    def __init__(
        self,
        knowledge: Optional[KnowledgeBase] = None,
        config: Optional[SimulatedLLMConfig] = None,
        seed: int = 0,
    ) -> None:
        self.knowledge = knowledge or KnowledgeBase()
        self.config = config or SimulatedLLMConfig()
        self.seed = seed
        self._tokenizer = Tokenizer()
        self._extractor = ClaimExtractor(self._tokenizer)
        self._attention = AttentionModel(
            num_layers=self.config.num_layers,
            num_heads=self.config.num_heads,
            prior=self.config.prior,
            seed=seed,
            depth=self.config.prior_depth,
        )
        self._claim_cache: Dict[str, List[Claim]] = {}
        self._weight_cache: Dict[int, List[float]] = {}

    @property
    def name(self) -> str:
        """Model identifier used in reports and cache keys."""
        return f"simulated-llm/{self.config.prior.value}-d{self.config.prior_depth}-s{self.seed}"

    @property
    def cache_params(self) -> Dict[str, object]:
        """Persistent-cache identity beyond :attr:`name`.

        ``name`` encodes prior/depth/seed only; every other behavioural
        knob — the remaining config fields and the knowledge base —
        also changes answers, so they must split the content-addressed
        store (:mod:`repro.llm.store`) or differently-configured runs
        would serve each other's entries.
        """
        params: Dict[str, object] = {
            field_name: str(value)
            for field_name, value in vars(self.config).items()
        }
        params["knowledge"] = self.knowledge.fingerprint()
        return params

    # -- LanguageModel protocol -----------------------------------------

    def generate(self, prompt: str) -> GenerationResult:
        """Answer the prompt (see module docstring for the rules)."""
        parsed = parse_prompt(prompt)
        question = parse_question(parsed.question, self._tokenizer)
        return self._answer_one(prompt, parsed, question)

    def generate_batch(self, prompts: Sequence[str]) -> List[GenerationResult]:
        """Vectorized :meth:`generate` over many prompts.

        Perturbation batches share almost everything: the question is
        usually identical and the source texts are drawn from one small
        context, so parsing the question once per distinct surface form
        and extracting claims once per distinct source text (the claim
        cache) amortizes the per-prompt work to the decision rules.
        """
        questions: Dict[str, ParsedQuestion] = {}
        results: List[GenerationResult] = []
        for prompt in prompts:
            parsed = parse_prompt(prompt)
            question = questions.get(parsed.question)
            if question is None:
                question = parse_question(parsed.question, self._tokenizer)
                questions[parsed.question] = question
            results.append(self._answer_one(prompt, parsed, question))
        return results

    async def agenerate(self, prompt: str) -> GenerationResult:
        """Async :meth:`generate`.

        The simulation is pure CPU-bound Python with no I/O to overlap,
        so this answers inline — it exists so async callers (the
        asyncio execution backend, async caching tiers) can drive the
        simulated model through one uniform await-based contract.
        """
        # repro: disable=async-hygiene -- pure CPU simulation, no I/O to
        # overlap; answering inline is the documented contract above.
        return self.generate(prompt)

    async def agenerate_batch(self, prompts: Sequence[str]) -> List[GenerationResult]:
        """Async :meth:`generate_batch` (same inline-compute rationale)."""
        # repro: disable=async-hygiene -- pure CPU simulation, no I/O to overlap.
        return self.generate_batch(prompts)

    def _answer_one(self, prompt: str, parsed, question: ParsedQuestion) -> GenerationResult:
        """Shared result construction for both generation entry points."""
        trace = self._attention.trace(parsed.question, parsed.source_texts)
        answer, votes = self._decide(question, parsed.source_texts)
        return GenerationResult(
            answer=answer,
            prompt=prompt,
            attention=trace,
            usage=TokenUsage(
                prompt_tokens=len(prompt.split()),
                completion_tokens=len(answer.split()),
            ),
            diagnostics={"intent": question.intent.value, "votes": votes},
        )

    # -- decision core ---------------------------------------------------

    def _decide(
        self,
        question: ParsedQuestion,
        source_texts: Sequence[str],
    ) -> Tuple[str, Dict[str, float]]:
        if not source_texts:
            return self._parametric_answer(question), {}
        weights = self._position_weights(len(source_texts))
        claims_per_source = [self._claims(text) for text in source_texts]
        if question.intent is QuestionIntent.COUNT:
            return self._decide_count(question, claims_per_source)
        if question.intent is QuestionIntent.MOST_RECENT:
            return self._decide_temporal(question, claims_per_source, weights, newest=True)
        if question.intent is QuestionIntent.EARLIEST:
            return self._decide_temporal(question, claims_per_source, weights, newest=False)
        return self._decide_vote(question, claims_per_source, weights)

    def _decide_vote(
        self,
        question: ParsedQuestion,
        claims_per_source: Sequence[List[Claim]],
        weights: Sequence[float],
    ) -> Tuple[str, Dict[str, float]]:
        """SUPERLATIVE and FACTOID: attention-weighted entity vote."""
        board = _VoteBoard()
        allowed = (
            (ClaimKind.SUPERLATIVE, ClaimKind.RANK_FIRST)
            if question.intent is QuestionIntent.SUPERLATIVE
            else tuple(ClaimKind)
        )
        for weight, claims in zip(weights, claims_per_source):
            for claim in claims:
                if claim.kind not in allowed:
                    continue
                if not self._topical(claim, question):
                    continue
                board.add(claim.entity, weight * self._strength(claim.kind))
        fact = self.knowledge.lookup(question)
        if fact is not None:
            board.add(fact.answer, self.config.kb_prior_weight * fact.confidence)
        winner = board.winner()
        if winner is None:
            return self._parametric_answer(question), board.tally()
        return winner, board.tally()

    def _decide_temporal(
        self,
        question: ParsedQuestion,
        claims_per_source: Sequence[List[Claim]],
        weights: Sequence[float],
        newest: bool,
    ) -> Tuple[str, Dict[str, float]]:
        """MOST_RECENT / EARLIEST: time-discounted, attention-weighted
        claims.  The discount anchors at the newest (or oldest) year in
        the context, so a claim from the wrong end of the timeline can
        still win from a high-attention position — the Use Case 2
        failure mode, in either temporal direction."""
        dated: List[Tuple[float, Claim]] = []
        for weight, claims in zip(weights, claims_per_source):
            for claim in claims:
                if claim.kind is not ClaimKind.AWARD or claim.year is None:
                    continue
                if not self._topical(claim, question):
                    continue
                dated.append((weight, claim))
        if not dated:
            return self._parametric_answer(question), {}
        years = [claim.year for _, claim in dated if claim.year is not None]
        anchor = max(years) if newest else min(years)
        board = _VoteBoard()
        for weight, claim in dated:
            assert claim.year is not None
            score = (
                weight
                * self.config.award_strength
                * self.config.recency_decay ** abs(anchor - claim.year)
            )
            board.maximize(claim.entity, score)
        winner = board.winner()
        assert winner is not None  # dated is non-empty
        return winner, board.tally()

    def _decide_count(
        self,
        question: ParsedQuestion,
        claims_per_source: Sequence[List[Claim]],
    ) -> Tuple[str, Dict[str, float]]:
        """COUNT: distinct matching years; position-independent."""
        if question.subject is None:
            return self._parametric_answer(question), {}
        years: set = set()
        for claims in claims_per_source:
            for claim in claims:
                if claim.kind is not ClaimKind.AWARD or claim.year is None:
                    continue
                if claim.entity_key != question.subject:
                    continue
                if not self._topical(claim, question):
                    continue
                if question.year_range is not None:
                    low, high = question.year_range
                    if not low <= claim.year <= high:
                        continue
                years.add(claim.year)
        return str(len(years)), {str(len(years)): float(len(years))}

    # -- helpers ----------------------------------------------------------

    def _parametric_answer(self, question: ParsedQuestion) -> str:
        fact = self.knowledge.lookup(question)
        if fact is not None:
            return fact.answer
        return self.config.unknown_answer

    def _position_weights(self, k: int) -> List[float]:
        cached = self._weight_cache.get(k)
        if cached is None:
            cached = position_weights(self.config.prior, k, depth=self.config.prior_depth)
            self._weight_cache[k] = cached
        return cached

    def _claims(self, text: str) -> List[Claim]:
        cached = self._claim_cache.get(text)
        if cached is None:
            cached = self._extractor.extract(text)
            self._claim_cache[text] = cached
        return cached

    def _strength(self, kind: ClaimKind) -> float:
        if kind is ClaimKind.SUPERLATIVE:
            return self.config.superlative_strength
        if kind is ClaimKind.RANK_FIRST:
            return self.config.rank_first_strength
        return self.config.award_strength

    def _topical(self, claim: Claim, question: ParsedQuestion) -> bool:
        """A claim counts only when it shares *content* terms with the
        question.  Intent trigger words ("best", "winner", ...) appear in
        both superlative questions and superlative claims regardless of
        topic, so they are excluded from the overlap — otherwise a source
        about the best chemist would vote on the best archer.
        """
        return bool((claim.terms & question.terms) - _INTENT_TERMS)
