"""Prompt-level memoization for perturbation searches.

A counterfactual search may evaluate hundreds of perturbations, and the
insight analyses re-evaluate many of the same combinations; caching on
the exact prompt string makes repeated evaluations free while keeping
the wrapped model a pure prompt -> answer function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .base import GenerationResult, LanguageModel


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`CachingLLM` instance."""

    hits: int = 0
    misses: int = 0

    @property
    def calls(self) -> int:
        """Total generate() invocations observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of calls served from cache (0.0 when unused)."""
        if self.calls == 0:
            return 0.0
        return self.hits / self.calls


class CachingLLM:
    """Memoizing wrapper around any :class:`LanguageModel`.

    The wrapped model must be deterministic (the simulated model is);
    caching a sampling model would freeze one sample per prompt.
    """

    def __init__(self, model: LanguageModel, max_entries: Optional[int] = None) -> None:
        self._model = model
        self._max_entries = max_entries
        self._cache: Dict[str, GenerationResult] = {}
        self.stats = CacheStats()

    @property
    def name(self) -> str:
        """Wrapped model's name with a cache marker."""
        return f"cached({self._model.name})"

    @property
    def inner(self) -> LanguageModel:
        """The wrapped model."""
        return self._model

    def generate(self, prompt: str) -> GenerationResult:
        """Serve from cache when possible, else delegate and remember."""
        cached = self._cache.get(prompt)
        if cached is not None:
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        result = self._model.generate(prompt)
        if self._max_entries is not None and len(self._cache) >= self._max_entries:
            # FIFO eviction: drop the oldest inserted entry.
            oldest = next(iter(self._cache))
            del self._cache[oldest]
        self._cache[prompt] = result
        return result

    def clear(self) -> None:
        """Empty the cache (stats are kept)."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
