"""Prompt-level memoization for perturbation searches.

A counterfactual search may evaluate hundreds of perturbations, and the
insight analyses re-evaluate many of the same combinations; caching on
the exact prompt string makes repeated evaluations free while keeping
the wrapped model a pure prompt -> answer function.

The wrapper is batch-aware: :meth:`CachingLLM.generate_batch` partitions
a batch into hits and distinct misses, forwards *only the misses* to the
wrapped model as one batch (via :func:`repro.llm.base.batched_generate`,
so an inner model's native batching is preserved), and reassembles the
results in prompt order.  :class:`CacheStats` counts both the per-prompt
hit/miss totals and the batch-level traffic, so benchmarks can report
how much batching actually reached the model.

Two tiers
---------
The in-memory dict is tier one.  Pass a
:class:`~repro.llm.store.PromptStore` and it becomes the write-through
second tier: every generated result is persisted, and a memory miss
consults the disk before paying a real LLM call (a disk hit is promoted
into memory and counted in ``stats.disk_hits`` as well as ``hits``).
The store is keyed by the *inner* model's name, its optional
``cache_params`` mapping (generation settings and other behavioural
knobs the name does not encode — see
:func:`repro.llm.store.store_key`), and the prompt, so any process
pointed at the same directory shares the cache — repeated reports and
benchmark reruns answer warm with zero real calls, while
differently-configured models never serve each other's entries.

The wrapper is also async-aware: :meth:`CachingLLM.agenerate` /
:meth:`CachingLLM.agenerate_batch` run the identical hit/miss logic but
await the wrapped model through
:func:`repro.llm.base.abatched_generate`, so an async execution backend
never blocks its event loop on the inner model.

Single-flight
-------------
The tiers only deduplicate *completed* work.  With ``single_flight``
(the default) concurrent misses on the same key are also deduplicated:
the first requester leads the real call, every simultaneous requester
follows its flight (see :mod:`repro.llm.coalesce`), and the winner
writes through to memory + disk exactly once.  Followers are counted
as ``hits`` (they paid no real call) and tallied in
``flights.stats.coalesced``.  Disable it (``single_flight=False``) to
restore the historical every-miss-dispatches behavior.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from .base import (
    GenerationResult,
    LanguageModel,
    abatched_generate,
    batched_generate,
    sequential_generate,
)
from .coalesce import Latch, SingleFlight
from .store import PromptStore, store_key


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`CachingLLM` instance.

    ``hits``/``misses`` count individual prompts whichever entry point
    served them; ``disk_hits`` the subset of hits answered by the
    persistent store rather than memory; ``batches`` and
    ``batched_prompts`` additionally track
    :meth:`CachingLLM.generate_batch` traffic, and ``batched_misses``
    the prompts within those batches that actually reached the wrapped
    model (after deduplication).
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    batches: int = 0
    batched_prompts: int = 0
    batched_misses: int = 0

    @property
    def calls(self) -> int:
        """Total generate() invocations observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of calls served from cache (0.0 when unused)."""
        if self.calls == 0:
            return 0.0
        return self.hits / self.calls


class CachingLLM:
    """Memoizing wrapper around any :class:`LanguageModel`.

    The wrapped model must be deterministic (the simulated model is);
    caching a sampling model would freeze one sample per prompt.

    Parameters
    ----------
    model:
        The wrapped model.
    max_entries:
        In-memory entry cap (FIFO eviction); ``None`` = unbounded.
    batch_workers:
        Forwarded to the dispatch of miss batches, so a non-batchable
        I/O-bound backend still gets its thread pool behind the cache.
    max_inflight:
        Concurrency bound forwarded to miss dispatch whenever it lands
        on an async rung (from either the sync or the async entry
        points), so an execution backend's capacity survives the cache
        boundary — a serial backend stays serial and an asyncio bound
        stays bounded even when the *inner* model is async-capable;
        ``None`` = unbounded.
    timeout:
        Per-call deadline (seconds) forwarded to miss dispatch, so an
        execution backend's timeout also survives the cache boundary
        (hits are free and never deadlined); ``None`` = no deadline.
    store:
        Optional persistent second tier (see the module docstring).
    single_flight:
        Coalesce concurrent misses on the same key onto one real call
        (default on; see the module docstring).  When enabled,
        ``flights`` holds the :class:`~repro.llm.coalesce.SingleFlight`
        registry and its stats.
    """

    def __init__(
        self,
        model: LanguageModel,
        max_entries: Optional[int] = None,
        batch_workers: Optional[int] = None,
        max_inflight: Optional[int] = None,
        timeout: Optional[float] = None,
        store: Optional[PromptStore] = None,
        single_flight: bool = True,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ConfigError(
                f"max_entries must be >= 1 (or None for unbounded), got {max_entries}"
            )
        if batch_workers is not None and batch_workers < 1:
            raise ConfigError(
                f"batch_workers must be >= 1 (or None), got {batch_workers}"
            )
        if max_inflight is not None and max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be >= 1 (or None), got {max_inflight}"
            )
        if timeout is not None and timeout <= 0:
            raise ConfigError(
                f"timeout must be > 0 seconds (or None), got {timeout}"
            )
        self._model = model
        self._max_entries = max_entries
        self.batch_workers = batch_workers
        self.max_inflight = max_inflight
        self.timeout = timeout
        self.store = store
        self.flights: Optional[SingleFlight] = SingleFlight() if single_flight else None
        self._cache: Dict[str, GenerationResult] = {}
        self.stats = CacheStats()
        # Counter updates and the eviction-then-insert pair happen
        # under this lock: the serving layer shares one wrapper across
        # request threads, where bare `+=` loses increments and two
        # racing evictions can pick the same victim.  Model calls
        # themselves never run under it.
        self._stats_lock = threading.Lock()

    @property
    def name(self) -> str:
        """Wrapped model's name with a cache marker."""
        return f"cached({self._model.name})"

    @property
    def inner(self) -> LanguageModel:
        """The wrapped model."""
        return self._model

    def generate(self, prompt: str) -> GenerationResult:
        """Serve from memory, disk, or a flight in progress; else delegate."""
        params = self._store_params()
        cached = self._lookup(prompt, params)
        if cached is not None:
            with self._stats_lock:
                self.stats.hits += 1
            return cached
        if self.flights is None:
            with self._stats_lock:
                self.stats.misses += 1
            result = self._dispatch_one(prompt)
            self._store(prompt, result, params=params)
            return result
        key = store_key(self._model.name, prompt, params)
        leader, latch = self.flights.join(key)
        if not leader:
            result = latch.wait()
            with self._stats_lock:
                self.stats.hits += 1
            return result
        try:
            # Between our miss above and winning the flight, a previous
            # leader may have resolved and written through; re-checking
            # the memory tier here is what makes the dedup exact (one
            # real call per key) rather than best-effort.  Memory
            # suffices: every flight writes memory before it resolves,
            # so the disk cannot hold anything newer than our first
            # lookup saw.
            cached = self._cache.get(prompt)
            if cached is not None:
                with self._stats_lock:
                    self.stats.hits += 1
                self.flights.resolve(key, latch, cached)
                return cached
            with self._stats_lock:
                self.stats.misses += 1
            result = self._dispatch_one(prompt)
            self._store(prompt, result, params=params)
        except BaseException as error:
            self.flights.reject(key, latch, error)
            raise
        self.flights.resolve(key, latch, result)
        return result

    async def agenerate(self, prompt: str) -> GenerationResult:
        """Async :meth:`generate` (identical tiers and accounting)."""
        params = self._store_params()
        cached = self._lookup(prompt, params)
        if cached is not None:
            with self._stats_lock:
                self.stats.hits += 1
            return cached
        if self.flights is None:
            with self._stats_lock:
                self.stats.misses += 1
            result = await self._adispatch_one(prompt)
            self._store(prompt, result, params=params)
            return result
        key = store_key(self._model.name, prompt, params)
        leader, latch = self.flights.join(key)
        if not leader:
            result = await latch.wait_async()
            with self._stats_lock:
                self.stats.hits += 1
            return result
        try:
            cached = self._cache.get(prompt)
            if cached is not None:
                with self._stats_lock:
                    self.stats.hits += 1
                self.flights.resolve(key, latch, cached)
                return cached
            with self._stats_lock:
                self.stats.misses += 1
            result = await self._adispatch_one(prompt)
            self._store(prompt, result, params=params)
        except BaseException as error:
            self.flights.reject(key, latch, error)
            raise
        self.flights.resolve(key, latch, result)
        return result

    def generate_batch(self, prompts: Sequence[str]) -> List[GenerationResult]:
        """Serve hits from the tiers, delegate distinct misses as one batch.

        Duplicate prompts within the batch reach the model once; the
        repeats are served from the freshly-filled cache and counted as
        hits, exactly as a second sequential call would be.  Under
        single-flight, misses another request is already computing are
        not dispatched either — this batch awaits those flights after
        dispatching its own leads (leads always dispatch before any
        follower wait, so two batches following each other's flights
        can never deadlock).
        """
        params = self._store_params()
        resolved, misses, miss_order = self._partition(prompts, params)
        leads, followers, miss_order = self._coalesce_misses(
            resolved, misses, miss_order, params
        )
        if miss_order:
            try:
                generated = batched_generate(
                    self._model,
                    miss_order,
                    max_workers=self.batch_workers,
                    max_inflight=self.max_inflight,
                    timeout=self.timeout,
                )
            except BaseException as error:
                self._reject_leads(leads, error)
                raise
            self._absorb(resolved, miss_order, generated, params)
            self._resolve_leads(leads, resolved)
        for prompt, latch in followers:
            resolved[prompt] = latch.wait()
        return self._assemble(prompts, resolved, misses)

    async def agenerate_batch(self, prompts: Sequence[str]) -> List[GenerationResult]:
        """Async :meth:`generate_batch`: same partition, awaited misses."""
        params = self._store_params()
        resolved, misses, miss_order = self._partition(prompts, params)
        leads, followers, miss_order = self._coalesce_misses(
            resolved, misses, miss_order, params
        )
        if miss_order:
            try:
                generated = await abatched_generate(
                    self._model,
                    miss_order,
                    max_workers=self.batch_workers,
                    max_inflight=self.max_inflight,
                    timeout=self.timeout,
                )
            except BaseException as error:
                self._reject_leads(leads, error)
                raise
            self._absorb(resolved, miss_order, generated, params)
            self._resolve_leads(leads, resolved)
        for prompt, latch in followers:
            resolved[prompt] = await latch.wait_async()
        return self._assemble(prompts, resolved, misses)

    # -- single-prompt miss dispatch ---------------------------------------

    def _dispatch_one(self, prompt: str) -> GenerationResult:
        if self.timeout is not None:
            return sequential_generate(self._model, [prompt], timeout=self.timeout)[0]
        return self._model.generate(prompt)

    async def _adispatch_one(self, prompt: str) -> GenerationResult:
        results = await abatched_generate(
            self._model,
            [prompt],
            max_workers=self.batch_workers,
            max_inflight=self.max_inflight,
            timeout=self.timeout,
        )
        return results[0]

    # -- the batch pipeline, shared by both entry points -------------------

    def _partition(
        self, prompts: Sequence[str], params: Optional[Dict[str, object]]
    ) -> Tuple[Dict[str, GenerationResult], set, List[str]]:
        """Split a batch into resolved hits and ordered distinct misses."""
        with self._stats_lock:
            self.stats.batches += 1
            self.stats.batched_prompts += len(prompts)
        # Resolve eagerly: under a bounded cache the miss inserts below
        # may evict entries this very batch still needs.
        resolved: Dict[str, GenerationResult] = {}
        misses: set = set()
        miss_order: List[str] = []
        for prompt in prompts:
            if prompt in resolved or prompt in misses:
                continue
            cached = self._lookup(prompt, params)
            if cached is not None:
                resolved[prompt] = cached
            else:
                misses.add(prompt)
                miss_order.append(prompt)
        return resolved, misses, miss_order

    def _coalesce_misses(
        self,
        resolved: Dict[str, GenerationResult],
        misses: set,
        miss_order: List[str],
        params: Optional[Dict[str, object]],
    ) -> Tuple[
        List[Tuple[str, str, Latch]], List[Tuple[str, Latch]], List[str]
    ]:
        """Split distinct misses into flights this batch leads vs follows.

        Returns ``(leads, followers, still_missing)``: ``leads`` are the
        flights this batch owns and must settle after dispatching
        ``still_missing`` as one native batch; ``followers`` are prompts
        another request is already computing (removed from ``misses`` so
        they are charged as hits — no real call was paid here).  A miss
        whose flight resolved between partition and join is adopted from
        the freshly-filled cache and charged as a hit too.
        """
        if self.flights is None or not miss_order:
            return [], [], miss_order
        leads: List[Tuple[str, str, Latch]] = []
        followers: List[Tuple[str, Latch]] = []
        still_missing: List[str] = []
        for prompt in miss_order:
            key = store_key(self._model.name, prompt, params)
            leader, latch = self.flights.join(key)
            if not leader:
                followers.append((prompt, latch))
                misses.discard(prompt)
                continue
            cached = self._cache.get(prompt)
            if cached is not None:
                self.flights.resolve(key, latch, cached)
                resolved[prompt] = cached
                misses.discard(prompt)
                continue
            leads.append((prompt, key, latch))
            still_missing.append(prompt)
        return leads, followers, still_missing

    def _resolve_leads(
        self,
        leads: List[Tuple[str, str, Latch]],
        resolved: Dict[str, GenerationResult],
    ) -> None:
        for prompt, key, latch in leads:
            self.flights.resolve(key, latch, resolved[prompt])

    def _reject_leads(
        self, leads: List[Tuple[str, str, Latch]], error: BaseException
    ) -> None:
        for _prompt, key, latch in leads:
            self.flights.reject(key, latch, error)

    def _absorb(
        self,
        resolved: Dict[str, GenerationResult],
        miss_order: List[str],
        generated: Sequence[GenerationResult],
        params: Optional[Dict[str, object]],
    ) -> None:
        with self._stats_lock:
            self.stats.batched_misses += len(miss_order)
        for prompt, result in zip(miss_order, generated):
            self._store(prompt, result, params=params)
            resolved[prompt] = result

    def _assemble(
        self,
        prompts: Sequence[str],
        resolved: Dict[str, GenerationResult],
        misses: set,
    ) -> List[GenerationResult]:
        charged: set = set()
        results: List[GenerationResult] = []
        new_misses = 0
        new_hits = 0
        for prompt in prompts:
            if prompt in misses and prompt not in charged:
                charged.add(prompt)
                new_misses += 1
            else:
                new_hits += 1
            results.append(resolved[prompt])
        with self._stats_lock:
            self.stats.misses += new_misses
            self.stats.hits += new_hits
        return results

    # -- tiers -------------------------------------------------------------

    def _store_params(self) -> Optional[Dict[str, object]]:
        """The inner model's persistent-cache identity, if it has one.

        Re-read once per entry-point call (not per prompt): a model's
        ``cache_params`` may legitimately change *between* calls (e.g.
        :meth:`repro.llm.scripted.ScriptedLLM.record` grows the
        script) and a stale identity would serve stale answers, but
        within one batch it is frozen.
        """
        if self.store is None:
            return None
        raw = getattr(self._model, "cache_params", None)
        return dict(raw) if raw else None

    def _lookup(
        self, prompt: str, params: Optional[Dict[str, object]]
    ) -> Optional[GenerationResult]:
        """Memory first, then the persistent tier (promoting its hits)."""
        cached = self._cache.get(prompt)
        if cached is not None:
            return cached
        if self.store is None:
            return None
        persisted = self.store.get(self._model.name, prompt, params)
        if persisted is None:
            return None
        return self._install(prompt, persisted, promotion=True)

    def _store(
        self,
        prompt: str,
        result: GenerationResult,
        persist: bool = True,
        params: Optional[Dict[str, object]] = None,
    ) -> None:
        self._install(prompt, result, promotion=False)
        if persist and self.store is not None:
            self.store.put(self._model.name, prompt, result, params)

    def _install(
        self, prompt: str, result: GenerationResult, promotion: bool
    ) -> GenerationResult:
        """Insert into the memory tier under the lock; return the entry.

        ``promotion`` marks a disk hit being lifted into memory: two
        concurrent disk hits on one key both decode, but only the first
        installs and is counted in ``disk_hits`` — the loser adopts the
        winner's entry and is charged as a plain memory hit, so neither
        the counter nor the FIFO order records a promotion twice.
        """
        with self._stats_lock:
            if promotion:
                current = self._cache.get(prompt)
                if current is not None:
                    return current
                self.stats.disk_hits += 1
            if (
                self._max_entries is not None
                and len(self._cache) >= self._max_entries
                and self._cache
            ):
                # FIFO eviction: drop the oldest inserted entry.  The
                # emptiness guard keeps a cleared (or externally
                # drained) cache from raising StopIteration on the next
                # insert; the lock keeps two racing inserts from
                # deleting the same victim.
                oldest = next(iter(self._cache))
                del self._cache[oldest]
            self._cache[prompt] = result
        return result

    def clear(self) -> None:
        """Empty the in-memory tier (stats and the disk tier are kept).

        Runs under the stats lock: a bare ``dict.clear`` racing a
        concurrent insert's eviction could delete the same victim twice
        and raise ``KeyError`` from inside :meth:`_install`.
        """
        with self._stats_lock:
            self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
