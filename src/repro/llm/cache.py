"""Prompt-level memoization for perturbation searches.

A counterfactual search may evaluate hundreds of perturbations, and the
insight analyses re-evaluate many of the same combinations; caching on
the exact prompt string makes repeated evaluations free while keeping
the wrapped model a pure prompt -> answer function.

The wrapper is batch-aware: :meth:`CachingLLM.generate_batch` partitions
a batch into hits and distinct misses, forwards *only the misses* to the
wrapped model as one batch (via :func:`repro.llm.base.batched_generate`,
so an inner model's native batching is preserved), and reassembles the
results in prompt order.  :class:`CacheStats` counts both the per-prompt
hit/miss totals and the batch-level traffic, so benchmarks can report
how much batching actually reached the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigError
from .base import GenerationResult, LanguageModel, batched_generate


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`CachingLLM` instance.

    ``hits``/``misses`` count individual prompts whichever entry point
    served them; ``batches`` and ``batched_prompts`` additionally track
    :meth:`CachingLLM.generate_batch` traffic, and ``batched_misses``
    the prompts within those batches that actually reached the wrapped
    model (after deduplication).
    """

    hits: int = 0
    misses: int = 0
    batches: int = 0
    batched_prompts: int = 0
    batched_misses: int = 0

    @property
    def calls(self) -> int:
        """Total generate() invocations observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of calls served from cache (0.0 when unused)."""
        if self.calls == 0:
            return 0.0
        return self.hits / self.calls


class CachingLLM:
    """Memoizing wrapper around any :class:`LanguageModel`.

    The wrapped model must be deterministic (the simulated model is);
    caching a sampling model would freeze one sample per prompt.
    """

    def __init__(
        self,
        model: LanguageModel,
        max_entries: Optional[int] = None,
        batch_workers: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ConfigError(
                f"max_entries must be >= 1 (or None for unbounded), got {max_entries}"
            )
        if batch_workers is not None and batch_workers < 1:
            raise ConfigError(
                f"batch_workers must be >= 1 (or None), got {batch_workers}"
            )
        self._model = model
        self._max_entries = max_entries
        # Forwarded to batched_generate for the miss batch, so a
        # non-batchable I/O-bound backend still gets its thread pool
        # even behind the cache.
        self.batch_workers = batch_workers
        self._cache: Dict[str, GenerationResult] = {}
        self.stats = CacheStats()

    @property
    def name(self) -> str:
        """Wrapped model's name with a cache marker."""
        return f"cached({self._model.name})"

    @property
    def inner(self) -> LanguageModel:
        """The wrapped model."""
        return self._model

    def generate(self, prompt: str) -> GenerationResult:
        """Serve from cache when possible, else delegate and remember."""
        cached = self._cache.get(prompt)
        if cached is not None:
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        result = self._model.generate(prompt)
        self._store(prompt, result)
        return result

    def generate_batch(self, prompts: Sequence[str]) -> List[GenerationResult]:
        """Serve hits from cache, delegate distinct misses as one batch.

        Duplicate prompts within the batch reach the model once; the
        repeats are served from the freshly-filled cache and counted as
        hits, exactly as a second sequential call would be.
        """
        self.stats.batches += 1
        self.stats.batched_prompts += len(prompts)
        # Resolve eagerly: under a bounded cache the miss inserts below
        # may evict entries this very batch still needs.
        resolved: Dict[str, GenerationResult] = {}
        misses: set = set()
        miss_order: List[str] = []
        for prompt in prompts:
            if prompt in resolved or prompt in misses:
                continue
            cached = self._cache.get(prompt)
            if cached is not None:
                resolved[prompt] = cached
            else:
                misses.add(prompt)
                miss_order.append(prompt)
        if miss_order:
            generated = batched_generate(
                self._model, miss_order, max_workers=self.batch_workers
            )
            self.stats.batched_misses += len(miss_order)
            for prompt, result in zip(miss_order, generated):
                self._store(prompt, result)
                resolved[prompt] = result
        charged: set = set()
        results: List[GenerationResult] = []
        for prompt in prompts:
            if prompt in misses and prompt not in charged:
                charged.add(prompt)
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            results.append(resolved[prompt])
        return results

    def _store(self, prompt: str, result: GenerationResult) -> None:
        if (
            self._max_entries is not None
            and len(self._cache) >= self._max_entries
            and self._cache
        ):
            # FIFO eviction: drop the oldest inserted entry.  The
            # emptiness guard keeps a cleared (or externally drained)
            # cache from raising StopIteration on the next insert.
            oldest = next(iter(self._cache))
            del self._cache[oldest]
        self._cache[prompt] = result

    def clear(self) -> None:
        """Empty the cache (stats are kept)."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
