"""Parametric knowledge — what the simulated LLM "learned in training".

RAG explanations only make sense against a model that also has its own
trained knowledge: the bottom-up counterfactual flips "the empty-context
answer", and the full-context answer mixes context evidence with a
parametric prior (the LLM "using its own pre-trained knowledge and
retrieved knowledge sources").

A :class:`KnowledgeBase` stores :class:`KBFact` records keyed by intent
plus topic terms.  Lookup is a soft match: the fact whose topic terms
are best covered by the question's terms wins, subject to a minimum
coverage threshold.  Facts can be deliberately *stale or wrong* (e.g. a
training cutoff before the newest championship) — that mismatch between
parametric and retrieved knowledge is exactly what the use cases probe.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional

from ..errors import ConfigError
from ..textproc import Tokenizer
from .intents import ParsedQuestion, QuestionIntent


@dataclass(frozen=True)
class KBFact:
    """One parametric fact.

    Attributes
    ----------
    intent:
        The question intent this fact answers.
    topic_terms:
        Analyzed terms describing the topic; matched against questions.
    answer:
        The answer string the model would produce from memory.
    confidence:
        Relative strength of the parametric belief in [0, 1]; scales the
        prior weight it contributes when mixed with context evidence.
    """

    intent: QuestionIntent
    topic_terms: FrozenSet[str]
    answer: str
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not self.topic_terms:
            raise ConfigError("a KBFact needs at least one topic term")
        if not 0.0 <= self.confidence <= 1.0:
            raise ConfigError(f"confidence must be in [0, 1], got {self.confidence}")

    def coverage(self, question_terms: FrozenSet[str]) -> float:
        """Fraction of this fact's topic terms present in the question."""
        return len(self.topic_terms & question_terms) / len(self.topic_terms)


class KnowledgeBase:
    """A collection of parametric facts with soft lookup."""

    def __init__(
        self,
        facts: Optional[Iterable[KBFact]] = None,
        min_coverage: float = 0.5,
    ) -> None:
        self._facts: List[KBFact] = list(facts or ())
        self._fingerprint: Optional[str] = None
        self.min_coverage = min_coverage  # via the validating setter

    @property
    def min_coverage(self) -> float:
        """Coverage threshold a fact must reach to answer a question."""
        return self._min_coverage

    @min_coverage.setter
    def min_coverage(self, value: float) -> None:
        if not 0.0 < value <= 1.0:
            raise ConfigError(f"min_coverage must be in (0, 1], got {value}")
        self._min_coverage = value
        # The threshold is part of the persistent-cache identity.
        self._fingerprint = None

    def add(self, fact: KBFact) -> None:
        """Register a fact."""
        self._facts.append(fact)
        self._fingerprint = None

    def fingerprint(self) -> str:
        """Stable content digest of every fact plus the threshold.

        Two knowledge bases answer identically iff their facts and
        ``min_coverage`` match, so this is the knowledge component of a
        model's persistent-cache identity
        (:attr:`repro.llm.simulated.SimulatedLLM.cache_params`).
        Insertion order is irrelevant.  Memoized — the disk-cache hot
        path reads it per batch — and invalidated by :meth:`add`.
        """
        if self._fingerprint is not None:
            return self._fingerprint
        facts = sorted(
            (fact.intent.value, sorted(fact.topic_terms), fact.answer, fact.confidence)
            for fact in self._facts
        )
        payload = json.dumps(
            {"min_coverage": self.min_coverage, "facts": facts},
            sort_keys=True,
            ensure_ascii=False,
        )
        self._fingerprint = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
        return self._fingerprint

    def add_fact(
        self,
        intent: QuestionIntent,
        topic: str,
        answer: str,
        confidence: float = 1.0,
        tokenizer: Optional[Tokenizer] = None,
    ) -> KBFact:
        """Convenience: build topic terms from a natural-language topic."""
        tokenizer = tokenizer or Tokenizer()
        fact = KBFact(
            intent=intent,
            topic_terms=frozenset(tokenizer.tokenize(topic)),
            answer=answer,
            confidence=confidence,
        )
        self.add(fact)
        return fact

    def lookup(self, question: ParsedQuestion) -> Optional[KBFact]:
        """Best-matching fact for the question, or None.

        Candidates must share the question's intent and reach the
        coverage threshold; the best coverage wins, ties broken by
        higher confidence then insertion order (deterministic).
        """
        best: Optional[KBFact] = None
        best_key = (0.0, 0.0)
        for fact in self._facts:
            if fact.intent is not question.intent:
                continue
            coverage = fact.coverage(question.terms)
            if coverage < self.min_coverage:
                continue
            key = (coverage, fact.confidence)
            if best is None or key > best_key:
                best = fact
                best_key = key
        return best

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self):
        return iter(self._facts)
