"""HTTP transport for remote LLM adapters: the part that can fail.

:class:`~repro.llm.remote.RemoteLLM` turns prompts into provider
payloads; everything below that — sockets, timeouts, throttling,
retries — lives here, behind :class:`HttpClient`, so the adapter stays
a pure payload builder/parser and every transport policy is testable
against an in-process fake server without a network.

The pieces compose bottom-up:

:class:`HttpTransport` / :class:`UrllibTransport`
    One HTTP exchange.  The stdlib implementation drives
    ``urllib.request`` with a **per-request timeout** (connect and
    socket reads); the async entry point off-loads the blocking call to
    a worker thread so an event loop multiplexes many requests without
    a third-party client.  Non-2xx responses are returned (not raised)
    so the retry layer can read status and ``Retry-After``; only
    socket-level failures raise (:class:`~repro.errors.TransportError`
    and its :class:`~repro.errors.TransportTimeoutError` subclass).

:class:`TokenBucket`
    A fair rate limiter shared across concurrent calls — threads and
    event-loop tasks alike.  Arrivals *reserve* their slot under one
    lock (the bucket may go negative, which is exactly what makes the
    queue FIFO: later arrivals compute strictly later slots), then
    sleep outside it, so admissions never exceed
    ``burst + rate * window`` in any window.

:class:`RetryPolicy`
    Exponential backoff with bounded multiplicative growth, a hard
    per-delay cap, uniform jitter, a cumulative **sleep budget**, and
    ``Retry-After`` compliance (the server's number wins over the
    schedule, but never the budget).  429 and transient 5xx statuses
    retry; other 4xx fail immediately.

:class:`HttpClient`
    The retry loop over all of the above: throttle, exchange, classify,
    back off, repeat — returning parsed JSON.  Invalid JSON and
    truncated bodies count as transient transport faults (a glitch, not
    a contract violation) and retry like a 503; a schema-valid body
    with unexpected *content* is the adapter's problem, not ours.
"""

from __future__ import annotations

import asyncio
import email.utils
import http.client
import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Callable, Dict, FrozenSet, Mapping, Optional, Tuple

from ..errors import (
    ConfigError,
    HttpStatusError,
    MalformedResponseError,
    TransportError,
    TransportTimeoutError,
)

#: Default per-request timeout (seconds) when the caller picks none.
DEFAULT_TIMEOUT = 30.0


@dataclass
class HttpResponse:
    """One HTTP exchange's outcome (any status; headers lower-cased)."""

    status: int
    headers: Dict[str, str]
    body: bytes

    @property
    def ok(self) -> bool:
        """True for 2xx statuses."""
        return 200 <= self.status < 300

    def json(self) -> Dict[str, object]:
        """The body parsed as a JSON object.

        Raises :class:`~repro.errors.MalformedResponseError` on invalid
        or truncated JSON, and on valid JSON that is not an object —
        the only body shape a chat-completions endpoint may answer.
        """
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise MalformedResponseError(
                f"unparseable response body ({error}): {self.body[:120]!r}"
            ) from error
        if not isinstance(payload, dict):
            raise MalformedResponseError(
                f"expected a JSON object, got {type(payload).__name__}"
            )
        return payload

    def retry_after(self) -> Optional[float]:
        """The ``Retry-After`` header in seconds, if present and sane.

        RFC 7231 allows two forms: delta-seconds and an HTTP-date.
        Both are honored — a date resolves to the seconds remaining
        until it (clamped at 0 for dates already in the past); garbage
        reads as ``None`` so the backoff schedule applies.
        """
        raw = self.headers.get("retry-after")
        if raw is None:
            return None
        raw = raw.strip()
        try:
            value = float(raw)
        except ValueError:
            return _retry_after_date_seconds(raw)
        return value if value >= 0 else None


def _retry_after_date_seconds(raw: str) -> Optional[float]:
    """Seconds until an RFC 7231 HTTP-date ``Retry-After`` value.

    A server that answers ``Retry-After: Wed, 21 Oct 2026 07:28:00
    GMT`` means "come back at that instant"; the schedule wants a
    delay.  Dates in the past clamp to 0 (retry immediately) and
    unparseable values read as ``None`` — never negative, which the
    retry loop would feed to ``time.sleep``.
    """
    try:
        when = email.utils.parsedate_to_datetime(raw)
    except (TypeError, ValueError):
        return None
    if when is None:  # pre-3.10 pythons return None on garbage
        return None
    if when.tzinfo is None:
        # parsedate_to_datetime yields a naive datetime for "-0000";
        # RFC 7231 dates are GMT, so pin UTC rather than guessing local.
        when = when.replace(tzinfo=timezone.utc)
    return max(0.0, (when - datetime.now(timezone.utc)).total_seconds())


class HttpTransport:
    """One HTTP exchange; subclasses supply the actual I/O.

    ``request`` returns an :class:`HttpResponse` for *every* status the
    server produced (the retry layer decides what a 429 means) and
    raises :class:`~repro.errors.TransportError` /
    :class:`~repro.errors.TransportTimeoutError` only when no response
    exists at all.
    """

    def request(
        self,
        method: str,
        url: str,
        headers: Mapping[str, str],
        body: Optional[bytes],
        timeout: float,
    ) -> HttpResponse:
        raise NotImplementedError

    async def arequest(
        self,
        method: str,
        url: str,
        headers: Mapping[str, str],
        body: Optional[bytes],
        timeout: float,
    ) -> HttpResponse:
        """Async exchange; default off-loads :meth:`request` to a thread.

        The blocking call enforces its own socket timeout, so the
        worker thread is released within ``timeout`` whatever the
        server does — the event loop never waits on a hung socket.
        """
        return await asyncio.to_thread(
            self.request, method, url, headers, body, timeout
        )


class UrllibTransport(HttpTransport):
    """Stdlib transport: ``urllib.request`` with per-request timeouts."""

    def request(
        self,
        method: str,
        url: str,
        headers: Mapping[str, str],
        body: Optional[bytes],
        timeout: float,
    ) -> HttpResponse:
        req = urllib.request.Request(
            url, data=body, headers=dict(headers), method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as response:
                return HttpResponse(
                    status=response.status,
                    headers={k.lower(): v for k, v in response.headers.items()},
                    body=response.read(),
                )
        except urllib.error.HTTPError as error:
            # A non-2xx *is* a response; hand it to the retry layer.
            try:
                data = error.read()
            except (OSError, http.client.HTTPException):
                data = b""
            return HttpResponse(
                status=error.code,
                headers={k.lower(): v for k, v in (error.headers or {}).items()},
                body=data,
            )
        except TimeoutError as error:  # socket.timeout is an alias
            raise TransportTimeoutError(
                f"request to {url} exceeded {timeout}s"
            ) from error
        except urllib.error.URLError as error:
            if isinstance(error.reason, TimeoutError):
                raise TransportTimeoutError(
                    f"request to {url} exceeded {timeout}s"
                ) from error
            raise TransportError(f"request to {url} failed: {error.reason}") from error
        except http.client.HTTPException as error:
            # IncompleteRead (truncated body), RemoteDisconnected, ...
            raise TransportError(
                f"request to {url} failed mid-exchange: {error!r}"
            ) from error
        except OSError as error:
            raise TransportError(f"request to {url} failed: {error}") from error


class TokenBucket:
    """Fair token-bucket rate limiter shared across threads and tasks.

    ``rate`` tokens refill per second up to ``burst``.  Callers
    *reserve* a slot under the lock — the token count may go negative,
    each arrival paying for everything reserved before it — then sleep
    out their wait outside the lock, which makes admission FIFO in
    arrival order (no starvation under concurrency) and bounds
    admissions in any window ``W`` by ``burst + rate * W``.

    ``clock`` and ``sleep`` are injectable for deterministic tests;
    :meth:`aacquire` always awaits ``asyncio.sleep`` so an event loop
    keeps multiplexing while a task waits its turn.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if rate <= 0:
            raise ConfigError(f"rate must be > 0 requests/sec, got {rate}")
        if burst is not None and burst < 1:
            raise ConfigError(f"burst must be >= 1 (or None), got {burst}")
        self.rate = float(rate)
        self.burst = burst if burst is not None else max(1, int(rate))
        self._clock = clock
        self._sleep = sleep
        self._tokens = float(self.burst)
        self._last = clock()
        self._lock = threading.Lock()

    def reserve(self) -> float:
        """Claim the next slot; returns how long to wait for it."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                float(self.burst), self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            self._tokens -= 1.0
            if self._tokens >= 0.0:
                return 0.0
            return -self._tokens / self.rate

    def cancel(self) -> None:
        """Refund one reserved slot that will never be used.

        The inverse of :meth:`reserve`, for callers that claimed a slot
        and then did not proceed — a rejected admission, a cancelled
        task, an encode failure, a disconnected client.  Without the
        refund every abandoned reservation permanently shrinks the
        bucket: N cancelled waiters would starve the N+1th arrival
        forever.  Refunds clamp at ``burst`` (a slot returned after its
        wait elapsed has already been replaced by refill).
        """
        with self._lock:
            self._tokens = min(float(self.burst), self._tokens + 1.0)

    def try_acquire(self, max_wait: float = 0.0) -> "Tuple[bool, float]":
        """Admit without queueing: ``(admitted, wait)``.

        Reserves a slot; if its wait exceeds ``max_wait`` the
        reservation is refunded immediately and the caller gets
        ``(False, wait)`` — ``wait`` being the ``Retry-After`` a server
        should advertise.  Admission-control callers (HTTP 429) use
        this instead of :meth:`acquire` so rejected requests never
        consume capacity.
        """
        wait = self.reserve()
        if wait > max_wait:
            self.cancel()
            return False, wait
        if wait > 0.0:
            try:
                self._sleep(wait)
            except BaseException:
                self.cancel()
                raise
        return True, wait

    def acquire(self) -> float:
        """Block until admitted; returns the seconds waited.

        Interruption-safe: if the sleep raises (KeyboardInterrupt, an
        injected deadline), the reservation is refunded so the
        abandoned slot cannot starve later arrivals.
        """
        wait = self.reserve()
        if wait > 0.0:
            try:
                self._sleep(wait)
            except BaseException:
                self.cancel()
                raise
        return wait

    async def aacquire(self) -> float:
        """Async :meth:`acquire` (waits on the event loop, not a thread).

        Cancellation-safe: a task cancelled while sleeping out its wait
        refunds the reservation, so abandoned waiters do not bleed the
        bucket dry.
        """
        wait = self.reserve()
        if wait > 0.0:
            try:
                await asyncio.sleep(wait)
            except asyncio.CancelledError:
                self.cancel()
                raise
        return wait


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter, caps, and a sleep budget.

    ``max_attempts`` counts every try including the first (1 = never
    retry).  The delay before retry *n* (1-based) is::

        min(base_delay * multiplier ** (n - 1), max_delay) * (1 + U[0, jitter))

    except when the server sent ``Retry-After`` — its value replaces
    the schedule (compliance beats impatience).  Either way the
    cumulative sleep never exceeds ``budget``: a delay that would cross
    it fails fast with the last fault instead of sleeping.
    """

    max_attempts: int = 4
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    budget: float = 30.0
    retry_statuses: FrozenSet[int] = frozenset({429, 500, 502, 503, 504})

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.budget < 0:
            raise ConfigError("retry delays and budget must be >= 0")
        if self.multiplier < 1:
            raise ConfigError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.jitter < 0:
            raise ConfigError(f"jitter must be >= 0, got {self.jitter}")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Jittered delay before retry ``attempt`` (1-based)."""
        base = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        return base * (1.0 + self.jitter * rng.random())

    def retryable(self, status: int) -> bool:
        """Whether this HTTP status is worth another attempt."""
        return status in self.retry_statuses


@dataclass
class TransportStats:
    """Session counters for one :class:`HttpClient`.

    ``requests`` counts attempts put on the wire (retries included);
    ``retries`` the re-attempts among them; ``throttle_waits`` the
    acquisitions that actually waited on the rate limiter;
    ``backoff_seconds`` cumulative retry sleep (throttle waits are the
    limiter's business and excluded).
    """

    requests: int = 0
    retries: int = 0
    throttle_waits: int = 0
    backoff_seconds: float = 0.0


class HttpClient:
    """Throttled, retrying JSON-over-HTTP client (see module docstring).

    One instance is meant to be shared by every concurrent call of one
    adapter: the limiter and stats are lock-protected, and the async
    entry point awaits its sleeps so event-loop concurrency keeps
    paying off while individual calls back off.
    """

    def __init__(
        self,
        transport: Optional[HttpTransport] = None,
        rate_limiter: Optional[TokenBucket] = None,
        retry: Optional[RetryPolicy] = None,
        timeout: float = DEFAULT_TIMEOUT,
        seed: int = 0,
    ) -> None:
        if timeout <= 0:
            raise ConfigError(f"timeout must be > 0 seconds, got {timeout}")
        self.transport = transport if transport is not None else UrllibTransport()
        self.rate_limiter = rate_limiter
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout = timeout
        self.stats = TransportStats()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    # -- retry decision (shared by the sync and async loops) ---------------

    def _classify(
        self, response: HttpResponse, url: str
    ) -> "tuple[Optional[Dict[str, object]], Optional[TransportError], Optional[float]]":
        """``(payload, fault, retry_after)`` for one exchange's response."""
        if response.ok:
            try:
                return response.json(), None, None
            except MalformedResponseError as error:
                return None, error, None  # transient glitch: retry
        fault = HttpStatusError(
            response.status,
            f"{url} answered {response.body[:120]!r}",
            retry_after=response.retry_after(),
        )
        if self.retry.retryable(response.status):
            return None, fault, response.retry_after()
        raise fault  # 4xx contract violations never improve with retries

    def _next_delay(
        self, attempt: int, retry_after: Optional[float], slept: float
    ) -> Optional[float]:
        """Delay before the next attempt, or ``None`` to give up."""
        if attempt >= self.retry.max_attempts:
            return None
        if retry_after is not None:
            delay = retry_after
        else:
            with self._lock:
                delay = self.retry.backoff(attempt, self._rng)
        if slept + delay > self.retry.budget:
            return None
        return delay

    def _record(self, waited: float, attempt: int) -> None:
        with self._lock:
            self.stats.requests += 1
            if waited > 0:
                self.stats.throttle_waits += 1
            if attempt > 1:
                self.stats.retries += 1

    # -- entry points ------------------------------------------------------

    def post_json(
        self,
        url: str,
        payload: Mapping[str, object],
        headers: Optional[Mapping[str, str]] = None,
    ) -> Dict[str, object]:
        """POST ``payload`` as JSON; returns the parsed JSON answer.

        Applies the full policy stack: rate limiting, per-request
        timeouts, and backoff retries over 429/5xx, timeouts,
        connection failures and malformed bodies.  Exhausted retries
        re-raise the *last* fault (a subclass of
        :class:`~repro.errors.TransportError`).
        """
        body, all_headers = self._encode(payload, headers)
        attempt, slept = 1, 0.0
        while True:
            waited = self.rate_limiter.acquire() if self.rate_limiter else 0.0
            self._record(waited, attempt)
            fault: TransportError
            retry_after: Optional[float] = None
            try:
                response = self.transport.request(
                    "POST", url, all_headers, body, self.timeout
                )
            except TransportError as error:
                fault = error
            else:
                parsed, maybe_fault, retry_after = self._classify(response, url)
                if parsed is not None:
                    return parsed
                assert maybe_fault is not None
                fault = maybe_fault
            delay = self._next_delay(attempt, retry_after, slept)
            if delay is None:
                raise fault
            with self._lock:
                self.stats.backoff_seconds += delay
            time.sleep(delay)
            slept += delay
            attempt += 1

    async def apost_json(
        self,
        url: str,
        payload: Mapping[str, object],
        headers: Optional[Mapping[str, str]] = None,
    ) -> Dict[str, object]:
        """Async :meth:`post_json`: identical policy, awaited sleeps."""
        body, all_headers = self._encode(payload, headers)
        attempt, slept = 1, 0.0
        while True:
            waited = (
                await self.rate_limiter.aacquire() if self.rate_limiter else 0.0
            )
            self._record(waited, attempt)
            fault: TransportError
            retry_after: Optional[float] = None
            try:
                response = await self.transport.arequest(
                    "POST", url, all_headers, body, self.timeout
                )
            except TransportError as error:
                fault = error
            else:
                parsed, maybe_fault, retry_after = self._classify(response, url)
                if parsed is not None:
                    return parsed
                assert maybe_fault is not None
                fault = maybe_fault
            delay = self._next_delay(attempt, retry_after, slept)
            if delay is None:
                raise fault
            with self._lock:
                self.stats.backoff_seconds += delay
            await asyncio.sleep(delay)
            slept += delay
            attempt += 1

    @staticmethod
    def _encode(
        payload: Mapping[str, object], headers: Optional[Mapping[str, str]]
    ) -> "tuple[bytes, Dict[str, str]]":
        body = json.dumps(dict(payload), ensure_ascii=False).encode("utf-8")
        all_headers = {"Content-Type": "application/json"}
        all_headers.update(headers or {})
        return body, all_headers
