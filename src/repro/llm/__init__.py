"""LLM substrate: prompts, intents, claim extraction, knowledge base,
and the deterministic simulated model (Llama-2-7B-chat substitute).
"""

from .base import (
    DispatchPath,
    GenerationResult,
    LanguageModel,
    TokenUsage,
    abatched_generate,
    batched_generate,
    resolve_dispatch,
    run_coroutine,
)
from .cache import CacheStats, CachingLLM
from .coalesce import Latch, SingleFlight, SingleFlightStats
from .remote import RemoteLLM, UsageStats, parse_model_spec
from .router import (
    BreakerState,
    CircuitBreaker,
    ProviderHealth,
    RouterLLM,
    RouterStats,
)
from .store import PromptStore, StoreStats, store_key
from .transport import (
    HttpClient,
    HttpResponse,
    HttpTransport,
    RetryPolicy,
    TokenBucket,
    TransportStats,
    UrllibTransport,
)
from .extraction import Claim, ClaimExtractor, ClaimKind, split_sentences
from .intents import (
    ENTITY_PATTERN,
    ParsedQuestion,
    QuestionIntent,
    classify_intent,
    parse_question,
)
from .knowledge import KBFact, KnowledgeBase
from .prompts import DEFAULT_PROMPT_BUILDER, ParsedPrompt, PromptBuilder, parse_prompt
from .scripted import ScriptedLLM
from .simulated import SimulatedLLM, SimulatedLLMConfig

__all__ = [
    "DispatchPath",
    "GenerationResult",
    "LanguageModel",
    "TokenUsage",
    "abatched_generate",
    "batched_generate",
    "resolve_dispatch",
    "run_coroutine",
    "CacheStats",
    "CachingLLM",
    "Latch",
    "SingleFlight",
    "SingleFlightStats",
    "RemoteLLM",
    "UsageStats",
    "parse_model_spec",
    "BreakerState",
    "CircuitBreaker",
    "ProviderHealth",
    "RouterLLM",
    "RouterStats",
    "PromptStore",
    "StoreStats",
    "store_key",
    "HttpClient",
    "HttpResponse",
    "HttpTransport",
    "RetryPolicy",
    "TokenBucket",
    "TransportStats",
    "UrllibTransport",
    "Claim",
    "ClaimExtractor",
    "ClaimKind",
    "split_sentences",
    "ENTITY_PATTERN",
    "ParsedQuestion",
    "QuestionIntent",
    "classify_intent",
    "parse_question",
    "KBFact",
    "KnowledgeBase",
    "DEFAULT_PROMPT_BUILDER",
    "ParsedPrompt",
    "PromptBuilder",
    "parse_prompt",
    "ScriptedLLM",
    "SimulatedLLM",
    "SimulatedLLMConfig",
]
