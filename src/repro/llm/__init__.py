"""LLM substrate: prompts, intents, claim extraction, knowledge base,
and the deterministic simulated model (Llama-2-7B-chat substitute).
"""

from .base import GenerationResult, LanguageModel, TokenUsage, batched_generate
from .cache import CacheStats, CachingLLM
from .extraction import Claim, ClaimExtractor, ClaimKind, split_sentences
from .intents import (
    ENTITY_PATTERN,
    ParsedQuestion,
    QuestionIntent,
    classify_intent,
    parse_question,
)
from .knowledge import KBFact, KnowledgeBase
from .prompts import DEFAULT_PROMPT_BUILDER, ParsedPrompt, PromptBuilder, parse_prompt
from .scripted import ScriptedLLM
from .simulated import SimulatedLLM, SimulatedLLMConfig

__all__ = [
    "GenerationResult",
    "LanguageModel",
    "TokenUsage",
    "batched_generate",
    "CacheStats",
    "CachingLLM",
    "Claim",
    "ClaimExtractor",
    "ClaimKind",
    "split_sentences",
    "ENTITY_PATTERN",
    "ParsedQuestion",
    "QuestionIntent",
    "classify_intent",
    "parse_question",
    "KBFact",
    "KnowledgeBase",
    "DEFAULT_PROMPT_BUILDER",
    "ParsedPrompt",
    "PromptBuilder",
    "parse_prompt",
    "ScriptedLLM",
    "SimulatedLLM",
    "SimulatedLLMConfig",
]
