"""Remote chat-completions adapter: RAGE over an HTTP LLM endpoint.

:class:`RemoteLLM` implements the :class:`~repro.llm.base.LanguageModel`
contract — sync ``generate`` plus native-async ``agenerate`` — against
an OpenAI- or Anthropic-style chat endpoint.  The adapter is a pure
payload builder/parser: throttling, timeouts and retries live in the
:class:`~repro.llm.transport.HttpClient` it owns, one client per
adapter so the token bucket and usage accounting are shared by every
concurrent call, whichever execution backend drives them.

Deliberately *no* ``generate_batch`` / ``agenerate_batch``: a chat
endpoint takes one prompt per request, so batching is exactly the
dispatch ladder's job — :func:`~repro.llm.base.resolve_dispatch` lands
on the per-prompt async rung, whose ``max_inflight`` bound is how an
execution backend's capacity (and the cache wrapper's forwarded bound)
actually reaches the wire.  A native batch entry point here would
swallow that bound and reintroduce unbounded fan-out.

Providers
---------
``openai``
    ``POST {base_url}/chat/completions`` with a ``messages`` payload,
    ``Authorization: Bearer`` auth, answer at
    ``choices[0].message.content``, usage in
    ``usage.prompt_tokens``/``completion_tokens``.
``anthropic``
    ``POST {base_url}/v1/messages`` with ``x-api-key`` +
    ``anthropic-version`` headers, answer in the first ``text`` content
    block, usage in ``usage.input_tokens``/``output_tokens``.

API keys come from the environment (``api_key_env`` names the
variable) so key material never sits in configs or reports; a missing
variable is a :class:`~repro.errors.ConfigError` at construction, not
a 401 mid-explanation.  Keyless construction is allowed for local
endpoints (fakes, proxies, self-hosted gateways).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigError, MalformedResponseError
from .base import GenerationResult, TokenUsage
from .transport import (
    DEFAULT_TIMEOUT,
    HttpClient,
    HttpTransport,
    RetryPolicy,
    TokenBucket,
)

#: Default completion budget sent to providers that require one
#: (Anthropic's ``max_tokens`` is mandatory).
DEFAULT_MAX_TOKENS = 256

ANTHROPIC_VERSION = "2023-06-01"


def parse_model_spec(spec: str) -> Tuple[str, str]:
    """Split a ``remote:<provider>:<model>`` spec.

    The CLI and :class:`~repro.core.engine.RageConfig` accept model
    specs; this parses (and validates) the remote form — e.g.
    ``remote:openai:gpt-4o-mini`` or ``remote:anthropic:claude-3-5-haiku``.
    """
    parts = spec.split(":", 2)
    if len(parts) != 3 or parts[0] != "remote" or not parts[1] or not parts[2]:
        raise ConfigError(
            f"invalid remote model spec {spec!r} "
            "(expected remote:<provider>:<model>)"
        )
    provider = parts[1].strip().lower()
    if provider not in _FORMATS:
        raise ConfigError(
            f"unknown remote provider {provider!r} "
            f"(expected one of {sorted(_FORMATS)})"
        )
    return provider, parts[2].strip()


@dataclass
class UsageStats:
    """Aggregated per-session usage for one :class:`RemoteLLM`.

    Counts successful generations only — a failed call that never
    produced an answer has no usage to aggregate (its attempts are
    visible in the transport stats instead).
    """

    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        """Prompt plus completion tokens across the session."""
        return self.prompt_tokens + self.completion_tokens


class _ProviderFormat:
    """One provider dialect: URL, headers, payload shape, parsing."""

    name = "abstract"
    default_base_url = ""
    path = ""

    def headers(self, api_key: Optional[str]) -> Dict[str, str]:
        raise NotImplementedError

    def payload(
        self, model: str, prompt: str, temperature: float, max_tokens: int
    ) -> Dict[str, object]:
        raise NotImplementedError

    def parse(self, payload: Mapping[str, object]) -> Tuple[str, TokenUsage]:
        raise NotImplementedError

    @staticmethod
    def _usage_field(payload: Mapping[str, object], key: str) -> int:
        usage = payload.get("usage")
        if not isinstance(usage, dict):
            return 0
        value = usage.get(key, 0)
        return int(value) if isinstance(value, (int, float)) else 0


class _OpenAIFormat(_ProviderFormat):
    name = "openai"
    default_base_url = "https://api.openai.com/v1"
    path = "/chat/completions"

    def headers(self, api_key: Optional[str]) -> Dict[str, str]:
        return {"Authorization": f"Bearer {api_key}"} if api_key else {}

    def payload(
        self, model: str, prompt: str, temperature: float, max_tokens: int
    ) -> Dict[str, object]:
        return {
            "model": model,
            "messages": [{"role": "user", "content": prompt}],
            "temperature": temperature,
            "max_tokens": max_tokens,
        }

    def parse(self, payload: Mapping[str, object]) -> Tuple[str, TokenUsage]:
        try:
            choices = payload["choices"]
            message = choices[0]["message"]  # type: ignore[index]
            answer = message["content"]  # type: ignore[index]
        except (KeyError, IndexError, TypeError) as error:
            raise MalformedResponseError(
                f"openai response missing choices[0].message.content: {error!r}"
            ) from error
        if not isinstance(answer, str):
            raise MalformedResponseError(
                f"openai message content is {type(answer).__name__}, not str"
            )
        return answer, TokenUsage(
            prompt_tokens=self._usage_field(payload, "prompt_tokens"),
            completion_tokens=self._usage_field(payload, "completion_tokens"),
        )


class _AnthropicFormat(_ProviderFormat):
    name = "anthropic"
    default_base_url = "https://api.anthropic.com"
    path = "/v1/messages"

    def headers(self, api_key: Optional[str]) -> Dict[str, str]:
        headers = {"anthropic-version": ANTHROPIC_VERSION}
        if api_key:
            headers["x-api-key"] = api_key
        return headers

    def payload(
        self, model: str, prompt: str, temperature: float, max_tokens: int
    ) -> Dict[str, object]:
        return {
            "model": model,
            "max_tokens": max_tokens,
            "temperature": temperature,
            "messages": [{"role": "user", "content": prompt}],
        }

    def parse(self, payload: Mapping[str, object]) -> Tuple[str, TokenUsage]:
        blocks = payload.get("content")
        if not isinstance(blocks, list):
            raise MalformedResponseError("anthropic response missing content blocks")
        texts = [
            block.get("text")
            for block in blocks
            if isinstance(block, dict) and block.get("type") == "text"
        ]
        if not texts or not all(isinstance(text, str) for text in texts):
            raise MalformedResponseError(
                "anthropic response has no text content block"
            )
        return "".join(texts), TokenUsage(  # type: ignore[arg-type]
            prompt_tokens=self._usage_field(payload, "input_tokens"),
            completion_tokens=self._usage_field(payload, "output_tokens"),
        )


_FORMATS: Dict[str, _ProviderFormat] = {
    fmt.name: fmt for fmt in (_OpenAIFormat(), _AnthropicFormat())
}


class RemoteLLM:
    """A remote chat-completions endpoint as a :class:`LanguageModel`.

    Parameters
    ----------
    provider:
        ``"openai"`` or ``"anthropic"`` (the payload dialect).
    model:
        The provider-side model identifier.
    base_url:
        Endpoint root; defaults to the provider's public API.  Point it
        at a fake server, a proxy or a self-hosted gateway for hermetic
        runs.
    api_key / api_key_env:
        Explicit key, or the *name* of the environment variable holding
        it (naming a variable that is unset raises
        :class:`~repro.errors.ConfigError` immediately).  Both omitted
        = unauthenticated (local endpoints).
    timeout:
        Per-request timeout in seconds.
    rate_limit / rate_burst:
        Token-bucket throttle shared by every concurrent call;
        ``None`` = unthrottled.
    retry:
        The :class:`~repro.llm.transport.RetryPolicy`; default retries
        429/transient-5xx/timeouts/malformed bodies with capped
        exponential backoff.
    temperature / max_tokens:
        Generation parameters (part of the persistent-cache identity).
    prompt_price / completion_price:
        Optional $ per **million** tokens; when set,
        :meth:`usage_cost` prices the session.
    transport / client:
        Injection points for tests; ``client`` overrides everything
        transport-related.
    """

    def __init__(
        self,
        provider: str,
        model: str,
        base_url: Optional[str] = None,
        api_key: Optional[str] = None,
        api_key_env: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        temperature: float = 0.0,
        max_tokens: int = DEFAULT_MAX_TOKENS,
        prompt_price: Optional[float] = None,
        completion_price: Optional[float] = None,
        transport: Optional[HttpTransport] = None,
        client: Optional[HttpClient] = None,
        seed: int = 0,
    ) -> None:
        fmt = _FORMATS.get(provider.strip().lower())
        if fmt is None:
            raise ConfigError(
                f"unknown remote provider {provider!r} "
                f"(expected one of {sorted(_FORMATS)})"
            )
        if not model:
            raise ConfigError("remote model id must be non-empty")
        if max_tokens < 1:
            raise ConfigError(f"max_tokens must be >= 1, got {max_tokens}")
        self._format = fmt
        self.provider = fmt.name
        self.model = model
        self.base_url = (base_url or fmt.default_base_url).rstrip("/")
        if not self.base_url.startswith(("http://", "https://")):
            raise ConfigError(
                f"base_url must be http(s), got {self.base_url!r}"
            )
        self.temperature = temperature
        self.max_tokens = max_tokens
        self.prompt_price = prompt_price
        self.completion_price = completion_price
        self._api_key = self._resolve_key(api_key, api_key_env)
        if client is not None:
            self._client = client
        else:
            limiter = (
                TokenBucket(rate_limit, burst=rate_burst)
                if rate_limit is not None
                else None
            )
            self._client = HttpClient(
                transport=transport,
                rate_limiter=limiter,
                retry=retry,
                timeout=timeout,
                seed=seed,
            )
        self.usage = UsageStats()
        self._usage_lock = threading.Lock()

    @staticmethod
    def _resolve_key(
        api_key: Optional[str], api_key_env: Optional[str]
    ) -> Optional[str]:
        if api_key is not None:
            return api_key
        if api_key_env is None:
            return None
        value = os.environ.get(api_key_env)
        if not value:
            raise ConfigError(
                f"api_key_env {api_key_env!r} is not set in the environment"
            )
        return value

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        """Identifier for reports and cache keys."""
        return f"remote:{self.provider}/{self.model}"

    @property
    def cache_params(self) -> Dict[str, object]:
        """Persistent-cache identity beyond the name.

        Two same-named remote models answering through different
        endpoints or generation settings must not share store entries;
        the API key is deliberately excluded (it selects an account,
        not an answer distribution — and must never be hashed into
        on-disk artifacts).
        """
        return {
            "base_url": self.base_url,
            "temperature": self.temperature,
            "max_tokens": self.max_tokens,
        }

    @property
    def client(self) -> HttpClient:
        """The shared transport client (stats, limiter, retry policy)."""
        return self._client

    # -- generation --------------------------------------------------------

    @property
    def _url(self) -> str:
        return self.base_url + self._format.path

    def _request_parts(
        self, prompt: str
    ) -> Tuple[Dict[str, object], Dict[str, str]]:
        payload = self._format.payload(
            self.model, prompt, self.temperature, self.max_tokens
        )
        return payload, self._format.headers(self._api_key)

    def _finish(
        self, prompt: str, raw: Mapping[str, object]
    ) -> GenerationResult:
        answer, usage = self._format.parse(raw)
        with self._usage_lock:
            self.usage.calls += 1
            self.usage.prompt_tokens += usage.prompt_tokens
            self.usage.completion_tokens += usage.completion_tokens
        return GenerationResult(
            answer=answer,
            prompt=prompt,
            attention=None,
            usage=usage,
            diagnostics={"provider": self.provider, "endpoint": self._url},
        )

    def generate(self, prompt: str) -> GenerationResult:
        """One throttled, retried HTTP completion for ``prompt``."""
        payload, headers = self._request_parts(prompt)
        raw = self._client.post_json(self._url, payload, headers)
        return self._finish(prompt, raw)

    async def agenerate(self, prompt: str) -> GenerationResult:
        """Async :meth:`generate`: same policy stack, awaited sleeps.

        This is the entry point that makes ``asyncio:N`` pay off — the
        dispatch ladder fans per-prompt calls into a bounded task group
        while the event loop overlaps every in-flight request.
        """
        payload, headers = self._request_parts(prompt)
        raw = await self._client.apost_json(self._url, payload, headers)
        return self._finish(prompt, raw)

    # -- accounting --------------------------------------------------------

    def usage_cost(self) -> Optional[float]:
        """Session cost in dollars, when prices are configured."""
        if self.prompt_price is None or self.completion_price is None:
            return None
        return (
            self.usage.prompt_tokens * self.prompt_price
            + self.usage.completion_tokens * self.completion_price
        ) / 1_000_000.0

    def usage_lines(self) -> List[str]:
        """Human-readable usage summary (the CLI's ``--stats`` block)."""
        stats = self._client.stats
        lines = [
            f"Remote usage: {self.usage.calls} completions via {self.name}; "
            f"{self.usage.prompt_tokens} prompt + "
            f"{self.usage.completion_tokens} completion tokens",
            f"Transport: {stats.requests} requests "
            f"({stats.retries} retries, {stats.throttle_waits} throttled, "
            f"{stats.backoff_seconds:.2f}s backoff)",
        ]
        cost = self.usage_cost()
        if cost is not None:
            lines.append(f"Estimated cost: ${cost:.6f}")
        return lines
