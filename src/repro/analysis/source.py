"""One scanned file: text, lazily-parsed AST, and inline suppressions.

Suppression syntax
------------------
A comment anywhere on a flagged line silences named rules on it::

    self.calls += 1  # repro: disable=lock-discipline -- single-threaded by design

A *standalone* directive comment applies to the next source line (for
lines with no room left)::

    # repro: disable=async-hygiene -- pure CPU, answers inline
    return self.generate(prompt)

``disable=all`` silences every rule on the target line.  Everything
after `` -- `` is a free-form justification; project convention is
that deliberate suppressions always carry one.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set

_DIRECTIVE = re.compile(r"#\s*repro:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")

#: Rule-set value meaning "every rule".
ALL_RULES = "all"


def _parse_directive(comment: str) -> Optional[Set[str]]:
    """The rule ids named by a ``# repro: disable=`` comment, if any."""
    match = _DIRECTIVE.search(comment)
    if match is None:
        return None
    return {rule.strip() for rule in match.group(1).split(",") if rule.strip()}


class SourceFile:
    """A file under analysis, with layout-aware scope helpers.

    ``rel`` is the repo-relative POSIX path; checkers scope themselves
    by it (``in_tests``, ``in_fakes``, ``library_path``).  ``tree``
    parses on first use and raises ``SyntaxError`` for the engine to
    convert into a ``parse-error`` finding.
    """

    def __init__(self, rel: str, text: str, path: Optional[Path] = None) -> None:
        self.rel = rel.replace("\\", "/")
        self.text = text
        self.path = path
        self._tree: Optional[ast.Module] = None
        self._suppressions: Optional[Dict[int, FrozenSet[str]]] = None

    @classmethod
    def read(cls, path: Path, rel: str) -> "SourceFile":
        """Load a file from disk (invalid UTF-8 bytes are replaced)."""
        return cls(rel, path.read_text(encoding="utf-8", errors="replace"), path)

    # -- parsing -----------------------------------------------------------

    @property
    def tree(self) -> ast.Module:
        """The parsed module (cached; ``SyntaxError`` propagates)."""
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=self.rel)
        return self._tree

    # -- layout scope ------------------------------------------------------

    @property
    def parts(self) -> List[str]:
        return self.rel.split("/")

    @property
    def in_tests(self) -> bool:
        """Test or benchmark code (the hermetic zone)."""
        return bool(self.parts) and self.parts[0] in ("tests", "benchmarks")

    @property
    def in_fakes(self) -> bool:
        """The sanctioned test-double package (may touch sockets)."""
        return self.rel.startswith("tests/fakes/")

    @property
    def library_path(self) -> Optional[str]:
        """Path inside the ``repro`` package, or ``None`` outside it.

        Recognizes both the in-repo layout (``src/repro/...``) and a
        flat checkout (``repro/...``).
        """
        for prefix in ("src/repro/", "repro/"):
            if self.rel.startswith(prefix):
                return self.rel[len(prefix):]
        return None

    @property
    def in_library(self) -> bool:
        return self.library_path is not None

    @property
    def in_exactness_zone(self) -> bool:
        """Modules whose outputs are asserted answer-for-answer exact."""
        lib = self.library_path
        return lib is not None and (
            lib.startswith("core/")
            or lib.startswith("combinatorics/")
            or lib.startswith("retrieval/")
        )

    # -- suppressions ------------------------------------------------------

    @property
    def suppressions(self) -> Dict[int, FrozenSet[str]]:
        """Line number -> rule ids silenced on that line."""
        if self._suppressions is None:
            self._suppressions = self._collect_suppressions()
        return self._suppressions

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is silenced on ``line``."""
        rules = self.suppressions.get(line)
        return rules is not None and (rule in rules or ALL_RULES in rules)

    def _collect_suppressions(self) -> Dict[int, FrozenSet[str]]:
        directives: Dict[int, Set[str]] = {}
        standalone: List[tuple] = []  # (comment line, rules)
        code_lines: Set[int] = set()
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.text).readline)
            )
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return {}  # the engine reports the parse failure separately
        for token in tokens:
            if token.type == tokenize.COMMENT:
                rules = _parse_directive(token.string)
                if rules is None:
                    continue
                line = token.start[0]
                if line in code_lines:
                    directives.setdefault(line, set()).update(rules)
                else:
                    standalone.append((line, rules))
            elif token.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENCODING,
                tokenize.ENDMARKER,
            ):
                for line in range(token.start[0], token.end[0] + 1):
                    code_lines.add(line)
        # A standalone directive guards the next line that holds code.
        for line, rules in standalone:
            targets = [code for code in code_lines if code > line]
            if targets:
                directives.setdefault(min(targets), set()).update(rules)
        return {line: frozenset(rules) for line, rules in directives.items()}
