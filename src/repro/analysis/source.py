"""One scanned file: text, lazily-parsed AST, and inline suppressions.

Suppression syntax
------------------
A comment anywhere on a flagged line silences named rules on it::

    self.calls += 1  # repro: disable=lock-discipline -- single-threaded by design

A *standalone* directive comment applies to the next source line (for
lines with no room left)::

    # repro: disable=async-hygiene -- pure CPU, answers inline
    return self.generate(prompt)

``disable=all`` silences every rule on the target line.  Everything
after `` -- `` is a free-form justification; project convention is
that deliberate suppressions always carry one.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

_DIRECTIVE = re.compile(r"#\s*repro:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")

#: Rule-set value meaning "every rule".
ALL_RULES = "all"


# -- import-alias resolution (shared by every checker and the graph) -------
#
# Promoted out of ``checkers/async_hygiene.py``: any rule that matches
# calls against canonical dotted names (``random.sample``,
# ``time.sleep``, ``urllib.request.*``) must see through aliases —
# ``import random as rnd`` / ``from time import sleep as zzz`` would
# otherwise evade it.  The whole-program symbol layer
# (:mod:`repro.analysis.graph.symbols`) resolves *project* imports
# through the same map, so it also understands relative imports when
# the importing module's dotted name is known.


def module_name_for(rel: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/llm/cache.py`` -> ``repro.llm.cache``;
    ``tests/test_x.py`` -> ``tests.test_x``; package ``__init__.py``
    files name the package itself.
    """
    normalized = rel.replace("\\", "/")
    for prefix in ("src/",):
        if normalized.startswith(prefix):
            normalized = normalized[len(prefix):]
    if normalized.endswith(".py"):
        normalized = normalized[: -len(".py")]
    parts = [part for part in normalized.split("/") if part]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def build_import_map(
    tree: ast.Module, module: Optional[str] = None
) -> Dict[str, str]:
    """Local name -> canonical dotted module/object it binds.

    ``import random as rnd`` maps ``rnd -> random``; ``from urllib
    import request`` maps ``request -> urllib.request``; ``from random
    import sample as s`` maps ``s -> random.sample``.  With ``module``
    (the importing module's dotted name) relative imports resolve too:
    ``from .coalesce import SingleFlight`` inside ``repro.llm.cache``
    maps ``SingleFlight -> repro.llm.coalesce.SingleFlight``.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                imports[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom):
            base: Optional[str] = None
            if node.level == 0:
                base = node.module
            elif module:
                # `from .x import y` / `from ..x import y`: climb
                # ``level`` packages up from the importing module.
                parts = module.split(".")
                if len(parts) >= node.level:
                    package = parts[: len(parts) - node.level]
                    base = ".".join(package + ([node.module] if node.module else []))
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}"
    return imports


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_call_target(
    call: ast.Call, imports: Dict[str, str]
) -> Optional[str]:
    """Canonical dotted name a call resolves to, through import aliases.

    ``rnd.sample(...)`` with ``import random as rnd`` resolves to
    ``random.sample``; ``s(...)`` with ``from random import sample as
    s`` resolves to ``random.sample``.  Attribute chains rooted at
    non-import names (``self.generate``) resolve with their literal
    root (``self.generate``).
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    root, _, rest = name.partition(".")
    resolved_root = imports.get(root, root)
    return f"{resolved_root}.{rest}" if rest else resolved_root


def iter_imported_modules(tree: ast.Module) -> Iterator[Tuple[int, str]]:
    """``(line, dotted module)`` for every absolute import in a module.

    ``from pkg import name`` yields both ``pkg`` and ``pkg.name`` (the
    name may itself be a submodule); relative imports are skipped —
    they stay inside the package being analyzed.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue
            yield node.lineno, node.module
            for alias in node.names:
                if alias.name != "*":
                    yield node.lineno, f"{node.module}.{alias.name}"


def _parse_directive(comment: str) -> Optional[Set[str]]:
    """The rule ids named by a ``# repro: disable=`` comment, if any."""
    match = _DIRECTIVE.search(comment)
    if match is None:
        return None
    return {rule.strip() for rule in match.group(1).split(",") if rule.strip()}


class SourceFile:
    """A file under analysis, with layout-aware scope helpers.

    ``rel`` is the repo-relative POSIX path; checkers scope themselves
    by it (``in_tests``, ``in_fakes``, ``library_path``).  ``tree``
    parses on first use and raises ``SyntaxError`` for the engine to
    convert into a ``parse-error`` finding.
    """

    def __init__(self, rel: str, text: str, path: Optional[Path] = None) -> None:
        self.rel = rel.replace("\\", "/")
        self.text = text
        self.path = path
        self._tree: Optional[ast.Module] = None
        self._suppressions: Optional[Dict[int, FrozenSet[str]]] = None
        self._import_map: Optional[Dict[str, str]] = None

    @classmethod
    def read(cls, path: Path, rel: str) -> "SourceFile":
        """Load a file from disk (invalid UTF-8 bytes are replaced)."""
        return cls(rel, path.read_text(encoding="utf-8", errors="replace"), path)

    # -- parsing -----------------------------------------------------------

    @property
    def tree(self) -> ast.Module:
        """The parsed module (cached; ``SyntaxError`` propagates)."""
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=self.rel)
        return self._tree

    @property
    def module_name(self) -> str:
        """Dotted module name derived from ``rel`` (layout-aware)."""
        return module_name_for(self.rel)

    @property
    def import_map(self) -> Dict[str, str]:
        """Local name -> canonical dotted target, relative-import aware.

        Built once per file; every checker resolves aliased call sites
        through this one map so no rule can be evaded by
        ``import random as rnd``-style renames.
        """
        if self._import_map is None:
            self._import_map = build_import_map(self.tree, self.module_name)
        return self._import_map

    # -- layout scope ------------------------------------------------------

    @property
    def parts(self) -> List[str]:
        return self.rel.split("/")

    @property
    def in_tests(self) -> bool:
        """Test or benchmark code (the hermetic zone)."""
        return bool(self.parts) and self.parts[0] in ("tests", "benchmarks")

    @property
    def in_fakes(self) -> bool:
        """The sanctioned test-double package (may touch sockets)."""
        return self.rel.startswith("tests/fakes/")

    @property
    def library_path(self) -> Optional[str]:
        """Path inside the ``repro`` package, or ``None`` outside it.

        Recognizes both the in-repo layout (``src/repro/...``) and a
        flat checkout (``repro/...``).
        """
        for prefix in ("src/repro/", "repro/"):
            if self.rel.startswith(prefix):
                return self.rel[len(prefix):]
        return None

    @property
    def in_library(self) -> bool:
        return self.library_path is not None

    @property
    def in_exactness_zone(self) -> bool:
        """Modules whose outputs are asserted answer-for-answer exact."""
        lib = self.library_path
        return lib is not None and (
            lib.startswith("core/")
            or lib.startswith("combinatorics/")
            or lib.startswith("retrieval/")
        )

    # -- suppressions ------------------------------------------------------

    @property
    def suppressions(self) -> Dict[int, FrozenSet[str]]:
        """Line number -> rule ids silenced on that line."""
        if self._suppressions is None:
            self._suppressions = self._collect_suppressions()
        return self._suppressions

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is silenced on ``line``."""
        rules = self.suppressions.get(line)
        return rules is not None and (rule in rules or ALL_RULES in rules)

    def _collect_suppressions(self) -> Dict[int, FrozenSet[str]]:
        directives: Dict[int, Set[str]] = {}
        standalone: List[tuple] = []  # (comment line, rules)
        code_lines: Set[int] = set()
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.text).readline)
            )
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return {}  # the engine reports the parse failure separately
        for token in tokens:
            if token.type == tokenize.COMMENT:
                rules = _parse_directive(token.string)
                if rules is None:
                    continue
                line = token.start[0]
                if line in code_lines:
                    directives.setdefault(line, set()).update(rules)
                else:
                    standalone.append((line, rules))
            elif token.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENCODING,
                tokenize.ENDMARKER,
            ):
                for line in range(token.start[0], token.end[0] + 1):
                    code_lines.add(line)
        # A standalone directive guards the next line that holds code.
        for line, rules in standalone:
            targets = [code for code in code_lines if code > line]
            if targets:
                directives.setdefault(min(targets), set()).update(rules)
        return {line: frozenset(rules) for line, rules in directives.items()}
