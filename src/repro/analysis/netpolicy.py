"""The project's single network-isolation policy.

Tests and benchmarks must be hermetic: all suite traffic stays on
loopback, served by the in-process fake server.  Two enforcement
layers consume **this one allowlist**, so they cannot drift:

* the runtime guard (``tests/fakes/network_guard.py``) patches
  ``socket.socket.connect`` and rejects any address that fails
  :func:`address_allowed`;
* the static ``test-network-isolation`` checker
  (:mod:`repro.analysis.checkers.network_isolation`) rejects imports
  of :data:`NETWORK_MODULES` in test/benchmark code outside
  :data:`ALLOWED_TEST_DIRS`.

The policy, in words: **only loopback, and only from tests/fakes/**.
Raw socket/HTTP machinery belongs in the fakes package (the fake LLM
server, the JSON test client, the loopback helpers); everything else
talks through those doubles.
"""

from __future__ import annotations

import ipaddress
from typing import Tuple

#: Hostnames that resolve to loopback without DNS.
LOOPBACK_NAMES = frozenset({"localhost", "localhost.localdomain", ""})

#: Module prefixes that can open (or serve) real network connections.
#: Importing any of these — or a submodule — in tests/ or benchmarks/
#: outside :data:`ALLOWED_TEST_DIRS` is a ``test-network-isolation``
#: finding.  ``urllib.parse`` stays allowed: it never touches a socket.
NETWORK_MODULES: Tuple[str, ...] = (
    "socket",
    "ssl",
    "socketserver",
    "urllib.request",
    "urllib.error",
    "http.client",
    "http.server",
    "requests",
    "httpx",
    "aiohttp",
    "websockets",
)

#: Repo-relative directory prefixes exempt from the import ban: the
#: sanctioned home of socket-touching test infrastructure.
ALLOWED_TEST_DIRS: Tuple[str, ...] = ("tests/fakes/",)


def module_is_network(module: str) -> bool:
    """Whether importing ``module`` grants real-network capability."""
    return any(
        module == banned or module.startswith(banned + ".")
        for banned in NETWORK_MODULES
    )


def path_is_exempt(rel_path: str) -> bool:
    """Whether a repo-relative file may import network modules."""
    normalized = rel_path.replace("\\", "/")
    return any(normalized.startswith(prefix) for prefix in ALLOWED_TEST_DIRS)


def address_allowed(address: object) -> bool:
    """Whether a ``socket.connect`` address stays inside the sandbox.

    AF_UNIX paths (str/bytes) are local by construction.  For
    ``(host, port)`` tuples the host must be a loopback name or a
    loopback IP; an unresolved non-loopback hostname reaching
    ``connect()`` is blocked rather than trusted.
    """
    if isinstance(address, (str, bytes)):
        return True
    if not isinstance(address, tuple) or not address:
        return True
    host = address[0]
    if not isinstance(host, str):
        return True
    host = host.strip("[]").split("%", 1)[0]
    if host.lower() in LOOPBACK_NAMES:
        return True
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False
