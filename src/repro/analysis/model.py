"""Finding model and checker registry for the static analysis engine.

A :class:`Finding` is one rule violation anchored to a file and line; a
:class:`Checker` is a class that inspects one :class:`~repro.analysis.
source.SourceFile` and yields findings for its single ``rule``.
Checkers self-register via :func:`register` at import time, so the
engine discovers them by importing :mod:`repro.analysis.checkers`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Type

from ..errors import ConfigError

#: Severities, in increasing order of trouble.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: where, which rule, and why it matters."""

    path: str  # repo-relative POSIX path
    line: int  # 1-based line of the offending node
    rule: str  # rule id, e.g. "lock-discipline"
    message: str
    severity: str = "error"

    def render(self) -> str:
        """``path:line: [rule] message`` — the human output line."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-report representation."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
        }


class Checker:
    """Base class for one lint rule.

    Subclasses set ``rule`` (the id used in output, suppressions and
    baselines) and ``description`` (one line for ``--list-rules``),
    then implement :meth:`check`.  :meth:`applies` scopes the rule to
    parts of the repository layout; the default is every scanned file.
    """

    rule: str = ""
    description: str = ""
    #: Project checkers need the assembled whole-program index; the
    #: engine runs them once per run instead of once per file.
    project: bool = False

    def applies(self, source) -> bool:
        """Whether this rule runs against ``source`` at all."""
        return True

    def check(self, source) -> Iterable[Finding]:
        """Yield findings for ``source`` (already scoped and parsed)."""
        raise NotImplementedError

    def finding(self, source, line: int, message: str) -> Finding:
        """Build a finding for this rule anchored in ``source``."""
        return Finding(
            path=source.rel, line=line, rule=self.rule, message=message
        )


class ProjectChecker(Checker):
    """Base class for whole-program rules.

    Where a :class:`Checker` sees one file, a project checker sees the
    assembled :class:`~repro.analysis.graph.symbols.ProjectIndex` —
    every scanned module's summary stitched together — and runs
    exactly once per engine run, after the per-file phase.  Inline
    suppressions still apply: the engine folds them through the
    index's recorded suppression tables.
    """

    project = True

    def check(self, source) -> Iterable[Finding]:
        """Project rules have no per-file pass."""
        return ()

    def check_project(self, index) -> Iterable[Finding]:
        """Yield findings over the whole-program index."""
        raise NotImplementedError


#: All registered checkers, keyed by rule id.
_REGISTRY: Dict[str, Checker] = {}


def register(checker_cls: Type[Checker]) -> Type[Checker]:
    """Class decorator: instantiate and register a checker.

    Double registration of one rule id is a programming error caught
    eagerly — two checkers silently sharing an id would make
    suppressions ambiguous.
    """
    if not checker_cls.rule:
        raise ConfigError(f"checker {checker_cls.__name__} has no rule id")
    if checker_cls.rule in _REGISTRY:
        raise ConfigError(f"duplicate checker rule id {checker_cls.rule!r}")
    _REGISTRY[checker_cls.rule] = checker_cls()
    return checker_cls


def all_checkers() -> List[Checker]:
    """Every registered checker, in rule-id order (deterministic runs)."""
    # Importing the package registers the built-in checkers exactly once.
    from . import checkers  # noqa: F401

    return [_REGISTRY[rule] for rule in sorted(_REGISTRY)]


def checkers_for_rules(rules: Iterable[str]) -> List[Checker]:
    """The checkers for ``rules``; unknown ids are a ConfigError."""
    available = {checker.rule: checker for checker in all_checkers()}
    selected: List[Checker] = []
    for rule in rules:
        if rule not in available:
            known = ", ".join(sorted(available))
            raise ConfigError(f"unknown rule {rule!r} (known rules: {known})")
        selected.append(available[rule])
    return selected
