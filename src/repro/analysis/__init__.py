"""Project-native static analysis for the repro codebase.

A stdlib-``ast`` lint engine encoding the invariants this project
learned the hard way (see each checker's docstring for the bug that
motivated it).  Per-file rules see one module at a time; *project*
rules reason over the whole-program index built by
:mod:`repro.analysis.graph` (symbol tables, a conservative call graph,
and interprocedural lock-set summaries):

========================  ==================================================
rule                      invariant
========================  ==================================================
``lock-discipline``       counter mutation in lock-owning classes happens
                          under the lock
``lock-order``            the global acquired-while-holding graph is
                          acyclic — every cycle is a latent AB/BA deadlock
``held-call``             no known-blocking call (generate, transport
                          I/O, ``time.sleep``) runs while a lock is held
``leaked-resource``       ``reserve()``/``open()`` reach ``cancel()``/
                          ``close()`` on exception paths — releases in
                          cleanup-path *callees* count
``async-hygiene``         no blocking primitives inside ``async def``
``error-taxonomy``        library failures derive from ``repro.errors``
``test-network-isolation``  suites import no socket machinery outside
                          ``tests/fakes/``
``determinism``           no ambient randomness/clocks in ``core/`` and
                          ``combinatorics/``
``swallowed-error``       no silent ``except: pass`` in library code
========================  ==================================================

Run it with ``rage lint [paths]`` or ``python -m repro.analysis``
(``--jobs N`` fans file scanning over a process pool); suppress a
deliberate exception inline with ``# repro: disable=RULE -- why``;
ratchet legacy debt with a baseline file (see
:mod:`repro.analysis.baseline`).  The dynamic twin of ``lock-order``
lives in :mod:`repro.analysis.watchdog` (``RAGE_LOCK_WATCHDOG=1``).
"""

from __future__ import annotations

from .engine import AnalysisResult, analyze_paths, analyze_source
from .model import Checker, Finding, all_checkers, register

__all__ = [
    "AnalysisResult",
    "Checker",
    "Finding",
    "all_checkers",
    "analyze_paths",
    "analyze_source",
    "register",
]
