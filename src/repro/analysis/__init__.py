"""Project-native static analysis for the repro codebase.

A stdlib-``ast`` lint engine encoding the invariants this project
learned the hard way (see each checker's docstring for the bug that
motivated it):

========================  ==================================================
rule                      invariant
========================  ==================================================
``lock-discipline``       counter mutation in lock-owning classes happens
                          under the lock
``acquire-release``       ``reserve()`` refunds via ``cancel()`` on
                          exception paths; ``open()`` lives in ``with``
``async-hygiene``         no blocking primitives inside ``async def``
``error-taxonomy``        library failures derive from ``repro.errors``
``test-network-isolation``  suites import no socket machinery outside
                          ``tests/fakes/``
``determinism``           no ambient randomness/clocks in ``core/`` and
                          ``combinatorics/``
========================  ==================================================

Run it with ``rage lint [paths]`` or ``python -m repro.analysis``;
suppress a deliberate exception inline with ``# repro: disable=RULE --
why``; ratchet legacy debt with a baseline file (see
:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

from .engine import AnalysisResult, analyze_paths, analyze_source
from .model import Checker, Finding, all_checkers, register

__all__ = [
    "AnalysisResult",
    "Checker",
    "Finding",
    "all_checkers",
    "analyze_paths",
    "analyze_source",
    "register",
]
