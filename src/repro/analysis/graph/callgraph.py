"""Conservative call-graph construction over the project symbol table.

An edge is added only when the target is *known*: a direct call to a
module-level function (bare or module-qualified, through import
aliases), or a ``self.``/``cls.`` method dispatch resolved through the
project's class hierarchy — the defining class, its project-known
ancestors, and (because ``self`` may be a subclass instance)
subclass overrides of the method.  ``self.<attr>.<method>()`` resolves
when the attribute's type was pinned by an annotation or a visible
construction.  Everything else — higher-order calls, calls on values
of unknown type, stdlib calls — contributes **no** edge: downstream
analyses (locksets, blocking propagation) only ever assert facts along
edges they are sure of, so an unresolved call can produce a false
negative but never a false positive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .symbols import CallSite, FunctionSummary, ProjectIndex


@dataclass(frozen=True)
class ResolvedCall:
    """One resolved call edge: the site plus its target qualnames."""

    site: CallSite
    targets: Tuple[str, ...]  # function qualnames, deterministic order


class CallGraph:
    """Caller qualname -> resolved call sites, over a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.calls: Dict[str, List[ResolvedCall]] = {}
        self.edges: Dict[str, Set[str]] = {}
        for qualname in sorted(index.functions):
            resolved = list(self._resolve_function(index.functions[qualname]))
            self.calls[qualname] = resolved
            targets: Set[str] = set()
            for call in resolved:
                targets.update(call.targets)
            self.edges[qualname] = targets

    def callees(self, qualname: str) -> Set[str]:
        """Every function ``qualname`` may call (resolved edges only)."""
        return self.edges.get(qualname, set())

    # -- resolution --------------------------------------------------------

    def _resolve_function(self, func: FunctionSummary) -> Iterator[ResolvedCall]:
        for site in func.calls:
            targets = self.resolve_site(func, site)
            if targets:
                yield ResolvedCall(site=site, targets=tuple(sorted(targets)))

    def resolve_site(
        self, func: FunctionSummary, site: CallSite
    ) -> Set[str]:
        """Function qualnames a call site may dispatch to."""
        if site.form == "self":
            if func.cls is None:
                return set()
            return self._resolve_method(func.cls, site.target)
        if site.form == "self_attr":
            if func.cls is None:
                return set()
            attr_type = self._attr_type(func.cls, site.attr)
            if attr_type is None:
                return set()
            return self._resolve_method(attr_type, site.target)
        if site.form == "bare":
            qualname = f"{func.module}.{site.target}"
            if qualname in self.index.functions:
                return {qualname}
            resolved = self._resolve_dotted(site.target, func.module)
            return resolved
        if site.form == "dotted":
            return self._resolve_dotted(site.target, func.module)
        return set()

    def _attr_type(self, cls_qualname: str, attr: str) -> Optional[str]:
        for cls in self.index.mro(cls_qualname):
            typed = cls.attr_types.get(attr)
            if typed is not None:
                if typed in self.index.classes:
                    return typed
                # The annotation may use a bare class name local to the
                # declaring module.
                local = f"{cls.module}.{typed}"
                if local in self.index.classes:
                    return local
                return None
        return None

    def _resolve_method(self, cls_qualname: str, method: str) -> Set[str]:
        """The method in the class/ancestors, plus subclass overrides."""
        targets: Set[str] = set()
        defined_in: Optional[str] = None
        for cls in self.index.mro(cls_qualname):
            qualname = cls.methods.get(method)
            if qualname is not None:
                targets.add(qualname)
                defined_in = cls.qualname
                break
        # `self` may actually be a subclass instance: overrides of the
        # method anywhere below the *receiver* class participate.
        for cls in self.index.subclasses(cls_qualname):
            qualname = cls.methods.get(method)
            if qualname is not None:
                targets.add(qualname)
        if defined_in is None and not targets:
            return set()
        return targets

    def _resolve_dotted(self, dotted: str, module: str) -> Set[str]:
        """A canonical dotted target -> project function, if it is one.

        Handles ``pkg.mod.func`` (module-level function),
        ``pkg.mod.Class`` (constructor -> ``__init__``), and
        ``pkg.mod.Class.method``.
        """
        if dotted in self.index.functions:
            return {dotted}
        if dotted in self.index.classes:
            init = self.index.classes[dotted].methods.get("__init__")
            return {init} if init is not None else set()
        head, _, last = dotted.rpartition(".")
        if head in self.index.classes:
            qualname = self.index.classes[head].methods.get(last)
            if qualname is not None:
                return {qualname}
        return set()
