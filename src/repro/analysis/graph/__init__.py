"""Whole-program analysis layer: symbols, call graph, lock model.

The per-file checkers in :mod:`repro.analysis.checkers` are
syntax-local by design; this package is what lets rules reason *across*
function and module boundaries:

* :mod:`~repro.analysis.graph.symbols` — a project-wide symbol table
  (modules, classes with bases and attribute types, functions with
  per-call-site facts) built from plain picklable summaries, so
  extraction parallelizes across a process pool;
* :mod:`~repro.analysis.graph.callgraph` — conservative call-graph
  construction over those summaries: direct calls, ``self.``/``cls.``
  method dispatch through the known class hierarchy, module-qualified
  calls (unresolvable calls contribute nothing — the graph only
  asserts edges it is sure of);
* :mod:`~repro.analysis.graph.locks` — a registry giving every
  ``threading.Lock``/``RLock``/``Condition`` attribute in the tree a
  stable id, per-function lockset summaries (held-at-call-site vs
  acquired-inside) propagated interprocedurally to a fixpoint, and the
  acquired-while-holding order graph with cycle detection.

The runtime lock watchdog (:mod:`repro.analysis.watchdog`) feeds its
dynamically-observed acquisition edges through the same cycle
detector, so the static checker and the instrumented test run pin one
shared invariant.
"""

from __future__ import annotations

from .callgraph import CallGraph
from .locks import (
    LockModel,
    LockOrderGraph,
    Witness,
    describe_cycle,
    find_cycle_closing,
    find_cycles,
)
from .symbols import ModuleSummary, ProjectIndex, summarize

__all__ = [
    "CallGraph",
    "LockModel",
    "LockOrderGraph",
    "ModuleSummary",
    "ProjectIndex",
    "Witness",
    "describe_cycle",
    "find_cycle_closing",
    "find_cycles",
    "summarize",
]
