"""Project-wide symbol table over the :class:`SourceFile` walker.

One pass per file produces a :class:`ModuleSummary` — a plain-data
(picklable) digest of everything the whole-program layer needs:
classes with their bases, lock attributes and attribute types;
functions with per-call-site facts (what is called, on which line,
which locks are lexically held at that moment, whether the call sits
on a cleanup path); acquisition sites; resource claims.  Extraction is
deliberately AST-free in its *output* so ``rage lint --jobs N`` can
fan file scans out across a process pool and ship summaries back to
the parent, where :class:`ProjectIndex` stitches them into one
project-wide view.

Identity conventions
--------------------
* modules are dotted names (``repro.llm.cache``), derived from the
  repo-relative path;
* classes and functions are qualified by module:
  ``repro.llm.cache.CachingLLM`` /
  ``repro.llm.cache.CachingLLM.generate``; module-level statements are
  collected under ``<module>.<body>``;
* lock *references* are recorded symbolically (``self._lock``, a bare
  global name) and resolved to stable lock ids only once the whole
  project is assembled — the attribute may be inherited from a base
  class in another module.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..source import SourceFile, dotted_name, resolve_call_target

#: Pseudo-function name holding a module's top-level statements.
MODULE_BODY = "<body>"

#: Lock factory -> kind.  ``Condition`` wraps (or aliases) a lock; a
#: ``with`` on it acquires the underlying lock.
_LOCK_FACTORIES = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "condition",
}

#: Canonical dotted calls that block the calling thread.
_BLOCKING_CALLS = frozenset({"time.sleep"})

#: Dotted prefixes whose calls mean synchronous network I/O.
_BLOCKING_PREFIXES = ("urllib.request.", "http.client.", "socket.")

#: Attribute calls that dispatch a model generation or an execution
#: backend run (real I/O at the bottom of the stack for every
#: non-simulated backend).
_MODEL_CALLS = frozenset({"generate", "generate_batch", "run"})


@dataclass(frozen=True)
class LockDecl:
    """One lock-ish attribute (or module global) declaration."""

    name: str  # attribute or global name, e.g. "_stats_lock"
    kind: str  # "lock" | "rlock" | "condition"
    line: int
    alias_of: Optional[str] = None  # Condition(self._x) aliases "_x"


@dataclass(frozen=True)
class CallSite:
    """One call expression and the lock context it runs under.

    ``form`` is how the target was spelled:

    * ``bare`` — ``helper(...)``; ``target`` is the local name;
    * ``dotted`` — ``mod.func(...)`` resolved through the import map;
      ``target`` is the canonical dotted path;
    * ``self`` — ``self.method(...)`` / ``cls.method(...)``; ``target``
      is the method name;
    * ``self_attr`` — ``self.<attr>.<method>(...)``; ``target`` is the
      method, ``attr`` the attribute whose declared type may be known.
    """

    form: str
    target: str
    line: int
    attr: str = ""
    held: Tuple[str, ...] = ()  # symbolic lock refs held at the call
    in_cleanup: bool = False  # lexically inside except/finally
    blocking: Optional[str] = None  # why this call blocks, if known


@dataclass(frozen=True)
class Acquisition:
    """``with <lock>:`` entry — which ref, where, what was already held."""

    ref: str  # "self._lock" or a bare global name
    line: int
    held: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ResourceClaim:
    """A ``reserve()``/``open()``-style claim the function must pair."""

    kind: str  # "reserve" | open-call name ("open"/"fdopen")
    line: int
    tail_trivial: bool = False  # claim-and-return: nothing left to raise


@dataclass
class FunctionSummary:
    """Everything the graph layer knows about one function."""

    name: str
    qualname: str
    module: str
    path: str
    line: int
    cls: Optional[str] = None  # owning class qualname
    is_async: bool = False
    calls: List[CallSite] = field(default_factory=list)
    acquisitions: List[Acquisition] = field(default_factory=list)
    claims: List[ResourceClaim] = field(default_factory=list)
    cleanup_releases: FrozenSet[str] = frozenset()  # "cancel"/"close" seen in cleanup


@dataclass
class ClassSummary:
    """One class: bases, lock attributes, typed attributes, methods."""

    name: str
    qualname: str
    module: str
    path: str
    line: int
    bases: Tuple[str, ...] = ()  # resolved dotted names where possible
    locks: Dict[str, LockDecl] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qualname


@dataclass
class ModuleSummary:
    """Plain-data digest of one file for the whole-program layer."""

    module: str
    path: str
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    module_locks: Dict[str, LockDecl] = field(default_factory=dict)
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# extraction


def _annotation_class(node: Optional[ast.AST], imports: Dict[str, str]) -> Optional[str]:
    """Dotted class name an annotation pins, unwrapping ``Optional[...]``."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        outer = dotted_name(node.value)
        if outer in ("Optional", "typing.Optional"):
            return _annotation_class(node.slice, imports)
        return None
    name = dotted_name(node)
    if name is None or name in ("None", "object"):
        return None
    root, _, rest = name.partition(".")
    resolved = imports.get(root, root)
    return f"{resolved}.{rest}" if rest else resolved


def _constructed_class(value: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """The class a ``Foo(...)`` construction binds, if plausible.

    Conditional expressions (``X() if flag else None``) unwrap to their
    construction arm; anything else non-call resolves to nothing.
    """
    if isinstance(value, ast.IfExp):
        return _constructed_class(value.body, imports) or _constructed_class(
            value.orelse, imports
        )
    if not isinstance(value, ast.Call):
        return None
    target = resolve_call_target(value, imports)
    if target is None or target in _LOCK_FACTORIES:
        return None
    # Heuristic: constructor names are CapWords; helper calls are not.
    last = target.rsplit(".", 1)[-1]
    if not last[:1].isupper():
        return None
    return target


def _lock_decl(
    name: str, value: ast.AST, line: int, imports: Dict[str, str]
) -> Optional[LockDecl]:
    """A :class:`LockDecl` if ``value`` constructs (or aliases) a lock."""
    if not isinstance(value, ast.Call):
        return None
    target = resolve_call_target(value, imports)
    kind = _LOCK_FACTORIES.get(target or "")
    if kind is None:
        return None
    alias = None
    if kind == "condition" and value.args:
        arg = dotted_name(value.args[0])
        if arg is not None and arg.startswith("self."):
            alias = arg.split(".", 2)[1]
    return LockDecl(name=name, kind=kind, line=line, alias_of=alias)


class _FunctionWalker:
    """Walk one function body tracking held locks and cleanup scope."""

    def __init__(self, summary: FunctionSummary, imports: Dict[str, str]) -> None:
        self.summary = summary
        self.imports = imports
        self._managed_opens: Set[int] = set()

    def walk(self, body: List[ast.stmt]) -> None:
        self._mark_managed(body)
        for stmt in body:
            self._walk_node(stmt, held=(), in_cleanup=False)
        self._collect_claims(body)

    # -- with-managed open() calls ----------------------------------------

    def _mark_managed(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        expr = item.context_expr
                        self._managed_opens.add(id(expr))
                        if isinstance(expr, ast.Call):  # closing(open(...))
                            for arg in expr.args:
                                self._managed_opens.add(id(arg))

    # -- main recursive walk ----------------------------------------------

    def _walk_node(
        self, node: ast.AST, held: Tuple[str, ...], in_cleanup: bool
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are their own summaries
        if isinstance(node, (ast.With, ast.AsyncWith)):
            refs = list(held)
            for item in node.items:
                ref = self._lock_ref(item.context_expr)
                if ref is not None:
                    self.summary.acquisitions.append(
                        Acquisition(ref=ref, line=node.lineno, held=tuple(refs))
                    )
                    refs.append(ref)
                else:
                    self._walk_node(item.context_expr, tuple(refs), in_cleanup)
            for stmt in node.body:
                self._walk_node(stmt, tuple(refs), in_cleanup)
            return
        if isinstance(node, ast.Try):
            for stmt in node.body + node.orelse:
                self._walk_node(stmt, held, in_cleanup)
            for handler in node.handlers:
                for stmt in handler.body:
                    self._walk_node(stmt, held, in_cleanup=True)
            for stmt in node.finalbody:
                self._walk_node(stmt, held, in_cleanup=True)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, held, in_cleanup)
            for child in ast.iter_child_nodes(node):
                self._walk_node(child, held, in_cleanup)
            return
        for child in ast.iter_child_nodes(node):
            self._walk_node(child, held, in_cleanup)

    def _lock_ref(self, expr: ast.AST) -> Optional[str]:
        """Symbolic lock ref for a ``with`` context expression.

        Plain names, ``self.<attr>`` chains, and imported-module
        attributes (``with other_mod.LOCK:``) qualify — calls
        (``with open(...)``, ``with self._track(...)``) construct fresh
        context managers and are never lock references.  Non-lock refs
        are harmless: resolution against the registry drops them.
        """
        name = dotted_name(expr)
        if name is None:
            return None
        parts = name.split(".")
        if parts[0] in ("self", "cls") and len(parts) == 2:
            return f"self.{parts[1]}"
        if len(parts) == 1:
            return parts[0]
        if len(parts) == 2 and parts[0] in self.imports:
            # A module-level lock reached through its module: emit the
            # fully qualified id so resolution is import-alias aware.
            return f"{self.imports[parts[0]]}.{parts[1]}"
        return None

    # -- calls -------------------------------------------------------------

    def _visit_call(
        self, call: ast.Call, held: Tuple[str, ...], in_cleanup: bool
    ) -> None:
        site = self._classify(call, held, in_cleanup)
        if site is not None:
            self.summary.calls.append(site)

    def _classify(
        self, call: ast.Call, held: Tuple[str, ...], in_cleanup: bool
    ) -> Optional[CallSite]:
        name = dotted_name(call.func)
        if name is None:
            return None
        parts = name.split(".")
        blocking = self._blocking_reason(call, name, held)
        if parts[0] in ("self", "cls"):
            if len(parts) == 2:
                return CallSite(
                    form="self",
                    target=parts[1],
                    line=call.lineno,
                    held=held,
                    in_cleanup=in_cleanup,
                    blocking=blocking,
                )
            if len(parts) == 3:
                return CallSite(
                    form="self_attr",
                    target=parts[2],
                    attr=parts[1],
                    line=call.lineno,
                    held=held,
                    in_cleanup=in_cleanup,
                    blocking=blocking,
                )
            return None
        resolved = resolve_call_target(call, self.imports)
        if resolved is None:
            return None
        form = "dotted" if "." in resolved else "bare"
        return CallSite(
            form=form,
            target=resolved,
            line=call.lineno,
            held=held,
            in_cleanup=in_cleanup,
            blocking=blocking,
        )

    def _blocking_reason(
        self, call: ast.Call, raw_name: str, held: Tuple[str, ...]
    ) -> Optional[str]:
        """Why this call blocks the thread, if the target is known to."""
        resolved = resolve_call_target(call, self.imports)
        if resolved is not None:
            if resolved in _BLOCKING_CALLS:
                return f"`{resolved}(...)` sleeps"
            for prefix in _BLOCKING_PREFIXES:
                if resolved.startswith(prefix):
                    return f"`{resolved}(...)` performs synchronous network I/O"
        parts = raw_name.split(".")
        if len(parts) >= 2 and parts[-1] in _MODEL_CALLS:
            return f"`.{parts[-1]}(...)` dispatches a generation/backend run"
        if parts[-1] == "wait" and not self._waits_on_held(parts, held):
            # Condition.wait on the held lock *releases* it while
            # parked — that is the one blessed blocking-while-holding
            # shape, so only waits on *other* objects count.
            return f"`{raw_name}(...)` parks the thread until settled"
        return None

    @staticmethod
    def _waits_on_held(parts: List[str], held: Tuple[str, ...]) -> bool:
        if parts[0] in ("self", "cls") and len(parts) == 3:
            return f"self.{parts[1]}" in held
        if len(parts) == 2:
            return parts[0] in held
        return False

    # -- resource claims ----------------------------------------------------

    def _collect_claims(self, body: List[ast.stmt]) -> None:
        releases: Set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                claim = self._claim_kind(node)
                if claim is not None:
                    self.summary.claims.append(
                        ResourceClaim(
                            kind=claim,
                            line=node.lineno,
                            tail_trivial=self._tail_trivial(body, node),
                        )
                    )
        for site in self.summary.calls:
            leaf = site.target.rsplit(".", 1)[-1]
            if site.in_cleanup and leaf in ("cancel", "close"):
                releases.add(leaf)
        self.summary.cleanup_releases = frozenset(releases)

    def _claim_kind(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "reserve"
            and not call.args
            and not call.keywords
        ):
            return "reserve"
        if isinstance(func, ast.Name) and func.id in ("open", "fdopen"):
            if id(call) not in self._managed_opens:
                return func.id
            return None
        if isinstance(func, ast.Attribute) and func.attr in ("open", "fdopen"):
            # os.open returns a raw fd, not a context manager — it
            # cannot appear in a `with`, so flagging it is noise.
            value = func.value
            if func.attr == "open" and isinstance(value, ast.Name) and value.id == "os":
                return None
            if id(call) not in self._managed_opens:
                return func.attr
        return None

    @staticmethod
    def _tail_trivial(body: List[ast.stmt], call: ast.AST) -> bool:
        """Claim-and-return: no statement after the claim can raise."""
        enclosing = None
        for stmt in body:
            if any(child is call for child in ast.walk(stmt)):
                enclosing = stmt
                break
        if enclosing is None:
            return False  # nested inside try/if/loop: be conservative
        tail = body[body.index(enclosing) + 1 :]
        for later in tail:
            if isinstance(later, ast.Pass):
                continue
            if isinstance(later, ast.Return) and (
                later.value is None
                or isinstance(later.value, (ast.Name, ast.Constant))
            ):
                continue
            return False
        return True


def summarize(source: SourceFile) -> ModuleSummary:
    """Extract the whole-program summary for one parsed file."""
    module = source.module_name
    imports = source.import_map
    summary = ModuleSummary(
        module=module, path=source.rel, suppressions=dict(source.suppressions)
    )
    _summarize_scope(
        source.tree.body, module, source.rel, imports, summary, cls=None
    )
    # Module-level statements (outside any def/class) form a pseudo-
    # function so module-scope `with LOCK:` blocks and bare `open()`
    # calls take part in the same analyses.
    top = FunctionSummary(
        name=MODULE_BODY,
        qualname=f"{module}.{MODULE_BODY}",
        module=module,
        path=source.rel,
        line=1,
    )
    walker = _FunctionWalker(top, imports)
    walker.walk(
        [
            stmt
            for stmt in source.tree.body
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
    )
    if top.calls or top.acquisitions or top.claims:
        summary.functions[top.qualname] = top
    for stmt in source.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    decl = _lock_decl(target.id, stmt.value, stmt.lineno, imports)
                    if decl is not None:
                        summary.module_locks[target.id] = decl
    return summary


def _summarize_scope(
    body: List[ast.stmt],
    module: str,
    path: str,
    imports: Dict[str, str],
    summary: ModuleSummary,
    cls: Optional[ClassSummary],
) -> None:
    for stmt in body:
        if isinstance(stmt, ast.ClassDef):
            class_summary = _summarize_class(stmt, module, path, imports, summary)
            summary.classes[class_summary.qualname] = class_summary
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = _summarize_function(stmt, module, path, imports, cls)
            summary.functions[func.qualname] = func
            if cls is not None:
                cls.methods[func.name] = func.qualname


def _summarize_class(
    node: ast.ClassDef,
    module: str,
    path: str,
    imports: Dict[str, str],
    summary: ModuleSummary,
) -> ClassSummary:
    qualname = f"{module}.{node.name}"
    bases = []
    for base in node.bases:
        name = dotted_name(base)
        if name is None:
            continue
        root, _, rest = name.partition(".")
        resolved = imports.get(root, root)
        bases.append(f"{resolved}.{rest}" if rest else resolved)
    cls = ClassSummary(
        name=node.name,
        qualname=qualname,
        module=module,
        path=path,
        line=node.lineno,
        bases=tuple(bases),
    )
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):  # class-level lock attribute
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    decl = _lock_decl(target.id, stmt.value, stmt.lineno, imports)
                    if decl is not None:
                        cls.locks[target.id] = decl
    _collect_instance_attrs(node, imports, cls)
    _summarize_scope(node.body, module, path, imports, summary, cls=cls)
    # Methods of nested classes are collected by the recursive scope
    # walk; only direct methods land in ``cls.methods``.
    return cls


def _collect_instance_attrs(
    node: ast.ClassDef, imports: Dict[str, str], cls: ClassSummary
) -> None:
    """``self.x = ...`` assignments: lock declarations and typed attrs."""
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params: Dict[str, Optional[ast.AST]] = {}
        for arg in list(method.args.args) + list(method.args.kwonlyargs):
            params[arg.arg] = arg.annotation
        for stmt in ast.walk(method):
            targets: List[Tuple[str, Optional[ast.AST], Optional[ast.AST]]] = []
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        targets.append((attr, stmt.value, None))
            elif isinstance(stmt, ast.AnnAssign):
                attr = _self_attr(stmt.target)
                if attr is not None:
                    targets.append((attr, stmt.value, stmt.annotation))
            for attr, value, annotation in targets:
                decl = _lock_decl(attr, value, stmt.lineno, imports) if value else None
                if decl is not None:
                    cls.locks.setdefault(attr, decl)
                    continue
                typed = _annotation_class(annotation, imports)
                if typed is None and isinstance(value, ast.Name):
                    typed = _annotation_class(params.get(value.id), imports)
                if typed is None and value is not None:
                    typed = _constructed_class(value, imports)
                if typed is not None:
                    cls.attr_types.setdefault(attr, typed)


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _summarize_function(
    node: ast.AST,
    module: str,
    path: str,
    imports: Dict[str, str],
    cls: Optional[ClassSummary],
) -> FunctionSummary:
    qual_prefix = cls.qualname if cls is not None else module
    summary = FunctionSummary(
        name=node.name,
        qualname=f"{qual_prefix}.{node.name}",
        module=module,
        path=path,
        line=node.lineno,
        cls=cls.qualname if cls is not None else None,
        is_async=isinstance(node, ast.AsyncFunctionDef),
    )
    walker = _FunctionWalker(summary, imports)
    walker.walk(node.body)
    return summary


# ---------------------------------------------------------------------------
# the assembled project


class ProjectIndex:
    """Every module summary stitched into one queryable project view."""

    def __init__(self, modules: List[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        self.functions: Dict[str, FunctionSummary] = {}
        self.classes: Dict[str, ClassSummary] = {}
        self.suppressions: Dict[str, Dict[int, FrozenSet[str]]] = {}
        for summary in modules:
            self.modules[summary.module] = summary
            self.functions.update(summary.functions)
            self.classes.update(summary.classes)
            self.suppressions[summary.path] = summary.suppressions
        self._subclasses: Dict[str, List[str]] = {}
        for qualname, cls in self.classes.items():
            for base in cls.bases:
                resolved = self._resolve_classname(base)
                if resolved is not None:
                    self._subclasses.setdefault(resolved, []).append(qualname)

    def _resolve_classname(self, dotted: str) -> Optional[str]:
        if dotted in self.classes:
            return dotted
        return None

    def mro(self, qualname: str) -> Iterator[ClassSummary]:
        """The class and its project-known ancestors, nearest first."""
        seen: Set[str] = set()
        queue = [qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            yield cls
            queue.extend(cls.bases)

    def subclasses(self, qualname: str) -> Iterator[ClassSummary]:
        """Project-known strict subclasses (transitive), deterministic."""
        seen: Set[str] = set()
        queue = sorted(self._subclasses.get(qualname, ()))
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            yield cls
            queue.extend(sorted(self._subclasses.get(current, ())))

    def suppressed(self, path: str, rule: str, line: int) -> bool:
        """Whether ``rule`` is inline-silenced at ``path:line``."""
        from ..source import ALL_RULES

        rules = self.suppressions.get(path, {}).get(line)
        return rules is not None and (rule in rules or ALL_RULES in rules)
