"""Lock registry, interprocedural locksets, and the acquisition-order graph.

Identity
--------
Every ``threading.Lock``/``RLock``/``Condition`` the symbol layer saw
gets one stable id:

* instance attributes are named by their *defining* class —
  ``repro.llm.store.PromptStore._evict_lock`` — so subclasses share
  the id with the base that declared it;
* module globals are ``<module>.<NAME>``;
* ``Condition(self._x)`` aliases the lock it wraps: acquiring the
  condition *is* acquiring ``_x``, so both resolve to ``_x``'s id.

Propagation
-----------
``may_acquire[f]`` is the set of lock ids ``f`` can take — its own
``with`` acquisitions plus, transitively over the call graph, every
callee's — computed to a fixpoint.  Each entry remembers *how* the
lock is reached (the call line and next hop), so a finding can print
the full witness chain instead of a bare pair of lock names.

The order graph then gets an edge ``A -> B`` wherever ``B`` may be
acquired while ``A`` is lexically held — directly (nested ``with``) or
through any resolved call.  A cycle in that graph is a potential
deadlock; the runtime watchdog feeds its dynamically-observed edges
through the same :func:`find_cycles` / :func:`find_cycle_closing`
machinery so the static and instrumented views enforce one invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph
from .symbols import FunctionSummary, ProjectIndex


@dataclass(frozen=True)
class LockInfo:
    """One registered lock: stable id, kind, and declaration site."""

    id: str
    kind: str  # "lock" | "rlock" | "condition"
    path: str
    line: int


@dataclass(frozen=True)
class Witness:
    """How one order edge arises: where, and through which calls."""

    function: str  # qualname holding the outer lock
    path: str
    line: int  # acquisition / call line closing the edge
    chain: Tuple[str, ...]  # human-readable steps to the inner acquisition


class LockModel:
    """Lock registry + may-acquire fixpoint over a project call graph."""

    def __init__(self, index: ProjectIndex, graph: Optional[CallGraph] = None) -> None:
        self.index = index
        self.graph = graph if graph is not None else CallGraph(index)
        self.locks: Dict[str, LockInfo] = {}
        self._aliases: Dict[str, str] = {}  # condition id -> wrapped lock id
        self._register_locks()
        #: func qualname -> lock id -> (line, next hop qualname or None)
        self.may_acquire: Dict[str, Dict[str, Tuple[int, Optional[str]]]] = {}
        self._fixpoint()

    # -- registry ----------------------------------------------------------

    def _register_locks(self) -> None:
        for module in sorted(self.index.modules):
            summary = self.index.modules[module]
            for name, decl in sorted(summary.module_locks.items()):
                lock_id = f"{module}.{name}"
                self.locks[lock_id] = LockInfo(
                    id=lock_id, kind=decl.kind, path=summary.path, line=decl.line
                )
        for qualname in sorted(self.index.classes):
            cls = self.index.classes[qualname]
            for attr, decl in sorted(cls.locks.items()):
                lock_id = f"{qualname}.{attr}"
                self.locks[lock_id] = LockInfo(
                    id=lock_id, kind=decl.kind, path=cls.path, line=decl.line
                )
                if decl.alias_of is not None:
                    aliased = self._attr_lock_id(qualname, decl.alias_of)
                    if aliased is not None:
                        self._aliases[lock_id] = aliased

    def _attr_lock_id(self, cls_qualname: str, attr: str) -> Optional[str]:
        """Lock id for ``self.<attr>`` seen from ``cls_qualname``.

        The id names the *defining* class (walking the MRO), so every
        subclass sharing the attribute resolves to the same lock.
        """
        for cls in self.index.mro(cls_qualname):
            if attr in cls.locks:
                return f"{cls.qualname}.{attr}"
        return None

    def canonical(self, lock_id: str) -> str:
        """Collapse condition-over-lock aliases onto the wrapped lock."""
        seen: Set[str] = set()
        while lock_id in self._aliases and lock_id not in seen:
            seen.add(lock_id)
            lock_id = self._aliases[lock_id]
        return lock_id

    def resolve_ref(self, func: FunctionSummary, ref: str) -> Optional[str]:
        """Canonical lock id for a symbolic ref, or ``None`` if unknown.

        ``self.<attr>`` resolves through the owning class's MRO; a bare
        name resolves against the function's own module's globals; an
        already-qualified ref (``other.module.LOCK``, emitted for
        imported-module attributes) resolves against the registry
        directly.  Anything that is not a registered lock resolves to
        nothing — arbitrary context managers never pollute the order
        graph.
        """
        if ref.startswith("self."):
            if func.cls is None:
                return None
            lock_id = self._attr_lock_id(func.cls, ref[len("self."):])
        else:
            lock_id = f"{func.module}.{ref}"
            if lock_id not in self.locks:
                lock_id = ref if ref in self.locks else None
            if lock_id is None:
                return None
        if lock_id is None:
            return None
        return self.canonical(lock_id)

    def kind(self, lock_id: str) -> Optional[str]:
        info = self.locks.get(lock_id)
        return info.kind if info is not None else None

    # -- may-acquire fixpoint ----------------------------------------------

    def _fixpoint(self) -> None:
        for qualname in self.index.functions:
            self.may_acquire[qualname] = {}
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.index.functions):
                func = self.index.functions[qualname]
                table = self.may_acquire[qualname]
                for acq in func.acquisitions:
                    lock = self.resolve_ref(func, acq.ref)
                    if lock is not None and lock not in table:
                        table[lock] = (acq.line, None)
                        changed = True
                for resolved in self.graph.calls.get(qualname, ()):
                    for target in resolved.targets:
                        for lock in self.may_acquire.get(target, ()):
                            if lock not in table:
                                table[lock] = (resolved.site.line, target)
                                changed = True

    def witness_chain(self, qualname: str, lock: str) -> Tuple[str, ...]:
        """Call-by-call steps from ``qualname`` to acquiring ``lock``."""
        steps: List[str] = []
        seen: Set[str] = set()
        current: Optional[str] = qualname
        while current is not None and current not in seen:
            seen.add(current)
            entry = self.may_acquire.get(current, {}).get(lock)
            if entry is None:
                break
            line, callee = entry
            func = self.index.functions[current]
            if callee is None:
                steps.append(f"{current} acquires {lock} ({func.path}:{line})")
                break
            steps.append(f"{current} calls {callee} ({func.path}:{line})")
            current = callee
        return tuple(steps)

    # -- the order graph ----------------------------------------------------

    def build_order_graph(self) -> "LockOrderGraph":
        """Every acquired-while-holding edge the project can exhibit."""
        graph = LockOrderGraph()
        for qualname in sorted(self.index.functions):
            func = self.index.functions[qualname]
            for acq in func.acquisitions:
                if not acq.held:
                    continue
                inner = self.resolve_ref(func, acq.ref)
                if inner is None:
                    continue
                chain = (f"{qualname} acquires {inner} ({func.path}:{acq.line})",)
                for held_ref in acq.held:
                    outer = self.resolve_ref(func, held_ref)
                    if outer is None:
                        continue
                    if outer == inner and self.kind(inner) != "lock":
                        continue  # re-entrant: nested with is legal
                    graph.add(
                        outer,
                        inner,
                        Witness(
                            function=qualname,
                            path=func.path,
                            line=acq.line,
                            chain=chain,
                        ),
                    )
            for resolved in self.graph.calls.get(qualname, ()):
                site = resolved.site
                if not site.held:
                    continue
                outers = [self.resolve_ref(func, ref) for ref in site.held]
                for target in sorted(resolved.targets):
                    for inner in sorted(self.may_acquire.get(target, ())):
                        prefix = f"{qualname} calls {target} ({func.path}:{site.line})"
                        chain = (prefix,) + self.witness_chain(target, inner)
                        for outer in outers:
                            if outer is None:
                                continue
                            if outer == inner and self.kind(inner) != "lock":
                                continue
                            graph.add(
                                outer,
                                inner,
                                Witness(
                                    function=qualname,
                                    path=func.path,
                                    line=site.line,
                                    chain=chain,
                                ),
                            )
        return graph


class LockOrderGraph:
    """Directed acquired-while-holding graph with per-edge witnesses."""

    def __init__(self) -> None:
        self.edges: Dict[Tuple[str, str], List[Witness]] = {}

    def add(self, outer: str, inner: str, witness: Witness) -> None:
        witnesses = self.edges.setdefault((outer, inner), [])
        if witness not in witnesses:
            witnesses.append(witness)

    def witnesses(self, outer: str, inner: str) -> List[Witness]:
        return self.edges.get((outer, inner), [])

    def cycles(self) -> List[Tuple[str, ...]]:
        """Every simple cycle, canonically rotated, deterministic."""
        return find_cycles(self.edges.keys())


# ---------------------------------------------------------------------------
# cycle machinery (shared with the runtime watchdog)


def find_cycles(edges: Iterable[Tuple[str, str]]) -> List[Tuple[str, ...]]:
    """All simple cycles in a directed graph of lock ids.

    Each cycle is returned once, rotated to start at its smallest node
    (so ``A->B->A`` and ``B->A->B`` are the same cycle ``(A, B)``).
    Self-edges come back as one-element cycles — callers decide
    whether those matter (they do for non-reentrant locks only).
    """
    adjacency: Dict[str, Set[str]] = {}
    for outer, inner in edges:
        adjacency.setdefault(outer, set()).add(inner)
    cycles: Set[Tuple[str, ...]] = set()
    for start in sorted(adjacency):
        # Only walk nodes >= start: every cycle is found exactly once,
        # rooted at its smallest member.
        stack: List[Tuple[str, Tuple[str, ...]]] = [(start, (start,))]
        while stack:
            node, path = stack.pop()
            for succ in sorted(adjacency.get(node, ()), reverse=True):
                if succ == start:
                    cycles.add(path)
                elif succ > start and succ not in path:
                    stack.append((succ, path + (succ,)))
    return sorted(cycles, key=lambda cycle: (len(cycle), cycle))


def find_cycle_closing(
    edges: Iterable[Tuple[str, str]], outer: str, inner: str
) -> Optional[Tuple[str, ...]]:
    """Path ``inner -> ... -> outer`` that a new edge would close.

    Used before recording ``outer -> inner``: if ``inner`` already
    reaches ``outer`` through existing edges, the new edge completes a
    cycle and the shortest witness path is returned (``None`` when the
    edge is safe).  ``outer == inner`` is the degenerate self-cycle.
    """
    if outer == inner:
        return (outer,)
    adjacency: Dict[str, Set[str]] = {}
    for a, b in edges:
        adjacency.setdefault(a, set()).add(b)
    parents: Dict[str, Optional[str]] = {inner: None}
    queue: List[str] = [inner]
    while queue:
        node = queue.pop(0)
        if node == outer:
            path: List[str] = []
            current: Optional[str] = node
            while current is not None:
                path.append(current)
                current = parents[current]
            return tuple(reversed(path))
        for succ in sorted(adjacency.get(node, ())):
            if succ not in parents:
                parents[succ] = node
                queue.append(succ)
    return None


def describe_cycle(
    cycle: Sequence[str], graph: LockOrderGraph
) -> List[Tuple[str, str, Witness]]:
    """One ``(outer, inner, witness)`` per edge of a cycle, in order."""
    described: List[Tuple[str, str, Witness]] = []
    for position, outer in enumerate(cycle):
        inner = cycle[(position + 1) % len(cycle)]
        witnesses = graph.witnesses(outer, inner)
        if witnesses:
            described.append((outer, inner, witnesses[0]))
    return described
