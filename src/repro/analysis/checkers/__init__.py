"""Built-in checkers; importing this package registers them all."""

from __future__ import annotations

from . import (  # noqa: F401  (import-for-registration)
    async_hygiene,
    determinism,
    error_taxonomy,
    held_call,
    leaked_resource,
    lock_discipline,
    lock_order,
    network_isolation,
    swallowed_error,
)
