"""Built-in checkers; importing this package registers them all."""

from __future__ import annotations

from . import (  # noqa: F401  (import-for-registration)
    acquire_release,
    async_hygiene,
    determinism,
    error_taxonomy,
    lock_discipline,
    network_isolation,
    swallowed_error,
)
