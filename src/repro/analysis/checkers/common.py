"""Shared AST plumbing for the built-in checkers.

Import-alias resolution (``build_import_map`` / ``resolve_call_target``
/ ``dotted_name``) lives in :mod:`repro.analysis.source` since the
whole-program layer landed — prefer ``source.import_map`` over
rebuilding the map per checker; the re-exports below keep old call
sites working.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..source import (  # noqa: F401  (re-exported shared infrastructure)
    build_import_map,
    dotted_name,
    resolve_call_target,
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def iter_functions(tree: ast.Module) -> Iterator[FunctionNode]:
    """Every function and method in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def self_attribute_root(node: ast.AST) -> Optional[str]:
    """For an attribute chain rooted at ``self``, the first attribute.

    ``self.stats.hits`` -> ``stats``; ``self.calls`` -> ``calls``;
    anything not rooted at ``self`` -> ``None``.
    """
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and chain:
        return chain[-1]
    return None


def is_lock_factory(value: ast.AST, imports: Dict[str, str]) -> bool:
    """Whether ``value`` constructs a mutual-exclusion lock."""
    if not isinstance(value, ast.Call):
        return False
    target = resolve_call_target(value, imports)
    return target in ("threading.Lock", "threading.RLock", "Lock", "RLock")


def statements_after(
    func: FunctionNode, stmt: ast.stmt
) -> List[ast.stmt]:
    """Statements of ``func`` that execute after ``stmt`` finishes.

    Approximated lexically: every statement node in the function whose
    first line is beyond ``stmt``'s last.  Good enough to decide "is
    there any code left that could raise".
    """
    boundary = getattr(stmt, "end_lineno", stmt.lineno)
    following: List[ast.stmt] = []
    for node in ast.walk(func):
        if isinstance(node, ast.stmt) and node is not stmt:
            if node.lineno > boundary:
                following.append(node)
    return following


def is_trivial_tail(stmt: ast.stmt) -> bool:
    """A statement that cannot raise between a reserve and its use."""
    if isinstance(stmt, ast.Pass):
        return True
    if isinstance(stmt, ast.Return):
        return stmt.value is None or isinstance(
            stmt.value, (ast.Name, ast.Constant)
        )
    return False


def find_enclosing_statement(
    func: FunctionNode, target: ast.AST
) -> Optional[ast.stmt]:
    """The outermost statement of ``func``'s body containing ``target``."""

    def contains(node: ast.AST) -> bool:
        return any(child is target for child in ast.walk(node))

    stack: List[Tuple[ast.stmt, ...]] = [tuple(func.body)]
    while stack:
        for stmt in stack.pop():
            if contains(stmt):
                return stmt
    return None
