"""Shared AST plumbing for the built-in checkers."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def build_import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted module/object it binds.

    ``import random as rnd`` maps ``rnd -> random``; ``from urllib
    import request`` maps ``request -> urllib.request``; ``from random
    import sample as s`` maps ``s -> random.sample``.  Only module-level
    (and class/function-nested) imports are walked — good enough for
    resolving stdlib call sites.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                imports[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def resolve_call_target(
    call: ast.Call, imports: Dict[str, str]
) -> Optional[str]:
    """Canonical dotted name a call resolves to, through import aliases.

    ``rnd.sample(...)`` with ``import random as rnd`` resolves to
    ``random.sample``; ``s(...)`` with ``from random import sample as
    s`` resolves to ``random.sample``.  Attribute chains rooted at
    non-import names (``self.generate``) resolve with their literal
    root (``self.generate``).
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    root, _, rest = name.partition(".")
    resolved_root = imports.get(root, root)
    return f"{resolved_root}.{rest}" if rest else resolved_root


def iter_functions(tree: ast.Module) -> Iterator[FunctionNode]:
    """Every function and method in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def self_attribute_root(node: ast.AST) -> Optional[str]:
    """For an attribute chain rooted at ``self``, the first attribute.

    ``self.stats.hits`` -> ``stats``; ``self.calls`` -> ``calls``;
    anything not rooted at ``self`` -> ``None``.
    """
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and chain:
        return chain[-1]
    return None


def is_lock_factory(value: ast.AST, imports: Dict[str, str]) -> bool:
    """Whether ``value`` constructs a mutual-exclusion lock."""
    if not isinstance(value, ast.Call):
        return False
    target = resolve_call_target(value, imports)
    return target in ("threading.Lock", "threading.RLock", "Lock", "RLock")


def statements_after(
    func: FunctionNode, stmt: ast.stmt
) -> List[ast.stmt]:
    """Statements of ``func`` that execute after ``stmt`` finishes.

    Approximated lexically: every statement node in the function whose
    first line is beyond ``stmt``'s last.  Good enough to decide "is
    there any code left that could raise".
    """
    boundary = getattr(stmt, "end_lineno", stmt.lineno)
    following: List[ast.stmt] = []
    for node in ast.walk(func):
        if isinstance(node, ast.stmt) and node is not stmt:
            if node.lineno > boundary:
                following.append(node)
    return following


def is_trivial_tail(stmt: ast.stmt) -> bool:
    """A statement that cannot raise between a reserve and its use."""
    if isinstance(stmt, ast.Pass):
        return True
    if isinstance(stmt, ast.Return):
        return stmt.value is None or isinstance(
            stmt.value, (ast.Name, ast.Constant)
        )
    return False


def find_enclosing_statement(
    func: FunctionNode, target: ast.AST
) -> Optional[ast.stmt]:
    """The outermost statement of ``func``'s body containing ``target``."""

    def contains(node: ast.AST) -> bool:
        return any(child is target for child in ast.walk(node))

    stack: List[Tuple[ast.stmt, ...]] = [tuple(func.body)]
    while stack:
        for stmt in stack.pop():
            if contains(stmt):
                return stmt
    return None
