"""``held-call``: no known-blocking call while a lock is held.

Holding a lock across a blocking operation turns a mutual-exclusion
region into a serialization point: every other thread needing that
lock stalls for the full duration of a sleep, a synchronous HTTP
round-trip, or a model generation.  The project's hot paths were all
*designed* around this — ``TokenBucket`` computes its wait under the
lock but sleeps outside it, ``CoalescingBackend._flush`` snapshots the
window under ``_window_lock`` and runs the inner backend after
releasing — and this rule keeps that shape from regressing.

Blocking is what the symbol layer classified: ``time.sleep``,
synchronous network modules (``urllib.request``/``http.client``/
``socket``), ``.generate``/``.generate_batch``/``.run`` dispatches,
and ``.wait()`` on anything *other* than the held lock
(``Condition.wait`` on the lock it wraps releases it while parked —
that one shape is the sanctioned exception and is not flagged).

Scoped to library code: test fakes (``LatencyLLM`` and friends) sleep
under their locks deliberately to simulate slow providers.
"""

from __future__ import annotations

from typing import Iterable

from ..graph import LockModel
from ..model import Finding, ProjectChecker, register


def _in_library(path: str) -> bool:
    return path.startswith("src/repro/") or path.startswith("repro/")


def _waits_on_held_condition(model, func, site, held) -> bool:
    """``cond.wait()`` where ``cond`` wraps a held lock is sanctioned.

    ``Condition(self._lock)`` aliases the lock it wraps, so waiting on
    the condition while holding that lock *releases* it while parked —
    the one legal blocking-while-holding shape.  The symbol layer's
    syntactic carve-out only sees ``wait`` on the held name itself;
    this is the alias-aware, whole-program version.
    """
    if site.target.rsplit(".", 1)[-1] != "wait":
        return False
    if site.form == "self_attr":
        ref = f"self.{site.attr}"
    elif site.form == "dotted" and site.target.count(".") == 1:
        ref = site.target.split(".", 1)[0]
    else:
        return False
    lock = model.resolve_ref(func, ref)
    return lock is not None and lock in held


@register
class HeldCallChecker(ProjectChecker):
    rule = "held-call"
    description = (
        "blocking call (sleep / sync I/O / generate / backend run) "
        "while holding a lock serializes every peer thread"
    )

    def check_project(self, index) -> Iterable[Finding]:
        model = LockModel(index)
        for qualname in sorted(index.functions):
            func = index.functions[qualname]
            if not _in_library(func.path):
                continue
            for site in func.calls:
                if site.blocking is None or not site.held:
                    continue
                held = sorted(
                    lock
                    for lock in (
                        model.resolve_ref(func, ref) for ref in site.held
                    )
                    if lock is not None
                )
                if not held:
                    continue
                if _waits_on_held_condition(model, func, site, held):
                    continue
                yield Finding(
                    path=func.path,
                    line=site.line,
                    rule=self.rule,
                    message=(
                        f"{site.blocking} while holding "
                        f"{', '.join(held)} — every thread contending on "
                        "the lock stalls for the call's full duration; "
                        "move the blocking work outside the `with` block"
                    ),
                )
