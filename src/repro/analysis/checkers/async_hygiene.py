"""``async-hygiene``: no blocking primitives inside ``async def``.

An event loop multiplexes every in-flight request through one thread;
a single blocking call inside a coroutine stalls *all* of them.  The
asyncio backend (PR 3) and the async transport (PR 4) were designed
around this — blocking work is either awaited natively or shipped to a
worker thread via ``asyncio.to_thread``.

Flagged inside ``async def`` bodies in library code:

* ``time.sleep(...)`` — use ``await asyncio.sleep(...)``;
* synchronous HTTP/sockets (``urllib.request.*``, ``http.client.*``,
  ``socket.*``) — use the transport's ``arequest``;
* blocking ``.acquire()`` on a lock without ``await`` — hold
  ``threading`` locks only via short ``with`` blocks, or use asyncio
  primitives;
* bare ``.generate(...)`` / ``.generate_batch(...)`` model calls —
  await ``agenerate``/``abatched_generate`` or wrap in ``to_thread``
  (passing the *method reference* to ``to_thread`` is fine and not
  flagged).

Nested synchronous ``def`` bodies are skipped: they may legitimately
run on a worker thread.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional

from ..model import Checker, Finding, register
from ..source import SourceFile, resolve_call_target

#: Exact call targets that block the loop.
_BLOCKING_CALLS = frozenset({"time.sleep"})

#: Dotted prefixes whose calls mean synchronous network I/O.
_BLOCKING_PREFIXES = ("urllib.request.", "http.client.", "socket.")

#: Model entry points with async twins.
_SYNC_MODEL_CALLS = frozenset({"generate", "generate_batch"})


@register
class AsyncHygieneChecker(Checker):
    rule = "async-hygiene"
    description = (
        "blocking call (time.sleep / sync HTTP / Lock.acquire / bare "
        "generate) inside `async def` stalls the whole event loop"
    )

    def applies(self, source: SourceFile) -> bool:
        return source.in_library

    def check(self, source: SourceFile) -> Iterable[Finding]:
        imports = source.import_map
        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._walk_async_body(source, node, imports)

    def _walk_async_body(
        self,
        source: SourceFile,
        node: ast.AST,
        imports: Dict[str, str],
        awaited: bool = False,
    ) -> Iterable[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.FunctionDef):
                continue  # sync closure: may run on a worker thread
            if isinstance(child, ast.Call) and not awaited:
                message = self._blocking_message(child, imports)
                if message is not None:
                    yield self.finding(source, child.lineno, message)
            yield from self._walk_async_body(
                source, child, imports, awaited=isinstance(child, ast.Await)
            )

    def _blocking_message(
        self, call: ast.Call, imports: Dict[str, str]
    ) -> Optional[str]:
        target = resolve_call_target(call, imports)
        if target is not None:
            if target in _BLOCKING_CALLS:
                return (
                    f"`{target}(...)` blocks the event loop — use "
                    "`await asyncio.sleep(...)`"
                )
            for prefix in _BLOCKING_PREFIXES:
                if target.startswith(prefix):
                    return (
                        f"synchronous network call `{target}(...)` inside "
                        "`async def` — use the async transport "
                        "(`arequest`) or `asyncio.to_thread`"
                    )
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr == "acquire" and not _nonblocking_acquire(call):
                return (
                    "blocking `.acquire()` inside `async def` parks the "
                    "loop — await an asyncio primitive or keep the lock "
                    "to a short `with` block"
                )
            if func.attr in _SYNC_MODEL_CALLS:
                return (
                    f"bare `.{func.attr}(...)` inside `async def` — await "
                    "`agenerate`/`abatched_generate`, or ship the sync "
                    "call through `asyncio.to_thread`"
                )
        return None


def _nonblocking_acquire(call: ast.Call) -> bool:
    """``lock.acquire(blocking=False)`` (or ``acquire(False)``) is fine."""
    if call.args and isinstance(call.args[0], ast.Constant):
        return call.args[0].value is False
    for keyword in call.keywords:
        if keyword.arg == "blocking" and isinstance(keyword.value, ast.Constant):
            return keyword.value.value is False
    return False
