"""``test-network-isolation``: suites never import socket machinery.

The test and benchmark suites are hermetic: every HTTP exchange lands
on the in-process fake server over loopback, enforced at runtime by
the socket guard in ``tests/fakes/network_guard.py``.  This checker is
the same policy at lint time — a test that *imports*
``socket``/``urllib.request``/``http.client`` is reaching for a real
network even if CI never executes that path.

Both layers consume the one allowlist in
:mod:`repro.analysis.netpolicy`: network modules are importable only
under ``tests/fakes/`` (the fake server, the JSON client, the loopback
helpers).  Need a raw port or a stalled listener in a test?  Add a
helper to the fakes package instead of importing ``socket`` locally.
"""

from __future__ import annotations

from typing import Iterable

from .. import netpolicy
from ..model import Checker, Finding, register
from ..source import SourceFile, iter_imported_modules


@register
class NetworkIsolationChecker(Checker):
    rule = "test-network-isolation"
    description = (
        "tests/benchmarks outside tests/fakes/ must not import socket/"
        "HTTP modules — all suite traffic goes through the fakes"
    )

    def applies(self, source: SourceFile) -> bool:
        return source.in_tests and not netpolicy.path_is_exempt(source.rel)

    def check(self, source: SourceFile) -> Iterable[Finding]:
        seen = set()  # one finding per line: `from http.client import X`
        for line, module in iter_imported_modules(source.tree):  # matches twice
            if netpolicy.module_is_network(module) and line not in seen:
                seen.add(line)
                yield self.finding(
                    source,
                    line,
                    f"import of network module `{module}` outside "
                    "tests/fakes/ — route through the fakes package "
                    "(FakeLLMServer, http_json, loopback helpers)",
                )
