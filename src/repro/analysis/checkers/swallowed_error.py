"""``swallowed-error``: broad handlers must not discard the failure.

``except Exception:`` (or ``except BaseException:``) in library code is
sometimes the right tool — a server handler turning any crash into a
500 body, a cache treating corruption as a miss.  What is never right
is a broad handler that *swallows* the error: no re-raise, no
``repro.errors`` translation, and no record of what happened.  Such a
handler converts every future bug in its body's reach into silent
wrong behavior.

The rule: a broad ``except`` clause in library code is a finding
unless its body does at least one of:

* **re-raise** — any ``raise`` statement (bare, the bound name, or a
  translated exception);
* **reference the bound name** — ``except Exception as error:`` where
  ``error`` is read (formatted into a response, attached to a result,
  passed to a callback);
* **record** — call something whose name says so (``log``, ``warn``,
  ``record``, ``journal``, ``append``, ``put``, ...) or mutate a
  stats-like attribute (``+=`` on ``.stats``/``errors``/counters).

A deliberate discard that satisfies none of these can carry the usual
``# repro: disable=swallowed-error`` suppression with a comment saying
why — the point is that silence must be *visible* in review.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..model import Checker, Finding, register
from ..source import SourceFile

#: Handler types broad enough to catch programming errors.
_BROAD = frozenset({"Exception", "BaseException"})

#: Call-name fragments that count as recording the error somewhere an
#: operator (or a counter) can see it.
_RECORDING_FRAGMENTS = (
    "log",
    "warn",
    "record",
    "journal",
    "append",
    "put",
    "emit",
    "report",
    "print",
)


def _handler_types(handler: ast.ExceptHandler) -> Iterable[str]:
    node = handler.type
    if node is None:
        return
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    for elt in elts:
        if isinstance(elt, ast.Name):
            yield elt.id
        elif isinstance(elt, ast.Attribute):
            yield elt.attr


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _body_handles_error(handler: ast.ExceptHandler) -> bool:
    bound = handler.name  # ``except Exception as error`` binds a name
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if bound and isinstance(node, ast.Name) and node.id == bound:
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node).lower()
            if any(fragment in name for fragment in _RECORDING_FRAGMENTS):
                return True
        if isinstance(node, ast.AugAssign):
            # ``self.stats.errors += 1`` and friends: a counter mutation
            # is a record an operator can scrape.
            return True
    return False


@register
class SwallowedErrorChecker(Checker):
    rule = "swallowed-error"
    description = (
        "broad `except Exception:` handlers must re-raise, translate to "
        "a repro.errors type, or record the failure — never discard it"
    )

    def applies(self, source: SourceFile) -> bool:
        return source.in_library

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = [t for t in _handler_types(node) if t in _BROAD]
            if not broad:
                continue
            if _body_handles_error(node):
                continue
            yield self.finding(
                source,
                node.lineno,
                f"`except {broad[0]}` swallows the error — re-raise, "
                "raise a `repro.errors` type, or record it "
                "(log/journal/counter)",
            )
