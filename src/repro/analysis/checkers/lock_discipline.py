"""``lock-discipline``: counter mutations need the instance lock.

The exact bug class PR 5 fixed three times over: a class creates
``self._lock = threading.Lock()`` (or ``_stats_lock``, ``_evict_lock``,
...) because it is shared across request threads — and then some method
bumps ``self.stats.hits += 1`` bare.  Augmented assignment is a
read-modify-write; outside the lock it loses increments under
concurrency.

The rule: in any class that *owns* a lock attribute, every augmented
assignment whose target is rooted at ``self`` must be lexically inside
``with self.<that lock>:`` (any of the class's locks).  ``__init__``
(and the other construction dunders) are exempt — the instance is not
shared yet.  Helpers documented as caller-holds-lock take an inline
``# repro: disable=lock-discipline`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..model import Checker, Finding, register
from ..source import SourceFile
from .common import (
    build_import_map,
    dotted_name,
    is_lock_factory,
    self_attribute_root,
)

#: Methods that run before the instance can be shared across threads.
_CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__new__", "__post_init__", "__init_subclass__"}
)


def _class_lock_attrs(cls: ast.ClassDef, imports) -> Set[str]:
    """Attribute names the class binds to a freshly-built lock."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and is_lock_factory(node.value, imports):
            for target in node.targets:
                attr = self_attribute_root(target)
                if attr is not None and isinstance(target, ast.Attribute):
                    locks.add(target.attr)
                elif isinstance(target, ast.Name):
                    locks.add(target.id)  # class-level lock attribute
    return locks


def _with_holds_lock(node: ast.AST, locks: Set[str]) -> bool:
    """Whether a With/AsyncWith acquires one of the class's locks."""
    for item in getattr(node, "items", ()):
        name = dotted_name(item.context_expr)
        if name is None:
            continue
        parts = name.split(".")
        if len(parts) >= 2 and parts[0] == "self" and parts[1] in locks:
            return True
        if len(parts) == 1 and parts[0] in locks:
            return True
    return False


@register
class LockDisciplineChecker(Checker):
    rule = "lock-discipline"
    description = (
        "augmented assignment to self.* in a lock-owning class must sit "
        "inside `with <lock>:` (lost-increment bug class from PR 5)"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        imports = build_import_map(source.tree)
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                locks = _class_lock_attrs(node, imports)
                if locks:
                    findings.extend(self._check_class(source, node, locks))
        return findings

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef, locks: Set[str]
    ) -> Iterable[Finding]:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _CONSTRUCTION_METHODS:
                continue
            yield from self._walk(source, method, locks, held=False)

    def _walk(
        self, source: SourceFile, node: ast.AST, locks: Set[str], held: bool
    ) -> Iterable[Finding]:
        for child in ast.iter_child_nodes(node):
            child_held = held
            if isinstance(child, (ast.With, ast.AsyncWith)):
                child_held = held or _with_holds_lock(child, locks)
            if isinstance(child, ast.AugAssign) and not child_held:
                attr = self_attribute_root(child.target)
                if attr is not None:
                    target = dotted_name(child.target) or f"self.{attr}"
                    shown = sorted(locks)[0]
                    yield self.finding(
                        source,
                        child.lineno,
                        f"`{target} {_op(child)}= ...` outside `with "
                        f"self.{shown}:` in a lock-owning class — "
                        "read-modify-write races lose updates",
                    )
            yield from self._walk(source, child, locks, child_held)


def _op(node: ast.AugAssign) -> str:
    return {
        ast.Add: "+",
        ast.Sub: "-",
        ast.Mult: "*",
        ast.Div: "/",
        ast.FloorDiv: "//",
        ast.Mod: "%",
        ast.Pow: "**",
        ast.BitOr: "|",
        ast.BitAnd: "&",
        ast.BitXor: "^",
        ast.LShift: "<<",
        ast.RShift: ">>",
        ast.MatMult: "@",
    }.get(type(node.op), "?")
