"""``lock-discipline``: counter mutations need the instance lock.

The exact bug class PR 5 fixed three times over: a class creates
``self._lock = threading.Lock()`` (or ``_stats_lock``, ``_evict_lock``,
...) because it is shared across request threads — and then some method
bumps ``self.stats.hits += 1`` bare.  Augmented assignment is a
read-modify-write; outside the lock it loses increments under
concurrency.

The rule: in any class that *owns* a lock attribute, every augmented
assignment whose target is rooted at ``self`` must be lexically inside
``with self.<that lock>:`` (any of the class's locks).  ``__init__``
(and the other construction dunders) are exempt — the instance is not
shared yet.  Helpers documented as caller-holds-lock take an inline
``# repro: disable=lock-discipline`` with a justification.

PR 8 widened the bug class from counters to *containers*: the
single-flight registry (``self._flights[key] = latch`` /
``del self._flights[key]``) and the micro-batch window table are
exactly the shape of shared state that loses entries when mutated
bare.  So the rule also flags, outside the lock:

* subscript stores — ``self._registry[key] = value``
* subscript deletes — ``del self._registry[key]``
* mutating container calls — ``self._registry.pop(...)``,
  ``.setdefault``, ``.append``, ``.clear``, ``.update``, ... (see
  ``_MUTATORS``)

Reads stay unflagged: a racy read is a judgement call, a racy
read-modify-write is a bug.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..model import Checker, Finding, register
from ..source import SourceFile
from .common import (
    dotted_name,
    is_lock_factory,
    self_attribute_root,
)

#: Methods that run before the instance can be shared across threads.
_CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__new__", "__post_init__", "__init_subclass__"}
)

#: Method names that mutate the builtin containers in place.  Calling
#: one on shared ``self.*`` state outside the lock corrupts the
#: structure (dict/deque) or silently drops entries (set/list).
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)


def _class_lock_attrs(cls: ast.ClassDef, imports) -> Set[str]:
    """Attribute names the class binds to a freshly-built lock."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and is_lock_factory(node.value, imports):
            for target in node.targets:
                attr = self_attribute_root(target)
                if attr is not None and isinstance(target, ast.Attribute):
                    locks.add(target.attr)
                elif isinstance(target, ast.Name):
                    locks.add(target.id)  # class-level lock attribute
    return locks


def _with_holds_lock(node: ast.AST, locks: Set[str]) -> bool:
    """Whether a With/AsyncWith acquires one of the class's locks."""
    for item in getattr(node, "items", ()):
        name = dotted_name(item.context_expr)
        if name is None:
            continue
        parts = name.split(".")
        if len(parts) >= 2 and parts[0] == "self" and parts[1] in locks:
            return True
        if len(parts) == 1 and parts[0] in locks:
            return True
    return False


@register
class LockDisciplineChecker(Checker):
    rule = "lock-discipline"
    description = (
        "augmented assignment to and container mutation of self.* in a "
        "lock-owning class must sit inside `with <lock>:` (lost-update "
        "bug class from PR 5, widened to registries in PR 8)"
    )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        imports = source.import_map
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                locks = _class_lock_attrs(node, imports)
                if locks:
                    findings.extend(self._check_class(source, node, locks))
        return findings

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef, locks: Set[str]
    ) -> Iterable[Finding]:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _CONSTRUCTION_METHODS:
                continue
            yield from self._walk(source, method, locks, held=False)

    def _walk(
        self, source: SourceFile, node: ast.AST, locks: Set[str], held: bool
    ) -> Iterable[Finding]:
        for child in ast.iter_child_nodes(node):
            child_held = held
            if isinstance(child, (ast.With, ast.AsyncWith)):
                child_held = held or _with_holds_lock(child, locks)
            if not child_held:
                yield from self._check_statement(source, child, locks)
            yield from self._walk(source, child, locks, child_held)

    def _check_statement(
        self, source: SourceFile, child: ast.AST, locks: Set[str]
    ) -> Iterable[Finding]:
        shown = sorted(locks)[0]
        if isinstance(child, ast.AugAssign):
            attr = self_attribute_root(_subscript_value(child.target))
            if attr is not None:
                target = dotted_name(child.target) or f"self.{attr}"
                yield self.finding(
                    source,
                    child.lineno,
                    f"`{target} {_op(child)}= ...` outside `with "
                    f"self.{shown}:` in a lock-owning class — "
                    "read-modify-write races lose updates",
                )
        elif isinstance(child, ast.Assign):
            for target in _flat_targets(child.targets):
                if not isinstance(target, ast.Subscript):
                    continue
                attr = self_attribute_root(target.value)
                if attr is not None:
                    yield self.finding(
                        source,
                        child.lineno,
                        f"`self.{attr}[...] = ...` outside `with "
                        f"self.{shown}:` in a lock-owning class — "
                        "racing stores corrupt the shared container",
                    )
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                if not isinstance(target, ast.Subscript):
                    continue
                attr = self_attribute_root(target.value)
                if attr is not None:
                    yield self.finding(
                        source,
                        child.lineno,
                        f"`del self.{attr}[...]` outside `with "
                        f"self.{shown}:` in a lock-owning class — "
                        "a racing delete raises or drops a live entry",
                    )
        elif isinstance(child, ast.Call):
            func = child.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Attribute)
            ):
                attr = self_attribute_root(func.value)
                if attr is not None:
                    yield self.finding(
                        source,
                        child.lineno,
                        f"`self.{attr}.{func.attr}(...)` outside `with "
                        f"self.{shown}:` in a lock-owning class — "
                        "in-place container mutation is not atomic",
                    )


def _flat_targets(targets: Iterable[ast.AST]) -> Iterable[ast.AST]:
    """Assignment targets with tuple/list unpacking flattened out."""
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            yield from _flat_targets(target.elts)
        else:
            yield target


def _subscript_value(node: ast.AST) -> ast.AST:
    """``self._counts[k] += 1`` mutates ``self._counts``: unwrap it."""
    return node.value if isinstance(node, ast.Subscript) else node


def _op(node: ast.AugAssign) -> str:
    return {
        ast.Add: "+",
        ast.Sub: "-",
        ast.Mult: "*",
        ast.Div: "/",
        ast.FloorDiv: "//",
        ast.Mod: "%",
        ast.Pow: "**",
        ast.BitOr: "|",
        ast.BitAnd: "&",
        ast.BitXor: "^",
        ast.LShift: "<<",
        ast.RShift: ">>",
        ast.MatMult: "@",
    }.get(type(node.op), "?")
