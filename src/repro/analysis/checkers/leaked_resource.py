"""``leaked-resource``: claims must reach a release on exception paths.

The interprocedural successor to the old syntactic ``acquire-release``
rule.  Two project-bitten claim kinds:

* ``TokenBucket.reserve()`` claims a rate-limiter slot.  If anything
  after the claim raises, the slot must be refunded with ``cancel()``
  — the PR 5 reservation-leak bug let N abandoned waiters starve the
  N+1th arrival forever.
* ``open()`` / ``fdopen()`` outside a ``with`` leaks the descriptor on
  any exception before ``close()``.

What "reaches a release" means here is whole-program: the release may
live in a *callee*.  A function is safe for a claim kind when either

* it calls ``cancel()``/``close()`` itself from an ``except`` handler
  or ``finally`` block, or
* a cleanup-path call site dispatches (through the resolved call
  graph, transitively) to a function that performs the release —
  ``try: ... finally: self._finish()`` where ``_finish`` cancels is no
  longer a false positive.

A claim-and-return tail (nothing after the claim can raise) is exempt,
as before.  A claim whose release is only on the *straight-line* path
— ``f = open(...); work(); f.close()`` — is still a true positive: an
exception in ``work()`` never reaches the close.

Scoped to library code: tests deliberately poke ``reserve()`` bare to
measure refill behavior.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from ..graph import CallGraph
from ..model import Finding, ProjectChecker, register

#: Claim kind -> the release call that squares it.
_RELEASE_FOR = {"reserve": "cancel", "open": "close", "fdopen": "close"}

_RELEASE_LEAVES = frozenset(_RELEASE_FOR.values())


def _in_library(path: str) -> bool:
    return path.startswith("src/repro/") or path.startswith("repro/")


def _releases_anywhere(index, graph: CallGraph) -> Dict[str, Set[str]]:
    """Release leaves each function may perform, transitively."""
    anywhere: Dict[str, Set[str]] = {q: set() for q in index.functions}
    changed = True
    while changed:
        changed = False
        for qualname in sorted(index.functions):
            func = index.functions[qualname]
            table = anywhere[qualname]
            before = len(table)
            for site in func.calls:
                leaf = site.target.rsplit(".", 1)[-1]
                if leaf in _RELEASE_LEAVES:
                    table.add(leaf)
            for resolved in graph.calls.get(qualname, ()):
                for target in resolved.targets:
                    table |= anywhere.get(target, set())
            if len(table) != before:
                changed = True
    return anywhere


@register
class LeakedResourceChecker(ProjectChecker):
    rule = "leaked-resource"
    description = (
        "reserve()/open() with no cancel()/close() reachable on an "
        "exception path — releases in callees count (interprocedural)"
    )

    def check_project(self, index) -> Iterable[Finding]:
        graph = CallGraph(index)
        anywhere = _releases_anywhere(index, graph)
        for qualname in sorted(index.functions):
            func = index.functions[qualname]
            if not func.claims or not _in_library(func.path):
                continue
            protected: Set[str] = set(func.cleanup_releases)
            for resolved in graph.calls.get(qualname, ()):
                if not resolved.site.in_cleanup:
                    continue
                for target in resolved.targets:
                    protected |= anywhere.get(target, set())
            for claim in func.claims:
                if claim.kind == "reserve" and claim.tail_trivial:
                    # Claim-and-return: nothing after the reserve can
                    # raise.  Opens get no such pass — handing an
                    # unmanaged handle to the caller is exactly the
                    # shape that leaks, and deserves at least an
                    # explicit suppression.
                    continue
                release = _RELEASE_FOR.get(claim.kind)
                if release is None or release in protected:
                    continue
                if claim.kind == "reserve":
                    message = (
                        f"`{func.name}` reserves a slot but no `cancel()` "
                        "is reachable on an exception path (here or in a "
                        "cleanup-path callee) — an interrupted caller "
                        "leaks the reservation and starves later arrivals"
                    )
                else:
                    message = (
                        f"`{claim.kind}(...)` outside a `with` and with no "
                        "`close()` reachable on a cleanup path leaks the "
                        "file descriptor on any exception before close()"
                    )
                yield Finding(
                    path=func.path,
                    line=claim.line,
                    rule=self.rule,
                    message=message,
                )
