"""``error-taxonomy``: library failures derive from ``repro.errors``.

The package promises "catch :class:`~repro.errors.RageError` and you
have every deliberate failure" — the CLI's exit-2 contract and the
server's 400/500 mapping both lean on it.  A validation path that
raises bare ``ValueError`` (or ``Exception``, ``RuntimeError``, ...)
silently escapes that contract.

The rule: in library code, ``raise`` of a bare builtin exception from
the flagged set is a finding.  Taxonomy classes may *also* inherit the
builtin (``class DocumentError(RetrievalError, ValueError)``) so
existing callers keep working — the point is that the name raised
belongs to ``repro.errors``.  ``NotImplementedError`` (abstract
methods), ``AttributeError`` (``__getattr__`` protocol), and
``SystemExit`` (CLI entry points) stay allowed.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..model import Checker, Finding, register
from ..source import SourceFile

_FLAGGED = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "RuntimeError",
        "KeyError",
        "IndexError",
        "ArithmeticError",
        "ZeroDivisionError",
        "OSError",
        "IOError",
        "LookupError",
    }
)


def _raised_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


@register
class ErrorTaxonomyChecker(Checker):
    rule = "error-taxonomy"
    description = (
        "library code raises repro.errors classes, not bare builtins — "
        "`except RageError` must cover every deliberate failure"
    )

    def applies(self, source: SourceFile) -> bool:
        return source.in_library

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Raise):
                name = _raised_name(node)
                if name in _FLAGGED:
                    yield self.finding(
                        source,
                        node.lineno,
                        f"`raise {name}` escapes the `except RageError` "
                        "contract — raise (or subclass into) a "
                        "`repro.errors` class",
                    )
