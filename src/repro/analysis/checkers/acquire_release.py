"""``acquire-release``: paired resource claims must survive exceptions.

Two project-bitten patterns:

* ``TokenBucket.reserve()`` claims a rate-limiter slot.  If anything
  after the claim raises (even the injected ``sleep``), the slot must
  be refunded with ``cancel()`` — the PR 5 reservation-leak bug let N
  abandoned waiters starve the N+1th arrival forever.  The rule: a
  function that calls ``.reserve()`` and then does more work must also
  call ``.cancel()`` from an ``except`` handler or ``finally`` block.

* ``open()`` (and ``Path.open`` / ``os.fdopen``) outside a ``with``
  leaks the descriptor on any exception before ``close()``.

Scoped to library code: tests deliberately poke ``reserve()`` bare to
measure refill behavior.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..model import Checker, Finding, register
from ..source import SourceFile
from .common import (
    FunctionNode,
    find_enclosing_statement,
    is_trivial_tail,
    iter_functions,
)

_OPEN_CALLS = frozenset({"open", "fdopen"})


def _is_reserve_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "reserve"
        and not node.args
        and not node.keywords
    )


def _cancel_on_exception_path(func: FunctionNode) -> bool:
    """Whether any except handler or finally in ``func`` refunds."""
    for node in ast.walk(func):
        if isinstance(node, ast.Try):
            cleanup_bodies: List[ast.stmt] = list(node.finalbody)
            for handler in node.handlers:
                cleanup_bodies.extend(handler.body)
            for stmt in cleanup_bodies:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "cancel"
                    ):
                        return True
    return False


def _open_call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name) and node.func.id in _OPEN_CALLS:
        return node.func.id
    if isinstance(node.func, ast.Attribute) and node.func.attr in _OPEN_CALLS:
        # os.open returns a raw fd, not a context manager — it *cannot*
        # appear in a `with`, so flagging it is noise.  os.fdopen (the
        # wrapper that turns that fd into a file object) stays covered.
        value = node.func.value
        if node.func.attr == "open" and isinstance(value, ast.Name):
            if value.id == "os":
                return ""
        return node.func.attr
    return ""


@register
class AcquireReleaseChecker(Checker):
    rule = "acquire-release"
    description = (
        "reserve() needs cancel() on exception paths; open() belongs "
        "in a `with` (reservation/descriptor leak bug class)"
    )

    def applies(self, source: SourceFile) -> bool:
        return source.in_library

    def check(self, source: SourceFile) -> Iterable[Finding]:
        yield from self._check_reserves(source)
        yield from self._check_opens(source)

    # -- reserve()/cancel() pairing ---------------------------------------

    def _check_reserves(self, source: SourceFile) -> Iterable[Finding]:
        for func in iter_functions(source.tree):
            reserves = [
                node for node in ast.walk(func) if _is_reserve_call(node)
            ]
            if not reserves:
                continue
            if _cancel_on_exception_path(func):
                continue
            for call in reserves:
                stmt = find_enclosing_statement(func, call)
                if stmt is not None and self._nothing_left(func, stmt):
                    continue  # claim-and-return: nothing can raise after
                yield self.finding(
                    source,
                    call.lineno,
                    f"`{func.name}` reserves a slot but has no "
                    "`cancel()` on an exception path — an interrupted "
                    "caller leaks the reservation and starves later "
                    "arrivals",
                )

    @staticmethod
    def _nothing_left(func: FunctionNode, stmt: ast.stmt) -> bool:
        body = list(func.body)
        if stmt not in body:
            return False  # nested inside try/if/loop: be conservative
        tail = body[body.index(stmt) + 1 :]
        return all(is_trivial_tail(later) for later in tail)

    # -- open() outside with ----------------------------------------------

    def _check_opens(self, source: SourceFile) -> Iterable[Finding]:
        managed = set()
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    managed.add(id(expr))
                    # one wrapper deep: with closing(open(...)) etc.
                    if isinstance(expr, ast.Call):
                        for arg in expr.args:
                            managed.add(id(arg))
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call) and id(node) not in managed:
                name = _open_call_name(node)
                if name:
                    yield self.finding(
                        source,
                        node.lineno,
                        f"`{name}(...)` outside a `with` block leaks the "
                        "file descriptor on any exception before close()",
                    )
