"""``determinism``: no ambient randomness or clocks in exactness zones.

``core/``, ``combinatorics/`` and ``retrieval/`` are asserted
*answer-for-answer exact*: the lattice-pruned plan must equal the
exhaustive plan bit for bit, property tests sweep fixed seed ranges,
benchmark baselines diff artifacts across runs, and a warm-opened
persistent index must serve byte-identical rankings to the build that
wrote it.  One ``random.sample(...)`` against the unseeded
module-level generator — or one wall-clock read folded into an output
— and none of that holds.

Flagged in those packages:

* module-level ``random.*`` calls (``random.random``, ``.sample``,
  ``.shuffle``, ...) — thread a seeded ``random.Random(seed)`` through
  instead (the project idiom; see ``core/sampling.py``);
* ``random.Random()`` with no arguments — seeded by entropy;
* wall-clock and entropy reads: ``time.time``/``monotonic``/
  ``perf_counter``, ``datetime.now``/``utcnow``/``today``,
  ``uuid.uuid1``/``uuid4``, ``os.urandom``, ``secrets.*``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional

from ..model import Checker, Finding, register
from ..source import SourceFile, resolve_call_target

#: Module-level `random` functions (the shared, unseeded generator).
_RANDOM_FUNCTIONS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.uniform",
        "random.gauss",
        "random.getrandbits",
        "random.betavariate",
        "random.expovariate",
        "random.normalvariate",
        "random.triangular",
        "random.seed",
    }
)

_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
    }
)


@register
class DeterminismChecker(Checker):
    rule = "determinism"
    description = (
        "core/, combinatorics/ and retrieval/ are answer-exact: no "
        "unseeded random, no wall-clock or entropy reads"
    )

    def applies(self, source: SourceFile) -> bool:
        return source.in_exactness_zone

    def check(self, source: SourceFile) -> Iterable[Finding]:
        imports = source.import_map
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                message = self._violation(node, imports)
                if message is not None:
                    yield self.finding(source, node.lineno, message)

    def _violation(
        self, call: ast.Call, imports: Dict[str, str]
    ) -> Optional[str]:
        target = resolve_call_target(call, imports)
        if target is None:
            return None
        if target in _RANDOM_FUNCTIONS:
            return (
                f"`{target}(...)` uses the shared unseeded generator — "
                "thread a seeded `random.Random(seed)` through instead"
            )
        if target == "random.Random" and not call.args and not call.keywords:
            return (
                "`random.Random()` without a seed draws from entropy — "
                "pass an explicit seed"
            )
        if target in _CLOCK_CALLS or target.startswith("secrets."):
            return (
                f"`{target}(...)` reads the clock/entropy in an "
                "answer-exact zone — inject the value from the caller"
            )
        return None
