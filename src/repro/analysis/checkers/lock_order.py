"""``lock-order``: no cycles in the acquired-while-holding graph.

The deadlock class the serving era keeps grazing: thread 1 takes lock
A then B, thread 2 takes B then A, both park forever.  The hazard is
invisible per file — each nesting looks locally reasonable — so this
rule is whole-program: the graph layer registers every lock in the
tree, propagates per-function locksets over the call graph to a
fixpoint, builds the global acquisition-order graph, and reports every
cycle it contains.

One finding is emitted *per edge* of each cycle, anchored where that
edge arises, carrying the full witness chain (who held what, which
calls lead to the inner acquisition).  An AB/BA inversion therefore
reports twice — both acquisition paths — which is what you need to
decide which side to reorder.  ``PromptStore.clear()`` dodges exactly
this by taking ``_evict_lock`` and ``_stats_lock`` *sequentially*
instead of nested; the fixture suite pins that the nested variant is
caught.

A self-cycle (a non-reentrant ``threading.Lock`` re-acquired while
already held, possibly through calls) is reported too; re-entrant
locks and conditions are exempt from the single-node case.
"""

from __future__ import annotations

from typing import Iterable

from ..graph import LockModel, describe_cycle
from ..model import Finding, ProjectChecker, register


@register
class LockOrderChecker(ProjectChecker):
    rule = "lock-order"
    description = (
        "cycle in the global lock acquisition-order graph — two threads "
        "taking the locks in opposite order deadlock (whole-program)"
    )

    def check_project(self, index) -> Iterable[Finding]:
        model = LockModel(index)
        graph = model.build_order_graph()
        for cycle in graph.cycles():
            if len(cycle) == 1 and model.kind(cycle[0]) != "lock":
                continue  # re-acquiring an RLock/Condition is legal
            label = " -> ".join(cycle + (cycle[0],))
            for outer, inner, witness in describe_cycle(cycle, graph):
                chain = "; ".join(witness.chain)
                if len(cycle) == 1:
                    message = (
                        f"non-reentrant lock {inner} may be re-acquired "
                        f"while already held — self-deadlock ({chain})"
                    )
                else:
                    message = (
                        f"lock-order cycle [{label}]: {inner} is acquired "
                        f"while {outer} is held ({chain}) — the reversed "
                        "path exists too, so opposing threads deadlock"
                    )
                yield Finding(
                    path=witness.path,
                    line=witness.line,
                    rule=self.rule,
                    message=message,
                )
